//! Roofline-style models of the vendor libraries (cuBLAS / cuDNN) used
//! as the reference points of Table IV.
//!
//! The paper compares EATSS+PPCG against cuBLAS gemm and cuDNN conv-2d.
//! Those libraries use tensor cores (which PPCG-generated code cannot),
//! run near peak clocks, and achieve a large fraction of the machine
//! roofline. This crate models exactly that: achieved throughput is a
//! size-dependent fraction of `min(tensor peak, DRAM roofline)` and power
//! is a high fraction of TDP (vendor kernels do not leave DVFS headroom —
//! the effect EATSS exploits on the Xavier, §V-E).
//!
//! # Examples
//!
//! ```
//! use eatss_gpusim::GpuArch;
//! use eatss_vendor::{measure, VendorOp};
//!
//! let m = measure(&GpuArch::ga100(), &VendorOp::Gemm { n: 4000 }, 8);
//! assert!(m.gflops > 10_000.0, "tensor-core FP64 gemm");
//! assert!(m.ppw > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eatss_gpusim::GpuArch;

/// A vendor-library operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VendorOp {
    /// cuBLAS `gemm` with square operands of order `n`.
    Gemm {
        /// Matrix order.
        n: i64,
    },
    /// cuDNN direct convolution.
    Conv2d {
        /// Output height.
        h: i64,
        /// Output width.
        w: i64,
        /// Filter height.
        r: i64,
        /// Filter width.
        s: i64,
    },
}

impl VendorOp {
    /// Floating-point operations of the call.
    pub fn flops(&self) -> f64 {
        match *self {
            VendorOp::Gemm { n } => 2.0 * (n as f64).powi(3),
            VendorOp::Conv2d { h, w, r, s } => 2.0 * (h * w * r * s) as f64,
        }
    }

    /// Bytes that must move through DRAM at least once.
    pub fn min_bytes(&self, elem_bytes: u8) -> f64 {
        let e = elem_bytes as f64;
        match *self {
            VendorOp::Gemm { n } => 3.0 * (n as f64).powi(2) * e,
            VendorOp::Conv2d { h, w, r, s } => {
                (((h + r) * (w + s)) as f64 + (h * w) as f64 + (r * s) as f64) * e
            }
        }
    }

    /// Peak fraction the tuned library sustains for this operation shape
    /// at asymptotic sizes.
    fn peak_fraction(&self) -> f64 {
        match self {
            VendorOp::Gemm { .. } => 0.94,
            VendorOp::Conv2d { .. } => 0.60,
        }
    }
}

/// A vendor-library measurement (same quantities the paper reports in
/// Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VendorMeasurement {
    /// Achieved throughput, GFLOP/s.
    pub gflops: f64,
    /// Average power, watts.
    pub avg_power_w: f64,
    /// Execution time, seconds.
    pub time_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
    /// Performance per watt, GFLOP/s/W.
    pub ppw: f64,
}

/// Measures a vendor-library call on the modelled architecture.
///
/// Tensor cores are available to vendor code only (the paper: "PPCG
/// generated code does not leverage tensor cores"), so the compute peak
/// is [`GpuArch::peak_fp64_tensor_gflops`] for FP64.
pub fn measure(arch: &GpuArch, op: &VendorOp, elem_bytes: u8) -> VendorMeasurement {
    let peak = if elem_bytes >= 8 {
        arch.peak_fp64_tensor_gflops
    } else {
        arch.peak_fp32_gflops
    };
    let flops = op.flops();
    let bytes = op.min_bytes(elem_bytes);
    // Size ramp: small problems cannot fill the machine.
    let work_per_sm = flops / arch.sm_count as f64;
    let ramp = work_per_sm / (work_per_sm + 2.5e6);
    let compute_gflops = peak * op.peak_fraction() * ramp;
    let roofline_gflops = flops / (bytes / (arch.dram_bw_gbs * 1e9)) / 1e9;
    let gflops = compute_gflops.min(roofline_gflops).max(1e-3);
    let time_s = flops / 1e9 / gflops + arch.launch_overhead_s;
    // Vendor kernels pin clocks near the cap; utilization scales the
    // dynamic headroom.
    let util = gflops / peak;
    let idle = arch.idle_power_w();
    let steady = (idle + (arch.tdp_w * 0.92 - idle) * (0.35 + 0.65 * util)).min(arch.tdp_w);
    // Measurement-level power ramp over the benchmark loop (vendor
    // libraries are measured with ~100 repeated calls, so all but the
    // tiniest problems reach steady-state power).
    let tau = arch.power_ramp_tau_s;
    let session = time_s * 100.0;
    let frac = if session > 0.0 {
        (1.0 - (tau / session) * (1.0 - (-session / tau).exp())).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let avg_power_w = idle + (steady - idle) * frac;
    let energy_j = avg_power_w * time_s;
    VendorMeasurement {
        gflops,
        avg_power_w,
        time_s,
        energy_j,
        ppw: gflops / avg_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ga100_gemm_matches_table_iv_scale() {
        // Table IV: cuBLAS gemm on GA100 reaches 18292 GFLOP/s (FP64 TC).
        let m = measure(&GpuArch::ga100(), &VendorOp::Gemm { n: 4000 }, 8);
        assert!(
            (15_000.0..19_500.0).contains(&m.gflops),
            "gflops {}",
            m.gflops
        );
        assert!(m.avg_power_w <= 250.0);
        assert!(m.ppw > 60.0, "ppw {}", m.ppw);
        assert!((m.energy_j - m.avg_power_w * m.time_s).abs() < 1e-9);
    }

    #[test]
    fn xavier_gemm_is_near_its_tiny_fp64_peak() {
        // Table IV: 42.31 GFLOP/s on the Xavier (FP64 peak is 44).
        let m = measure(&GpuArch::xavier(), &VendorOp::Gemm { n: 1024 }, 8);
        assert!((30.0..44.0).contains(&m.gflops), "gflops {}", m.gflops);
    }

    #[test]
    fn small_sizes_ramp_down() {
        let small = measure(&GpuArch::ga100(), &VendorOp::Gemm { n: 256 }, 8);
        let large = measure(&GpuArch::ga100(), &VendorOp::Gemm { n: 8000 }, 8);
        assert!(small.gflops < large.gflops);
        assert!(small.avg_power_w < large.avg_power_w);
    }

    #[test]
    fn conv_is_less_efficient_than_gemm() {
        let g = measure(&GpuArch::ga100(), &VendorOp::Gemm { n: 2000 }, 8);
        let c = measure(
            &GpuArch::ga100(),
            &VendorOp::Conv2d {
                h: 224,
                w: 224,
                r: 16,
                s: 16,
            },
            8,
        );
        assert!(c.gflops < g.gflops);
    }

    #[test]
    fn fp32_uses_fp32_peak() {
        let m64 = measure(&GpuArch::ga100(), &VendorOp::Gemm { n: 4000 }, 8);
        let m32 = measure(&GpuArch::ga100(), &VendorOp::Gemm { n: 4000 }, 4);
        // On GA100 FP64-TC and FP32 peaks coincide (19.5 TF); the ramp and
        // byte pressure differ slightly, so just check both are sane.
        assert!(m32.gflops > 0.5 * m64.gflops);
    }

    #[test]
    fn flops_and_bytes_formulas() {
        assert_eq!(VendorOp::Gemm { n: 10 }.flops(), 2000.0);
        let c = VendorOp::Conv2d { h: 4, w: 4, r: 2, s: 2 };
        assert_eq!(c.flops(), 2.0 * 64.0);
        assert!(c.min_bytes(8) > 0.0);
    }
}
