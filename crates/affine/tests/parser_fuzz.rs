//! Fuzz harness for the front end (ROADMAP acceptance):
//! seeded random programs → parse → `pretty_program` → re-parse fixpoint,
//! plus adversarial inputs that must error cleanly — never panic, never
//! overflow the stack.

use eatss_affine::parser::gen::{generate_program, GenConfig};
use eatss_affine::parser::{parse_program, reference, MAX_EXPR_DEPTH, MAX_LOOP_DEPTH};
use eatss_affine::pretty::pretty_program;
use proptest::prelude::*;

proptest! {
    /// parse → pretty → re-parse is a fixpoint on generated programs.
    #[test]
    fn pretty_roundtrip_fixpoint(seed in 0u64..2048) {
        let cfg = GenConfig {
            kernels: 3,
            max_depth: 4,
            max_stmts: 3,
            max_expr_terms: 5,
            trivia: true,
        };
        let src = generate_program(seed, &cfg);
        let program = parse_program(&src).expect("generator emits valid programs");
        let printed = pretty_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("pretty output failed to re-parse (seed {seed}): {e}\n{printed}"));
        prop_assert!(reparsed == program, "fixpoint violated for seed {}", seed);
    }
}

#[test]
fn overflowing_integer_literals_error_cleanly() {
    for digits in [20, 64, 4096] {
        let lit = "9".repeat(digits);
        for src in [
            format!("kernel f(N) {{ for (i: N) A[{lit}] = B[i]; }}"),
            format!("kernel f(N) {{ for (i: {lit}) A[i] = B[i]; }}"),
            format!("kernel f(N) {{ for (i: N) A[i] = {lit}; }}"),
            format!("kernel f(N) {{ for (i: N) A[{lit}*i] = B[i]; }}"),
        ] {
            let e = parse_program(&src).unwrap_err();
            assert!(e.message.contains("invalid integer literal"), "{e}");
            assert_eq!(Err(e), reference::parse_program(&src));
        }
    }
}

#[test]
fn unterminated_subscript_chains_error_cleanly() {
    for src in [
        "kernel f(N) { for (i: N) A[i",
        "kernel f(N) { for (i: N) A[i][i",
        "kernel f(N) { for (i: N) A[i+ = B[i]; }",
        &("kernel f(N) { for (i: N) A".to_owned() + &"[i]".repeat(500) + "["),
        &("kernel f(N) { for (i: N) A".to_owned() + &"[i+".repeat(200)),
    ] {
        let fast = parse_program(src);
        assert!(fast.is_err(), "expected error for {src:?}");
        assert_eq!(fast, reference::parse_program(src));
    }
}

#[test]
fn deep_nesting_is_bounded_not_a_stack_overflow() {
    // 200 nested parens: far past MAX_EXPR_DEPTH, must be a clean error.
    let parens = format!(
        "kernel f(N) {{ for (i: N) A[i] = {}B[i]{}; }}",
        "(".repeat(200),
        ")".repeat(200)
    );
    let e = parse_program(&parens).unwrap_err();
    assert!(
        e.message
            .contains(&format!("expression nesting exceeds {MAX_EXPR_DEPTH}")),
        "{e}"
    );
    assert_eq!(Err(e), reference::parse_program(&parens));

    // Unclosed variant — the recursion guard must fire before EOF handling.
    let unclosed = format!("kernel f(N) {{ for (i: N) A[i] = {}", "(".repeat(200));
    let fast = parse_program(&unclosed);
    assert!(fast.is_err());
    assert_eq!(fast, reference::parse_program(&unclosed));

    // 200 nested fors: past MAX_LOOP_DEPTH, clean positioned error.
    let mut fors = String::from("kernel f(N) { ");
    for d in 0..200 {
        fors.push_str(&format!("for (i{d}: 4) "));
    }
    fors.push_str("A[i0] = B[i0]; }");
    let e = parse_program(&fors).unwrap_err();
    assert!(
        e.message
            .contains(&format!("loop nesting exceeds {MAX_LOOP_DEPTH}")),
        "{e}"
    );
    assert_eq!(Err(e), reference::parse_program(&fors));
}

#[test]
fn arbitrary_ascii_soup_never_panics() {
    // Deterministic byte soup across the dialect's alphabet — every
    // outcome is fine except a panic, and both engines must agree.
    let alphabet: &[u8] = b"kernelforseq(){}[],;:=+-*/0123456789.ABijxyz_ \n";
    let mut state: u64 = 0x243f_6a88_85a3_08d3;
    for case in 0..256 {
        let len = 1 + (case % 97);
        let mut src = String::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            src.push(alphabet[(state >> 33) as usize % alphabet.len()] as char);
        }
        let fast = parse_program(&src);
        let base = reference::parse_program(&src);
        assert_eq!(fast, base, "engines diverge on soup {case}: {src:?}");
    }
}

#[test]
fn non_ascii_input_errors_cleanly() {
    for src in [
        "kernel f(N) { for (i: N) A[i] = B[i]; } λ",
        "kérnel f(N) {}",
        "kernel f(N) { for (i: N) A[i] = B[i]; // λλλ\n }",
        "\u{feff}kernel f(N) { for (i: N) A[i] = B[i]; }",
    ] {
        let fast = parse_program(src);
        let base = reference::parse_program(src);
        assert_eq!(fast, base, "engines diverge on: {src:?}");
    }
}
