//! Differential tests pinning the zero-copy parser to `parser::reference`.
//!
//! The retired tokenize-everything engine is the behavioral spec: on any
//! input — valid, mutated, or truncated — the fast engine must produce
//! an identical `Program` IR or an identical `ParseError` (position AND
//! message), including the reference's lex-errors-win-over-parse-errors
//! ordering.

use eatss_affine::parser::gen::{generate_program, GenConfig};
use eatss_affine::parser::{parse_named_program, parse_program, reference};
use proptest::prelude::*;

fn configs() -> Vec<GenConfig> {
    vec![
        GenConfig::default(),
        GenConfig {
            kernels: 1,
            max_depth: 1,
            max_stmts: 1,
            max_expr_terms: 2,
            trivia: false,
        },
        GenConfig {
            kernels: 4,
            max_depth: 5,
            max_stmts: 4,
            max_expr_terms: 6,
            trivia: true,
        },
    ]
}

proptest! {
    /// Valid generated programs: identical IR from both engines.
    #[test]
    fn generated_programs_parse_identically(seed in 0u64..4096) {
        for cfg in configs() {
            let src = generate_program(seed, &cfg);
            let fast = parse_program(&src);
            let base = reference::parse_program(&src);
            prop_assert!(
                fast == base,
                "engines diverge on seed {} cfg {:?}:\n{}\nfast: {:?}\nbase: {:?}",
                seed, &cfg, &src, fast, base
            );
            prop_assert!(fast.is_ok(), "generator emitted invalid program for seed {}", seed);
        }
    }

    /// Single-byte ASCII mutations: identical Result, including full
    /// error position and message. ASCII-only replacements keep the
    /// source valid UTF-8 at every byte offset.
    #[test]
    fn mutated_programs_agree(seed in 0u64..2048) {
        let cfg = GenConfig::default();
        let src = generate_program(seed, &cfg);
        let bytes = src.as_bytes();
        // Deterministic mutation schedule from the same seed.
        let replacements = [b'$', b'%', b'(', b']', b'9', b'=', b'.', b'x', b' ', b'\n'];
        for k in 0..24u64 {
            let pos = ((seed.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(k as u32) ^ k) as usize)
                % bytes.len();
            let repl = replacements[(seed.wrapping_add(k) % replacements.len() as u64) as usize];
            let mut mutated = bytes.to_vec();
            mutated[pos] = repl;
            let mutated = String::from_utf8(mutated).unwrap();
            let fast = parse_program(&mutated);
            let base = reference::parse_program(&mutated);
            prop_assert!(
                fast == base,
                "engines diverge on seed {} mutation {} (byte {} -> {:?}):\n{}\nfast: {:?}\nbase: {:?}",
                seed, k, pos, repl as char, &mutated, fast, base
            );
        }
    }

    /// Truncation sweep: every prefix of a generated program yields the
    /// same Result from both engines (exercises every "unexpected end of
    /// input" path, char boundaries are safe because the dialect is ASCII).
    #[test]
    fn truncated_programs_agree(seed in 0u64..256) {
        let cfg = GenConfig {
            kernels: 1,
            max_depth: 3,
            max_stmts: 2,
            max_expr_terms: 3,
            trivia: true,
        };
        let src = generate_program(seed, &cfg);
        for cut in 0..src.len() {
            let prefix = &src[..cut];
            let fast = parse_program(prefix);
            let base = reference::parse_program(prefix);
            prop_assert!(
                fast == base,
                "engines diverge on seed {} truncated at {}:\n{}\nfast: {:?}\nbase: {:?}",
                seed, cut, prefix, fast, base
            );
        }
    }

    /// Named parsing matches too (the program-name override path).
    #[test]
    fn named_parse_agrees(seed in 0u64..512) {
        let src = generate_program(seed, &GenConfig::default());
        prop_assert_eq!(
            parse_named_program("bench", &src),
            reference::parse_named_program("bench", &src)
        );
    }
}

/// Hand-picked adversarial cases where the engines' internal orderings
/// differ most: lex errors after the parse frontier, undecodable
/// literals in "found" positions, keyword-as-identifier usage.
#[test]
fn handpicked_sources_agree() {
    let cases: &[&str] = &[
        "",
        "   ",
        "kernel",
        "kernel f",
        "kernel f(",
        "kernel f(N",
        "kernel f(N)",
        "kernel f(N) {",
        "kernel f(N) { for",
        "kernel f(N) { for (",
        "kernel f(N) { for (i",
        "kernel f(N) { for (i:",
        "kernel f(N) { for (i: N",
        "kernel f(N) { for (i: N)",
        "kernel f(N) { for (i: N) A",
        "kernel f(N) { for (i: N) A[",
        "kernel f(N) { for (i: N) A[i",
        "kernel f(N) { for (i: N) A[i]",
        "kernel f(N) { for (i: N) A[i] =",
        "kernel f(N) { for (i: N) A[i] = B[i]",
        "kernel f(N) { for (i: N) A[i] = B[i];",
        "kernel f(N) { for (i: N) A[i] = B[i]; }",
        // lex error after a parse error: the lex error must win
        "kernel = (N) { A; }\n$",
        "kernel f(N) { for (i: N) A[i] ? B[i]; }\n@",
        // overflowing literal before/after the parse frontier
        "kernel f(N) { for (i: 99999999999999999999) A[i] = B[i]; }",
        "kernel f(N) { for (i: N) A[i] = B[i]; } 99999999999999999999",
        "kernel f(N) { for (i: N) A[99999999999999999999] = B[i]; }",
        // keywords as identifiers
        "kernel kernel(N) { for (i: N) for_[i] = seq[i]; }",
        "kernel seq(for0) { for seq (i: for0) A[i] = B[i]; }",
        // numeric edge shapes
        "kernel f(N) { for (i: N) A[i] = 1.; }",
        "kernel f(N) { for (i: N) A[i] = .5; }",
        "kernel f(N) { for (i: N) A[i] = 1.5.5; }",
        "kernel f(N) { for (i: N) A[i] = 007; }",
        "kernel f(N) { for (i: N) A[i] = 179769313486231570000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000.0; }",
        // operator/punct confusion
        "kernel f(N) { for (i: N) A[i] += += B[i]; }",
        "kernel f(N) { for (i: N) A[i] =+ B[i]; }",
        "kernel f(N) { for (i: N) A[i] = --B[i]; }",
        "kernel f(N) { for (i: N) A[2*] = B[i]; }",
        "kernel f(N) { for (i: N) A[i*x] = B[i]; }",
        "kernel f(N) { for (i: N) A[*i] = B[i]; }",
        // comments and trivia edges
        "// only a comment",
        "kernel f(N) { for (i: N) A[i] = B[i]; } // trailing",
        "kernel f(N) { for (i: N) // comment\n A[i] = B[i]; }",
    ];
    for src in cases {
        let fast = parse_program(src);
        let base = reference::parse_program(src);
        assert_eq!(fast, base, "engines diverge on: {src:?}");
    }
}
