//! `parse_files` determinism: parallel multi-file ingestion must be
//! bit-identical to sequential, for any job count, including inputs
//! that fail to parse (same convention as the sweep pool's
//! `jobs_identity` test in `eatss-bench`).

use eatss_affine::parser::gen::{generate_program, GenConfig};
use eatss_affine::parser::parse_files;

fn corpus() -> Vec<(String, String)> {
    let cfg = GenConfig {
        kernels: 2,
        max_depth: 4,
        max_stmts: 3,
        max_expr_terms: 4,
        trivia: true,
    };
    let mut sources: Vec<(String, String)> = (0..24)
        .map(|seed| (format!("gen{seed}"), generate_program(seed, &cfg)))
        .collect();
    // A malformed file in the middle: per-file errors must also merge
    // deterministically, not abort the batch.
    sources.insert(
        11,
        (
            "broken".to_owned(),
            "kernel broken(N) { for (i: N) A[i] $ B[i]; }".to_owned(),
        ),
    );
    sources
}

#[test]
fn parallel_ingestion_is_bit_identical_to_sequential() {
    let sources = corpus();
    let sequential = parse_files(&sources, 1);
    assert_eq!(sequential.len(), sources.len());
    assert!(sequential[11].is_err());
    assert_eq!(
        sequential.iter().filter(|r| r.is_ok()).count(),
        sources.len() - 1
    );
    for jobs in [0, 2, 4, 8] {
        let parallel = parse_files(&sources, jobs);
        assert_eq!(parallel, sequential, "jobs={jobs} diverged from sequential");
    }
}

#[test]
fn results_keep_input_order_and_names() {
    let sources = corpus();
    for (i, result) in parse_files(&sources, 4).iter().enumerate() {
        if let Ok(program) = result {
            assert_eq!(program.name, sources[i].0, "slot {i} out of order");
        }
    }
}

#[test]
fn empty_and_single_input_batches() {
    assert!(parse_files(&[], 4).is_empty());
    let one = vec![(
        "solo".to_owned(),
        "kernel solo(N) { for (i: N) A[i] = B[i]; }".to_owned(),
    )];
    let results = parse_files(&one, 8);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].as_ref().unwrap().name, "solo");
}
