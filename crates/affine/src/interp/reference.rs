//! The reference tree-walking interpreter.
//!
//! This is the original executable specification of the affine IR: RHS
//! trees are walked recursively, arrays are looked up by name, and every
//! subscript is evaluated per access. The compiled fast path
//! ([`crate::plan::ExecPlan`], used by the module-level `run_*` entry
//! points) is differentially tested to produce bitwise-identical stores
//! against this module, mirroring how `eatss_smt::reference` pins the
//! solver rewrite.
//!
//! Subscript indices are evaluated into a fixed stack buffer
//! ([`IndexBuf`], rank ≤ [`MAX_RANK`]) instead of a fresh `Vec<i64>` per
//! read; deeper shapes spill to the heap. The unhooked common path is a
//! dedicated walker with no closure dispatch; only executors that
//! install a [`ReadHook`] pay for the indirection.

use super::{InterpError, ReadHook, Store, MAX_RANK};
use crate::ir::{AffineExpr, ArrayRef, Kernel, Program, RhsExpr, Statement};
use crate::tiling::TiledNest;
use crate::ProblemSizes;

/// A small stack buffer for evaluated subscript indices: fixed storage
/// for rank ≤ [`MAX_RANK`], heap spill beyond.
struct IndexBuf {
    fixed: [i64; MAX_RANK],
    spill: Vec<i64>,
}

impl IndexBuf {
    fn new() -> Self {
        IndexBuf {
            fixed: [0; MAX_RANK],
            spill: Vec::new(),
        }
    }

    /// Evaluates each subscript at `point` and returns the index slice.
    fn fill(&mut self, subscripts: &[AffineExpr], point: &[i64]) -> &[i64] {
        if subscripts.len() <= MAX_RANK {
            for (slot, s) in self.fixed.iter_mut().zip(subscripts) {
                *slot = s.eval(point);
            }
            &self.fixed[..subscripts.len()]
        } else {
            self.spill.clear();
            self.spill.extend(subscripts.iter().map(|s| s.eval(point)));
            &self.spill
        }
    }
}

fn eval_rhs(e: &RhsExpr, stmt: &Statement, store: &Store, point: &[i64]) -> f64 {
    match e {
        RhsExpr::Num(v) => *v,
        RhsExpr::Ref(i) => read_ref(&stmt.reads[*i], store, point),
        RhsExpr::Bin(op, a, b) => {
            let x = eval_rhs(a, stmt, store, point);
            let y = eval_rhs(b, stmt, store, point);
            match op {
                '+' => x + y,
                '-' => x - y,
                '*' => x * y,
                '/' => x / y,
                _ => f64::NAN,
            }
        }
        RhsExpr::Neg(a) => -eval_rhs(a, stmt, store, point),
    }
}

fn read_ref(r: &ArrayRef, store: &Store, point: &[i64]) -> f64 {
    let array = match store.get(&r.array) {
        Some(a) => a,
        None => return 0.0,
    };
    if r.subscripts.is_empty() {
        return array.get(&[0]);
    }
    let mut buf = IndexBuf::new();
    array.get(buf.fill(&r.subscripts, point))
}

fn eval_rhs_hooked(
    e: &RhsExpr,
    stmt: &Statement,
    store: &Store,
    point: &[i64],
    hook: &mut ReadHook<'_>,
) -> f64 {
    match e {
        RhsExpr::Num(v) => *v,
        RhsExpr::Ref(i) => read_ref_hooked(&stmt.reads[*i], store, point, hook),
        RhsExpr::Bin(op, a, b) => {
            let x = eval_rhs_hooked(a, stmt, store, point, hook);
            let y = eval_rhs_hooked(b, stmt, store, point, hook);
            match op {
                '+' => x + y,
                '-' => x - y,
                '*' => x * y,
                '/' => x / y,
                _ => f64::NAN,
            }
        }
        RhsExpr::Neg(a) => -eval_rhs_hooked(a, stmt, store, point, hook),
    }
}

fn read_ref_hooked(
    r: &ArrayRef,
    store: &Store,
    point: &[i64],
    hook: &mut ReadHook<'_>,
) -> f64 {
    let mut buf = IndexBuf::new();
    let idx = buf.fill(&r.subscripts, point);
    if let Some(v) = hook(r, idx) {
        return v;
    }
    let array = match store.get(&r.array) {
        Some(a) => a,
        None => return 0.0,
    };
    if r.subscripts.is_empty() {
        return array.get(&[0]);
    }
    array.get(idx)
}

fn write_value(stmt: &Statement, store: &mut Store, point: &[i64], value: f64) {
    let mut buf = IndexBuf::new();
    let idx: &[i64] = if stmt.write.subscripts.is_empty() {
        &[0]
    } else {
        buf.fill(&stmt.write.subscripts, point)
    };
    let array = match store.get_mut(&stmt.write.array) {
        Some(a) => a,
        None => return,
    };
    if stmt.is_accumulation {
        let old = array.get(idx);
        array.set(idx, old + value);
    } else {
        array.set(idx, value);
    }
}

/// Executes every statement of `kernel` at one iteration point, in textual
/// order, over the store. This is the per-point semantics shared by all
/// execution orders ([`run_kernel`], [`run_kernel_tiled`], and external
/// executors such as the GPU emulator in `eatss-ppcg`).
pub fn exec_point(kernel: &Kernel, store: &mut Store, point: &[i64]) {
    for stmt in &kernel.stmts {
        let value = eval_rhs(&stmt.rhs, stmt, store, point);
        write_value(stmt, store, point, value);
    }
}

/// Like [`exec_point`], but right-hand-side reads are first offered to
/// `hook` (see [`ReadHook`]). The implicit read of an accumulation target
/// (`+=`) always goes to the store: accumulated references live in
/// L1/registers on the GPU, never in staged shared memory.
pub fn exec_point_hooked(
    kernel: &Kernel,
    store: &mut Store,
    point: &[i64],
    hook: &mut ReadHook<'_>,
) {
    for stmt in &kernel.stmts {
        let value = eval_rhs_hooked(&stmt.rhs, stmt, store, point, hook);
        write_value(stmt, store, point, value);
    }
}

/// Executes a whole program in source order through the tree-walker.
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes.
pub fn run_program(
    program: &Program,
    sizes: &ProblemSizes,
    store: &mut Store,
) -> Result<(), InterpError> {
    for kernel in &program.kernels {
        run_kernel(kernel, sizes, store)?;
    }
    Ok(())
}

/// Executes one kernel in lexicographic iteration order through the
/// tree-walker.
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes.
pub fn run_kernel(
    kernel: &Kernel,
    sizes: &ProblemSizes,
    store: &mut Store,
) -> Result<(), InterpError> {
    let trips: Vec<i64> = (0..kernel.depth())
        .map(|d| kernel.trip_count(d, sizes))
        .collect::<Result<_, _>>()
        .map_err(InterpError::UnboundParameter)?;
    let mut point = vec![0i64; trips.len()];
    if trips.iter().any(|&t| t <= 0) {
        return Ok(());
    }
    loop {
        exec_point(kernel, store, &point);
        let mut d = trips.len();
        loop {
            if d == 0 {
                return Ok(());
            }
            d -= 1;
            point[d] += 1;
            if point[d] < trips[d] {
                break;
            }
            point[d] = 0;
        }
    }
}

/// Executes one kernel in tiled order through the tree-walker.
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes.
pub fn run_kernel_tiled(
    nest: &TiledNest,
    sizes: &ProblemSizes,
    store: &mut Store,
) -> Result<(), InterpError> {
    let points = nest
        .enumerate_points(sizes)
        .map_err(InterpError::UnboundParameter)?;
    for point in points {
        exec_point(&nest.kernel, store, &point);
    }
    Ok(())
}
