//! An interpreter for the affine IR.
//!
//! Executes programs on real (small) arrays, giving the IR an executable
//! semantics independent of any GPU. Used by the test suite to prove
//! that:
//!
//! * the parser's IR means what the source says (matmul really multiplies
//!   matrices, stencils really smooth),
//! * the tiling transformation is semantics-preserving: executing the
//!   iteration space in tiled order produces bitwise-identical results
//!   for reduction-style kernels and identical results for data-parallel
//!   ones.
//!
//! Arrays are dense row-major `f64` buffers indexed by the reference
//! subscripts; out-of-bounds accesses (stencil halos) read 0 and drop
//! writes, matching padded-array conventions.
//!
//! # Two execution engines
//!
//! The module-level entry points ([`run_program`], [`run_kernel`],
//! [`run_kernel_tiled`]) compile each kernel into an
//! [`ExecPlan`](crate::plan::ExecPlan) — arrays resolved to dense store
//! slots, subscripts lowered to linear address functions, right-hand
//! sides flattened to postfix opcode tapes — and execute through the
//! plan. The original tree-walking interpreter is retained verbatim in
//! [`reference`] and remains the executable specification; the fast path
//! is differentially proven to produce bitwise-identical stores.

use crate::ir::{ArrayRef, Kernel, Program};
use crate::tiling::TiledNest;
use crate::ProblemSizes;
use std::collections::BTreeMap;
use std::fmt;

pub mod reference;

pub use reference::{exec_point, exec_point_hooked};

/// Maximum array rank (and subscript count) the fixed-size index buffers
/// cover; deeper shapes fall back to heap buffers or the reference
/// interpreter.
pub const MAX_RANK: usize = 8;

/// A dense row-major array store.
///
/// Arrays live in insertion-ordered slots (`Vec<Array>`) with a name
/// index on the side, so compiled execution plans can address them by
/// dense slot number instead of string key. Replacing an array via
/// [`Store::insert`] reuses its slot.
#[derive(Debug, Clone, Default)]
pub struct Store {
    slots: Vec<Array>,
    index: BTreeMap<String, usize>,
}

impl PartialEq for Store {
    fn eq(&self, other: &Self) -> bool {
        // Logical equality: the same name → array mapping, regardless of
        // the slot order the insertion history produced.
        self.index.len() == other.index.len()
            && self
                .arrays()
                .zip(other.arrays())
                .all(|((na, aa), (nb, ab))| na == nb && aa == ab)
    }
}

/// One dense array.
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    extents: Vec<i64>,
    data: Vec<f64>,
}

impl Array {
    /// A zero-initialized array with the given extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is non-positive.
    pub fn zeros(extents: Vec<i64>) -> Self {
        assert!(extents.iter().all(|&e| e > 0), "extents must be positive");
        let len: i64 = extents.iter().product();
        Array {
            extents,
            data: vec![0.0; len as usize],
        }
    }

    /// Builds an array from extents and a fill function over indices.
    ///
    /// The buffer is filled through a single linear cursor: the row-major
    /// multi-index is maintained incrementally rather than re-flattened
    /// per element.
    pub fn from_fn(extents: Vec<i64>, mut f: impl FnMut(&[i64]) -> f64) -> Self {
        let mut a = Array::zeros(extents);
        let mut idx = vec![0i64; a.extents.len()];
        for slot in a.data.iter_mut() {
            *slot = f(&idx);
            // Advance the odometer (last dimension fastest); it runs out
            // exactly when the linear cursor does.
            for d in (0..idx.len()).rev() {
                idx[d] += 1;
                if idx[d] < a.extents[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        a
    }

    /// Array extents.
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Raw data, row-major, mutable.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at a multi-index (0.0 when out of bounds).
    pub fn get(&self, idx: &[i64]) -> f64 {
        match self.flatten(idx) {
            Some(i) => self.data[i],
            None => 0.0,
        }
    }

    /// Writes a value at a multi-index (dropped when out of bounds).
    pub fn set(&mut self, idx: &[i64], v: f64) {
        if let Some(i) = self.flatten(idx) {
            self.data[i] = v;
        }
    }

    fn flatten(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.extents.len() {
            return None;
        }
        let mut flat: i64 = 0;
        for (&i, &e) in idx.iter().zip(&self.extents) {
            if i < 0 || i >= e {
                return None;
            }
            flat = flat * e + i;
        }
        Some(flat as usize)
    }
}

/// Interpretation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// An array used by the program is missing from the store.
    MissingArray(String),
    /// A problem-size parameter is unbound.
    UnboundParameter(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::MissingArray(a) => write!(f, "array `{a}` not in the store"),
            InterpError::UnboundParameter(p) => {
                write!(f, "problem-size parameter `{p}` is unbound")
            }
        }
    }
}

impl std::error::Error for InterpError {}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Inserts (or replaces) an array. A replaced array keeps its slot.
    pub fn insert(&mut self, name: impl Into<String>, array: Array) {
        let name = name.into();
        match self.index.get(&name) {
            Some(&slot) => self.slots[slot] = array,
            None => {
                self.index.insert(name, self.slots.len());
                self.slots.push(array);
            }
        }
    }

    /// Looks an array up by name.
    pub fn get(&self, name: &str) -> Option<&Array> {
        self.index.get(name).map(|&slot| &self.slots[slot])
    }

    /// Looks an array up by name, mutably.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Array> {
        match self.index.get(name) {
            Some(&slot) => Some(&mut self.slots[slot]),
            None => None,
        }
    }

    /// The dense slot number of an array, stable across replacement.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The array in a slot previously returned by [`Store::slot`].
    pub fn slot_array(&self, slot: usize) -> &Array {
        &self.slots[slot]
    }

    /// The array in a slot, mutably.
    pub fn slot_array_mut(&mut self, slot: usize) -> &mut Array {
        &mut self.slots[slot]
    }

    /// Iterates over `(name, array)` pairs in name order.
    pub fn arrays(&self) -> impl Iterator<Item = (&str, &Array)> {
        self.index
            .iter()
            .map(|(k, &slot)| (k.as_str(), &self.slots[slot]))
    }

    /// Pre-allocates every array a program touches (zeros), sizing each
    /// subscript by the maximum trip count of the dims it uses plus the
    /// halo offsets. Scalars (no subscripts) become 1-element arrays.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::UnboundParameter`] on unbound sizes.
    pub fn allocate_for(
        &mut self,
        program: &Program,
        sizes: &ProblemSizes,
    ) -> Result<(), InterpError> {
        for kernel in &program.kernels {
            for stmt in &kernel.stmts {
                for r in std::iter::once(&stmt.write).chain(stmt.reads.iter()) {
                    let extents = self.extents_of(kernel, r, sizes)?;
                    match self.get(&r.array) {
                        Some(existing) if existing.extents().len() >= extents.len() => {}
                        _ => {
                            self.insert(r.array.clone(), Array::zeros(extents));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn extents_of(
        &self,
        kernel: &Kernel,
        r: &ArrayRef,
        sizes: &ProblemSizes,
    ) -> Result<Vec<i64>, InterpError> {
        if r.subscripts.is_empty() {
            return Ok(vec![1]);
        }
        r.subscripts
            .iter()
            .map(|s| {
                let mut extent = s.offset().abs() + 1;
                for &(d, c) in s.terms() {
                    let n = kernel
                        .trip_count(d, sizes)
                        .map_err(InterpError::UnboundParameter)?;
                    extent += c.abs() * n;
                }
                Ok(extent.max(1))
            })
            .collect()
    }
}

/// A read interception hook: receives the reference being read and its
/// evaluated subscript indices (empty for scalars) and may override the
/// value that would be read from the store. Returning `None` falls through
/// to the ordinary store read. Used by external executors (e.g. the
/// `eatss-ppcg` GPU emulator) to route reads through staged
/// shared-memory buffers.
pub type ReadHook<'a> = dyn FnMut(&ArrayRef, &[i64]) -> Option<f64> + 'a;

/// One element-wise disagreement between two stores.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMismatch {
    /// Array name.
    pub array: String,
    /// Multi-index of the disagreeing element (empty when the array is
    /// missing or shaped differently in `got`).
    pub index: Vec<i64>,
    /// Value in the store under test (NaN when the array is missing).
    pub got: f64,
    /// Value in the reference store.
    pub want: f64,
}

impl fmt::Display for StoreMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.array)?;
        for i in &self.index {
            write!(f, "[{i}]")?;
        }
        write!(f, ": got {}, want {}", self.got, self.want)
    }
}

/// Compares `got` against the reference store `want`, element by element
/// and bit for bit (two NaNs count as equal). Every array of `want` must
/// exist in `got` with the same extents; arrays only present in `got` are
/// ignored. Returns all mismatches, in array-name then row-major order.
pub fn compare_stores(got: &Store, want: &Store) -> Vec<StoreMismatch> {
    let mut out = Vec::new();
    for (name, want_arr) in want.arrays() {
        let got_arr = match got.get(name) {
            Some(a) if a.extents() == want_arr.extents() => a,
            _ => {
                out.push(StoreMismatch {
                    array: name.to_owned(),
                    index: Vec::new(),
                    got: f64::NAN,
                    want: f64::NAN,
                });
                continue;
            }
        };
        for (flat, (&g, &w)) in got_arr.data().iter().zip(want_arr.data()).enumerate() {
            let equal = g == w || (g.is_nan() && w.is_nan());
            if !equal {
                out.push(StoreMismatch {
                    array: name.to_owned(),
                    index: unflatten(flat as i64, want_arr.extents()),
                    got: g,
                    want: w,
                });
            }
        }
    }
    out
}

fn unflatten(mut flat: i64, extents: &[i64]) -> Vec<i64> {
    let mut idx = vec![0i64; extents.len()];
    for (d, &e) in extents.iter().enumerate().rev() {
        idx[d] = flat % e;
        flat /= e;
    }
    idx
}

/// Executes a whole program in source order over the store, through
/// compiled execution plans (see the module docs).
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes. Missing
/// arrays read as zero (allocate with [`Store::allocate_for`] first to
/// make every write land).
pub fn run_program(
    program: &Program,
    sizes: &ProblemSizes,
    store: &mut Store,
) -> Result<(), InterpError> {
    for kernel in &program.kernels {
        run_kernel(kernel, sizes, store)?;
    }
    Ok(())
}

/// Executes one kernel in lexicographic iteration order through a
/// compiled [`ExecPlan`](crate::plan::ExecPlan). Kernels the plan
/// compiler cannot lower (rank or expression depth beyond its fixed
/// buffers) fall back to [`reference::run_kernel`]; results are bitwise
/// identical either way.
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes.
pub fn run_kernel(
    kernel: &Kernel,
    sizes: &ProblemSizes,
    store: &mut Store,
) -> Result<(), InterpError> {
    let trips: Vec<i64> = (0..kernel.depth())
        .map(|d| kernel.trip_count(d, sizes))
        .collect::<Result<_, _>>()
        .map_err(InterpError::UnboundParameter)?;
    if trips.iter().any(|&t| t <= 0) {
        return Ok(());
    }
    let plan = match crate::plan::ExecPlan::compile(kernel, &trips, store) {
        Some(plan) => plan,
        None => return reference::run_kernel(kernel, sizes, store),
    };
    drive_plan(&plan, &trips, store);
    Ok(())
}

/// Runs a compiled plan over its whole (non-empty-trip) iteration space
/// in lexicographic order, the innermost dimension as a plan row.
fn drive_plan(plan: &crate::plan::ExecPlan, trips: &[i64], store: &mut Store) {
    let mut point = vec![0i64; trips.len()];
    if point.is_empty() {
        plan.exec_point(store, &point);
        return;
    }
    // The innermost dimension runs as a row: linear addresses advance by
    // a precomputed stride instead of being re-derived per point.
    let mut scratch = plan.scratch();
    let last = trips.len() - 1;
    loop {
        point[last] = 0;
        plan.exec_row(store, &mut point, last, trips[last], 1, &mut scratch);
        let mut d = last;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            point[d] += 1;
            if point[d] < trips[d] {
                break;
            }
            point[d] = 0;
        }
    }
}

/// The `(name, slot, extents)` layout fingerprint compiled plans depend
/// on: plans embed dense slot numbers and row-major strides, so two
/// stores can share plans exactly when their fingerprints are equal.
pub fn store_layout(store: &Store) -> Vec<(String, usize, Vec<i64>)> {
    store
        .arrays()
        .map(|(name, a)| {
            (
                name.to_owned(),
                store.slot(name).expect("listed arrays have slots"),
                a.extents().to_vec(),
            )
        })
        .collect()
}

impl crate::plan::BatchPlan {
    /// Compiles every kernel of `program` once against `store`'s slot
    /// layout. The returned plans are shared by every store in a batch
    /// whose layout matches (see [`run_program_batch`]).
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::UnboundParameter`] on unbound sizes.
    pub fn compile(
        program: &Program,
        sizes: &ProblemSizes,
        store: &Store,
    ) -> Result<Self, InterpError> {
        let mut kernels = Vec::with_capacity(program.kernels.len());
        for kernel in &program.kernels {
            let trips: Vec<i64> = (0..kernel.depth())
                .map(|d| kernel.trip_count(d, sizes))
                .collect::<Result<_, _>>()
                .map_err(InterpError::UnboundParameter)?;
            let plan = if trips.iter().any(|&t| t <= 0) {
                None
            } else {
                crate::plan::ExecPlan::compile(kernel, &trips, store)
            };
            kernels.push((trips, plan));
        }
        Ok(crate::plan::BatchPlan {
            kernels,
            layout: store_layout(store),
        })
    }

    /// Executes the whole program over one store through the shared
    /// plans. A store whose layout diverges from the compile-time one
    /// falls back to the ordinary per-store path ([`run_program`]);
    /// results are identical either way.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::UnboundParameter`] on unbound sizes.
    pub fn run(
        &self,
        program: &Program,
        sizes: &ProblemSizes,
        store: &mut Store,
    ) -> Result<(), InterpError> {
        if store_layout(store) != self.layout {
            return run_program(program, sizes, store);
        }
        for (kernel, (trips, plan)) in program.kernels.iter().zip(&self.kernels) {
            if trips.iter().any(|&t| t <= 0) {
                continue;
            }
            match plan {
                Some(plan) => drive_plan(plan, trips, store),
                None => reference::run_kernel(kernel, sizes, store)?,
            }
        }
        Ok(())
    }
}

/// Executes a whole program over every store of a batch, compiling each
/// kernel's plan **once** (against `stores[0]`'s layout) instead of once
/// per store, and deduplicating identical runs: a store whose
/// pre-execution contents are bitwise identical to `stores[0]`'s must
/// produce the bitwise-identical result (the interpretation is a pure
/// function of program, sizes, and store contents), so it receives a
/// copy of `stores[0]`'s result instead of a re-execution. Stores with
/// different contents (or layouts) execute through the shared plans.
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes.
pub fn run_program_batch(
    program: &Program,
    sizes: &ProblemSizes,
    stores: &mut [Store],
) -> Result<(), InterpError> {
    let Some((first, rest)) = stores.split_first_mut() else {
        return Ok(());
    };
    let batch = crate::plan::BatchPlan::compile(program, sizes, first)?;
    let input = first.clone();
    batch.run(program, sizes, first)?;
    let input_layout = store_layout(&input);
    for store in rest {
        let identical = store_layout(store) == input_layout
            && compare_stores(store, &input).is_empty()
            && compare_stores(&input, store).is_empty();
        if identical {
            *store = first.clone();
        } else {
            batch.run(program, sizes, store)?;
        }
    }
    Ok(())
}

/// Executes one kernel in *tiled* order (tile loops around point loops,
/// Fig. 4 of the paper) — used to prove tiling is semantics-preserving.
/// Points execute through a compiled plan, exactly as [`run_kernel`].
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes.
pub fn run_kernel_tiled(
    nest: &TiledNest,
    sizes: &ProblemSizes,
    store: &mut Store,
) -> Result<(), InterpError> {
    let kernel = &nest.kernel;
    let trips: Vec<i64> = (0..kernel.depth())
        .map(|d| kernel.trip_count(d, sizes))
        .collect::<Result<_, _>>()
        .map_err(InterpError::UnboundParameter)?;
    if trips.iter().any(|&t| t <= 0) {
        return Ok(());
    }
    let plan = match crate::plan::ExecPlan::compile(kernel, &trips, store) {
        Some(plan) => plan,
        None => return reference::run_kernel_tiled(nest, sizes, store),
    };
    if trips.is_empty() {
        plan.exec_point(store, &[]);
        return Ok(());
    }
    let mut scratch = plan.scratch();
    let mut origin = vec![0i64; trips.len()];
    tiled_tiles(nest, &plan, &mut scratch, store, &trips, 0, &mut origin);
    Ok(())
}

/// Tile loops of the tiled execution order: recurse over tile origins,
/// then run the points of each tile (innermost dimension as a plan row).
fn tiled_tiles(
    nest: &TiledNest,
    plan: &crate::plan::ExecPlan,
    scratch: &mut crate::plan::RowScratch,
    store: &mut Store,
    trips: &[i64],
    dim: usize,
    origin: &mut Vec<i64>,
) {
    if dim == trips.len() {
        let mut point = origin.clone();
        tiled_points(nest, plan, scratch, store, trips, 0, origin, &mut point);
        return;
    }
    let step = nest.tile(dim);
    let mut t = 0;
    while t < trips[dim] {
        origin[dim] = t;
        tiled_tiles(nest, plan, scratch, store, trips, dim + 1, origin);
        t += step;
    }
}

#[allow(clippy::too_many_arguments)]
fn tiled_points(
    nest: &TiledNest,
    plan: &crate::plan::ExecPlan,
    scratch: &mut crate::plan::RowScratch,
    store: &mut Store,
    trips: &[i64],
    dim: usize,
    origin: &[i64],
    point: &mut Vec<i64>,
) {
    let upper = trips[dim].min(origin[dim] + nest.tile(dim));
    if dim == trips.len() - 1 {
        point[dim] = origin[dim];
        plan.exec_row(store, point, dim, upper - origin[dim], 1, scratch);
        return;
    }
    for v in origin[dim]..upper {
        point[dim] = v;
        tiled_points(nest, plan, scratch, store, trips, dim + 1, origin, point);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::tiling::TileConfig;

    fn sizes3(n: i64) -> ProblemSizes {
        ProblemSizes::new([("M", n), ("N", n), ("P", n)])
    }

    #[test]
    fn matmul_multiplies_matrices() {
        let p = parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap();
        let n = 6;
        let sizes = sizes3(n);
        let mut store = Store::new();
        store.allocate_for(&p, &sizes).unwrap();
        store.insert(
            "A",
            Array::from_fn(vec![n, n], |i| (i[0] * 2 + i[1]) as f64),
        );
        store.insert(
            "B",
            Array::from_fn(vec![n, n], |i| (i[0] - 3 * i[1]) as f64),
        );
        run_program(&p, &sizes, &mut store).unwrap();
        // Cross-check against a direct triple loop.
        let a = store.get("A").unwrap().clone();
        let b = store.get("B").unwrap().clone();
        let c = store.get("C").unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut expect = 0.0;
                for k in 0..n {
                    expect += a.get(&[i, k]) * b.get(&[k, j]);
                }
                assert_eq!(c.get(&[i, j]), expect, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn stencil_averages_neighbours() {
        let p = parse_program(
            "kernel s(N) {
               for (i: N) B[i] = 0.5 * (A[i-1] + A[i+1]);
             }",
        )
        .unwrap();
        let sizes = ProblemSizes::new([("N", 5)]);
        let mut store = Store::new();
        store.allocate_for(&p, &sizes).unwrap();
        store.insert("A", Array::from_fn(vec![7], |i| i[0] as f64));
        run_program(&p, &sizes, &mut store).unwrap();
        let b = store.get("B").unwrap();
        // interior points: (A[i-1] + A[i+1]) / 2 = i (A is the identity ramp)
        for i in 1..5 {
            assert_eq!(b.get(&[i]), i as f64);
        }
        // boundary: A[-1] reads 0.
        assert_eq!(b.get(&[0]), 0.5);
    }

    #[test]
    fn scalar_reads_work() {
        let p = parse_program("kernel ax(N) { for (i: N) y[i] = alpha * x[i]; }").unwrap();
        let sizes = ProblemSizes::new([("N", 4)]);
        let mut store = Store::new();
        store.allocate_for(&p, &sizes).unwrap();
        store.insert("alpha", Array::from_fn(vec![1], |_| 2.5));
        store.insert("x", Array::from_fn(vec![4], |i| i[0] as f64));
        run_program(&p, &sizes, &mut store).unwrap();
        let y = store.get("y").unwrap();
        assert_eq!(y.get(&[3]), 7.5);
    }

    #[test]
    fn tiled_execution_matches_untiled_for_matmul() {
        let p = parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap();
        let kernel = &p.kernels[0];
        let n = 7;
        let sizes = sizes3(n);
        let init = |store: &mut Store| {
            store.allocate_for(&p, &sizes).unwrap();
            store.insert(
                "A",
                Array::from_fn(vec![n, n], |i| ((i[0] * 13 + i[1] * 7) % 5) as f64),
            );
            store.insert(
                "B",
                Array::from_fn(vec![n, n], |i| ((i[0] * 3 + i[1]) % 4) as f64),
            );
        };
        let mut untiled = Store::new();
        init(&mut untiled);
        run_kernel(kernel, &sizes, &mut untiled).unwrap();
        for tiles in [vec![2, 3, 4], vec![8, 8, 8], vec![1, 7, 2]] {
            let nest = TiledNest::new(kernel, &TileConfig::new(tiles.clone())).unwrap();
            let mut tiled = Store::new();
            init(&mut tiled);
            run_kernel_tiled(&nest, &sizes, &mut tiled).unwrap();
            // Reductions are reassociated by tiling; on small integer
            // inputs the sums are exact in f64, so results are identical.
            assert_eq!(
                tiled.get("C").unwrap(),
                untiled.get("C").unwrap(),
                "tiles {tiles:?}"
            );
        }
    }

    #[test]
    fn tiled_execution_matches_untiled_for_stencil() {
        let p = parse_program(
            "kernel jac(N) {
               for (i: N) for (j: N)
                 B[i][j] = 0.25 * (A[i][j-1] + A[i][j+1] + A[i-1][j] + A[i+1][j]);
             }",
        )
        .unwrap();
        let kernel = &p.kernels[0];
        let sizes = ProblemSizes::new([("N", 9)]);
        let init = |store: &mut Store| {
            store.allocate_for(&p, &sizes).unwrap();
            store.insert(
                "A",
                Array::from_fn(vec![11, 11], |i| (i[0] * i[1]) as f64),
            );
        };
        let mut untiled = Store::new();
        init(&mut untiled);
        run_kernel(kernel, &sizes, &mut untiled).unwrap();
        let nest =
            TiledNest::new(kernel, &TileConfig::new(vec![4, 3])).unwrap();
        let mut tiled = Store::new();
        init(&mut tiled);
        run_kernel_tiled(&nest, &sizes, &mut tiled).unwrap();
        assert_eq!(tiled.get("B").unwrap(), untiled.get("B").unwrap());
    }

    #[test]
    fn out_of_store_arrays_read_zero() {
        let p = parse_program("kernel z(N) { for (i: N) y[i] = ghost[i] + 1.0; }").unwrap();
        let sizes = ProblemSizes::new([("N", 3)]);
        let mut store = Store::new();
        store.insert("y", Array::zeros(vec![3]));
        run_program(&p, &sizes, &mut store).unwrap();
        assert_eq!(store.get("y").unwrap().get(&[0]), 1.0);
    }

    #[test]
    fn array_accessors_and_bounds() {
        let mut a = Array::zeros(vec![2, 3]);
        a.set(&[1, 2], 9.0);
        assert_eq!(a.get(&[1, 2]), 9.0);
        assert_eq!(a.get(&[2, 0]), 0.0, "out of bounds reads zero");
        a.set(&[-1, 0], 5.0); // dropped
        assert!(a.data().iter().sum::<f64>() == 9.0);
        assert_eq!(a.extents(), &[2, 3]);
    }

    #[test]
    fn from_fn_enumerates_row_major() {
        // The linear-cursor fill must visit every index exactly once, in
        // row-major order, with the right multi-index at each element.
        let a = Array::from_fn(vec![2, 3, 4], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(a.get(&[i, j, k]), (i * 100 + j * 10 + k) as f64);
                }
            }
        }
        // 1-element and rank-1 arrays run through the same cursor.
        assert_eq!(Array::from_fn(vec![1], |_| 7.0).get(&[0]), 7.0);
        let ramp = Array::from_fn(vec![5], |i| i[0] as f64);
        assert_eq!(ramp.data(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn store_replacement_keeps_slots_and_equality_is_logical() {
        let mut a = Store::new();
        a.insert("x", Array::zeros(vec![2]));
        a.insert("y", Array::zeros(vec![3]));
        let x_slot = a.slot("x").unwrap();
        a.insert("x", Array::from_fn(vec![2], |i| i[0] as f64));
        assert_eq!(a.slot("x").unwrap(), x_slot, "replacement keeps the slot");
        assert_eq!(a.get("x").unwrap().get(&[1]), 1.0);
        // Equality ignores insertion order.
        let mut b = Store::new();
        b.insert("y", Array::zeros(vec![3]));
        b.insert("x", Array::from_fn(vec![2], |i| i[0] as f64));
        assert_eq!(a, b);
        b.insert("y", Array::zeros(vec![4]));
        assert_ne!(a, b);
    }

    #[test]
    fn batch_matches_per_store_runs() {
        let p = parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap();
        let n = 5;
        let sizes = sizes3(n);
        // Three stores: #0 and #2 identical (dedup copy), #1 different
        // contents with the same layout (runs through the shared plans).
        let seed = |salt: i64| {
            let mut store = Store::new();
            store.allocate_for(&p, &sizes).unwrap();
            store.insert(
                "A",
                Array::from_fn(vec![n, n], |i| ((i[0] * 2 + i[1] + salt) % 5) as f64),
            );
            store.insert(
                "B",
                Array::from_fn(vec![n, n], |i| ((i[0] - 3 * i[1]) % 4) as f64),
            );
            store
        };
        let mut batched = [seed(0), seed(1), seed(0)];
        let mut singles = [seed(0), seed(1), seed(0)];
        run_program_batch(&p, &sizes, &mut batched).unwrap();
        for s in &mut singles {
            run_program(&p, &sizes, s).unwrap();
        }
        for (i, (b, s)) in batched.iter().zip(&singles).enumerate() {
            let mismatches = compare_stores(b, s);
            assert!(mismatches.is_empty(), "store {i}: {mismatches:?}");
        }
    }

    #[test]
    fn batch_layout_divergence_falls_back_per_store() {
        let p = parse_program("kernel ax(N) { for (i: N) y[i] = 2.0 * x[i]; }").unwrap();
        let sizes = ProblemSizes::new([("N", 4)]);
        let seed = || {
            let mut store = Store::new();
            store.allocate_for(&p, &sizes).unwrap();
            store.insert("x", Array::from_fn(vec![4], |i| i[0] as f64));
            store
        };
        let mut odd = Store::new();
        // Different insertion order → different slot numbering: the
        // shared plans must not be applied to this store.
        odd.insert("x", Array::from_fn(vec![4], |i| (i[0] + 1) as f64));
        odd.insert("y", Array::zeros(vec![4]));
        let mut batched = [seed(), odd.clone()];
        run_program_batch(&p, &sizes, &mut batched).unwrap();
        run_program(&p, &sizes, &mut odd).unwrap();
        assert!(compare_stores(&batched[1], &odd).is_empty());
        assert_eq!(batched[0].get("y").unwrap().get(&[3]), 6.0);
    }

    #[test]
    fn zero_trip_kernels_are_noops() {
        let p = parse_program("kernel e(N) { for (i: N) A[i] = 1.0; }").unwrap();
        let sizes = ProblemSizes::new([("N", 0)]);
        let mut store = Store::new();
        store.insert("A", Array::zeros(vec![1]));
        run_program(&p, &sizes, &mut store).unwrap();
        assert_eq!(store.get("A").unwrap().get(&[0]), 0.0);
    }
}
