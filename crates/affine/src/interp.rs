//! A reference interpreter for the affine IR.
//!
//! Executes programs on real (small) arrays, giving the IR an executable
//! semantics independent of any GPU. Used by the test suite to prove
//! that:
//!
//! * the parser's IR means what the source says (matmul really multiplies
//!   matrices, stencils really smooth),
//! * the tiling transformation is semantics-preserving: executing the
//!   iteration space in tiled order produces bitwise-identical results
//!   for reduction-style kernels and identical results for data-parallel
//!   ones.
//!
//! Arrays are dense row-major `f64` buffers indexed by the reference
//! subscripts; out-of-bounds accesses (stencil halos) read 0 and drop
//! writes, matching padded-array conventions.

use crate::ir::{ArrayRef, Kernel, Program, RhsExpr, Statement};
use crate::tiling::TiledNest;
use crate::ProblemSizes;
use std::collections::BTreeMap;
use std::fmt;

/// A dense row-major array store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Store {
    arrays: BTreeMap<String, Array>,
}

/// One dense array.
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    extents: Vec<i64>,
    data: Vec<f64>,
}

impl Array {
    /// A zero-initialized array with the given extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is non-positive.
    pub fn zeros(extents: Vec<i64>) -> Self {
        assert!(extents.iter().all(|&e| e > 0), "extents must be positive");
        let len: i64 = extents.iter().product();
        Array {
            extents,
            data: vec![0.0; len as usize],
        }
    }

    /// Builds an array from extents and a fill function over indices.
    pub fn from_fn(extents: Vec<i64>, mut f: impl FnMut(&[i64]) -> f64) -> Self {
        let mut a = Array::zeros(extents);
        let extents = a.extents.clone();
        let mut idx = vec![0i64; extents.len()];
        loop {
            let v = f(&idx);
            let flat = a.flatten(&idx).expect("in-bounds enumeration");
            a.data[flat] = v;
            // Increment the multi-index.
            let mut d = extents.len();
            loop {
                if d == 0 {
                    return a;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < extents[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    /// Array extents.
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Value at a multi-index (0.0 when out of bounds).
    pub fn get(&self, idx: &[i64]) -> f64 {
        match self.flatten(idx) {
            Some(i) => self.data[i],
            None => 0.0,
        }
    }

    /// Writes a value at a multi-index (dropped when out of bounds).
    pub fn set(&mut self, idx: &[i64], v: f64) {
        if let Some(i) = self.flatten(idx) {
            self.data[i] = v;
        }
    }

    fn flatten(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.extents.len() {
            return None;
        }
        let mut flat: i64 = 0;
        for (&i, &e) in idx.iter().zip(&self.extents) {
            if i < 0 || i >= e {
                return None;
            }
            flat = flat * e + i;
        }
        Some(flat as usize)
    }
}

/// Interpretation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// An array used by the program is missing from the store.
    MissingArray(String),
    /// A problem-size parameter is unbound.
    UnboundParameter(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::MissingArray(a) => write!(f, "array `{a}` not in the store"),
            InterpError::UnboundParameter(p) => {
                write!(f, "problem-size parameter `{p}` is unbound")
            }
        }
    }
}

impl std::error::Error for InterpError {}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Inserts (or replaces) an array.
    pub fn insert(&mut self, name: impl Into<String>, array: Array) {
        self.arrays.insert(name.into(), array);
    }

    /// Looks an array up.
    pub fn get(&self, name: &str) -> Option<&Array> {
        self.arrays.get(name)
    }

    /// Iterates over `(name, array)` pairs in name order.
    pub fn arrays(&self) -> impl Iterator<Item = (&str, &Array)> {
        self.arrays.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Pre-allocates every array a program touches (zeros), sizing each
    /// subscript by the maximum trip count of the dims it uses plus the
    /// halo offsets. Scalars (no subscripts) become 1-element arrays.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::UnboundParameter`] on unbound sizes.
    pub fn allocate_for(
        &mut self,
        program: &Program,
        sizes: &ProblemSizes,
    ) -> Result<(), InterpError> {
        for kernel in &program.kernels {
            for stmt in &kernel.stmts {
                for r in std::iter::once(&stmt.write).chain(stmt.reads.iter()) {
                    let extents = self.extents_of(kernel, r, sizes)?;
                    match self.arrays.get(&r.array) {
                        Some(existing) if existing.extents().len() >= extents.len() => {}
                        _ => {
                            self.insert(r.array.clone(), Array::zeros(extents));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn extents_of(
        &self,
        kernel: &Kernel,
        r: &ArrayRef,
        sizes: &ProblemSizes,
    ) -> Result<Vec<i64>, InterpError> {
        if r.subscripts.is_empty() {
            return Ok(vec![1]);
        }
        r.subscripts
            .iter()
            .map(|s| {
                let mut extent = s.offset().abs() + 1;
                for &(d, c) in s.terms() {
                    let n = kernel
                        .trip_count(d, sizes)
                        .map_err(InterpError::UnboundParameter)?;
                    extent += c.abs() * n;
                }
                Ok(extent.max(1))
            })
            .collect()
    }
}

/// A read interception hook: receives the reference being read and its
/// evaluated subscript indices (empty for scalars) and may override the
/// value that would be read from the store. Returning `None` falls through
/// to the ordinary store read. Used by external executors (e.g. the
/// `eatss-ppcg` GPU emulator) to route reads through staged
/// shared-memory buffers.
pub type ReadHook<'a> = dyn FnMut(&ArrayRef, &[i64]) -> Option<f64> + 'a;

fn eval_rhs(
    e: &RhsExpr,
    stmt: &Statement,
    store: &Store,
    point: &[i64],
    hook: &mut ReadHook<'_>,
) -> f64 {
    match e {
        RhsExpr::Num(v) => *v,
        RhsExpr::Ref(i) => {
            let r = &stmt.reads[*i];
            read_ref(r, store, point, hook)
        }
        RhsExpr::Bin(op, a, b) => {
            let x = eval_rhs(a, stmt, store, point, hook);
            let y = eval_rhs(b, stmt, store, point, hook);
            match op {
                '+' => x + y,
                '-' => x - y,
                '*' => x * y,
                '/' => x / y,
                _ => f64::NAN,
            }
        }
        RhsExpr::Neg(a) => -eval_rhs(a, stmt, store, point, hook),
    }
}

fn read_ref(r: &ArrayRef, store: &Store, point: &[i64], hook: &mut ReadHook<'_>) -> f64 {
    let idx: Vec<i64> = r.subscripts.iter().map(|s| s.eval(point)).collect();
    if let Some(v) = hook(r, &idx) {
        return v;
    }
    let array = match store.get(&r.array) {
        Some(a) => a,
        None => return 0.0,
    };
    if r.subscripts.is_empty() {
        return array.get(&[0]);
    }
    array.get(&idx)
}

/// Executes every statement of `kernel` at one iteration point, in textual
/// order, over the store. This is the per-point semantics shared by all
/// execution orders ([`run_kernel`], [`run_kernel_tiled`], and external
/// executors such as the GPU emulator in `eatss-ppcg`).
pub fn exec_point(kernel: &Kernel, store: &mut Store, point: &[i64]) {
    exec_point_hooked(kernel, store, point, &mut |_, _| None);
}

/// Like [`exec_point`], but right-hand-side reads are first offered to
/// `hook` (see [`ReadHook`]). The implicit read of an accumulation target
/// (`+=`) always goes to the store: accumulated references live in
/// L1/registers on the GPU, never in staged shared memory.
pub fn exec_point_hooked(
    kernel: &Kernel,
    store: &mut Store,
    point: &[i64],
    hook: &mut ReadHook<'_>,
) {
    for stmt in &kernel.stmts {
        let value = eval_rhs(&stmt.rhs, stmt, store, point, hook);
        let idx: Vec<i64> = if stmt.write.subscripts.is_empty() {
            vec![0]
        } else {
            stmt.write.subscripts.iter().map(|s| s.eval(point)).collect()
        };
        let array = match store.arrays.get_mut(&stmt.write.array) {
            Some(a) => a,
            None => continue,
        };
        if stmt.is_accumulation {
            let old = array.get(&idx);
            array.set(&idx, old + value);
        } else {
            array.set(&idx, value);
        }
    }
}

/// One element-wise disagreement between two stores.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMismatch {
    /// Array name.
    pub array: String,
    /// Multi-index of the disagreeing element (empty when the array is
    /// missing or shaped differently in `got`).
    pub index: Vec<i64>,
    /// Value in the store under test (NaN when the array is missing).
    pub got: f64,
    /// Value in the reference store.
    pub want: f64,
}

impl fmt::Display for StoreMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.array)?;
        for i in &self.index {
            write!(f, "[{i}]")?;
        }
        write!(f, ": got {}, want {}", self.got, self.want)
    }
}

/// Compares `got` against the reference store `want`, element by element
/// and bit for bit (two NaNs count as equal). Every array of `want` must
/// exist in `got` with the same extents; arrays only present in `got` are
/// ignored. Returns all mismatches, in array-name then row-major order.
pub fn compare_stores(got: &Store, want: &Store) -> Vec<StoreMismatch> {
    let mut out = Vec::new();
    for (name, want_arr) in want.arrays() {
        let got_arr = match got.get(name) {
            Some(a) if a.extents() == want_arr.extents() => a,
            _ => {
                out.push(StoreMismatch {
                    array: name.to_owned(),
                    index: Vec::new(),
                    got: f64::NAN,
                    want: f64::NAN,
                });
                continue;
            }
        };
        for (flat, (&g, &w)) in got_arr.data().iter().zip(want_arr.data()).enumerate() {
            let equal = g == w || (g.is_nan() && w.is_nan());
            if !equal {
                out.push(StoreMismatch {
                    array: name.to_owned(),
                    index: unflatten(flat as i64, want_arr.extents()),
                    got: g,
                    want: w,
                });
            }
        }
    }
    out
}

fn unflatten(mut flat: i64, extents: &[i64]) -> Vec<i64> {
    let mut idx = vec![0i64; extents.len()];
    for (d, &e) in extents.iter().enumerate().rev() {
        idx[d] = flat % e;
        flat /= e;
    }
    idx
}

/// Executes a whole program in source order over the store.
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes. Missing
/// arrays read as zero (allocate with [`Store::allocate_for`] first to
/// make every write land).
pub fn run_program(
    program: &Program,
    sizes: &ProblemSizes,
    store: &mut Store,
) -> Result<(), InterpError> {
    for kernel in &program.kernels {
        run_kernel(kernel, sizes, store)?;
    }
    Ok(())
}

/// Executes one kernel in lexicographic iteration order.
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes.
pub fn run_kernel(
    kernel: &Kernel,
    sizes: &ProblemSizes,
    store: &mut Store,
) -> Result<(), InterpError> {
    let trips: Vec<i64> = (0..kernel.depth())
        .map(|d| kernel.trip_count(d, sizes))
        .collect::<Result<_, _>>()
        .map_err(InterpError::UnboundParameter)?;
    let mut point = vec![0i64; trips.len()];
    if trips.iter().any(|&t| t <= 0) {
        return Ok(());
    }
    loop {
        exec_point(kernel, store, &point);
        let mut d = trips.len();
        loop {
            if d == 0 {
                return Ok(());
            }
            d -= 1;
            point[d] += 1;
            if point[d] < trips[d] {
                break;
            }
            point[d] = 0;
        }
    }
}

/// Executes one kernel in *tiled* order (tile loops around point loops,
/// Fig. 4 of the paper) — used to prove tiling is semantics-preserving.
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes.
pub fn run_kernel_tiled(
    nest: &TiledNest,
    sizes: &ProblemSizes,
    store: &mut Store,
) -> Result<(), InterpError> {
    let points = nest
        .enumerate_points(sizes)
        .map_err(InterpError::UnboundParameter)?;
    for point in points {
        exec_point(&nest.kernel, store, &point);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::tiling::TileConfig;

    fn sizes3(n: i64) -> ProblemSizes {
        ProblemSizes::new([("M", n), ("N", n), ("P", n)])
    }

    #[test]
    fn matmul_multiplies_matrices() {
        let p = parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap();
        let n = 6;
        let sizes = sizes3(n);
        let mut store = Store::new();
        store.allocate_for(&p, &sizes).unwrap();
        store.insert(
            "A",
            Array::from_fn(vec![n, n], |i| (i[0] * 2 + i[1]) as f64),
        );
        store.insert(
            "B",
            Array::from_fn(vec![n, n], |i| (i[0] - 3 * i[1]) as f64),
        );
        run_program(&p, &sizes, &mut store).unwrap();
        // Cross-check against a direct triple loop.
        let a = store.get("A").unwrap().clone();
        let b = store.get("B").unwrap().clone();
        let c = store.get("C").unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut expect = 0.0;
                for k in 0..n {
                    expect += a.get(&[i, k]) * b.get(&[k, j]);
                }
                assert_eq!(c.get(&[i, j]), expect, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn stencil_averages_neighbours() {
        let p = parse_program(
            "kernel s(N) {
               for (i: N) B[i] = 0.5 * (A[i-1] + A[i+1]);
             }",
        )
        .unwrap();
        let sizes = ProblemSizes::new([("N", 5)]);
        let mut store = Store::new();
        store.allocate_for(&p, &sizes).unwrap();
        store.insert("A", Array::from_fn(vec![7], |i| i[0] as f64));
        run_program(&p, &sizes, &mut store).unwrap();
        let b = store.get("B").unwrap();
        // interior points: (A[i-1] + A[i+1]) / 2 = i (A is the identity ramp)
        for i in 1..5 {
            assert_eq!(b.get(&[i]), i as f64);
        }
        // boundary: A[-1] reads 0.
        assert_eq!(b.get(&[0]), 0.5);
    }

    #[test]
    fn scalar_reads_work() {
        let p = parse_program("kernel ax(N) { for (i: N) y[i] = alpha * x[i]; }").unwrap();
        let sizes = ProblemSizes::new([("N", 4)]);
        let mut store = Store::new();
        store.allocate_for(&p, &sizes).unwrap();
        store.insert("alpha", Array::from_fn(vec![1], |_| 2.5));
        store.insert("x", Array::from_fn(vec![4], |i| i[0] as f64));
        run_program(&p, &sizes, &mut store).unwrap();
        let y = store.get("y").unwrap();
        assert_eq!(y.get(&[3]), 7.5);
    }

    #[test]
    fn tiled_execution_matches_untiled_for_matmul() {
        let p = parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap();
        let kernel = &p.kernels[0];
        let n = 7;
        let sizes = sizes3(n);
        let init = |store: &mut Store| {
            store.allocate_for(&p, &sizes).unwrap();
            store.insert(
                "A",
                Array::from_fn(vec![n, n], |i| ((i[0] * 13 + i[1] * 7) % 5) as f64),
            );
            store.insert(
                "B",
                Array::from_fn(vec![n, n], |i| ((i[0] * 3 + i[1]) % 4) as f64),
            );
        };
        let mut untiled = Store::new();
        init(&mut untiled);
        run_kernel(kernel, &sizes, &mut untiled).unwrap();
        for tiles in [vec![2, 3, 4], vec![8, 8, 8], vec![1, 7, 2]] {
            let nest = TiledNest::new(kernel, &TileConfig::new(tiles.clone())).unwrap();
            let mut tiled = Store::new();
            init(&mut tiled);
            run_kernel_tiled(&nest, &sizes, &mut tiled).unwrap();
            // Reductions are reassociated by tiling; on small integer
            // inputs the sums are exact in f64, so results are identical.
            assert_eq!(
                tiled.get("C").unwrap(),
                untiled.get("C").unwrap(),
                "tiles {tiles:?}"
            );
        }
    }

    #[test]
    fn tiled_execution_matches_untiled_for_stencil() {
        let p = parse_program(
            "kernel jac(N) {
               for (i: N) for (j: N)
                 B[i][j] = 0.25 * (A[i][j-1] + A[i][j+1] + A[i-1][j] + A[i+1][j]);
             }",
        )
        .unwrap();
        let kernel = &p.kernels[0];
        let sizes = ProblemSizes::new([("N", 9)]);
        let init = |store: &mut Store| {
            store.allocate_for(&p, &sizes).unwrap();
            store.insert(
                "A",
                Array::from_fn(vec![11, 11], |i| (i[0] * i[1]) as f64),
            );
        };
        let mut untiled = Store::new();
        init(&mut untiled);
        run_kernel(kernel, &sizes, &mut untiled).unwrap();
        let nest =
            TiledNest::new(kernel, &TileConfig::new(vec![4, 3])).unwrap();
        let mut tiled = Store::new();
        init(&mut tiled);
        run_kernel_tiled(&nest, &sizes, &mut tiled).unwrap();
        assert_eq!(tiled.get("B").unwrap(), untiled.get("B").unwrap());
    }

    #[test]
    fn out_of_store_arrays_read_zero() {
        let p = parse_program("kernel z(N) { for (i: N) y[i] = ghost[i] + 1.0; }").unwrap();
        let sizes = ProblemSizes::new([("N", 3)]);
        let mut store = Store::new();
        store.insert("y", Array::zeros(vec![3]));
        run_program(&p, &sizes, &mut store).unwrap();
        assert_eq!(store.get("y").unwrap().get(&[0]), 1.0);
    }

    #[test]
    fn array_accessors_and_bounds() {
        let mut a = Array::zeros(vec![2, 3]);
        a.set(&[1, 2], 9.0);
        assert_eq!(a.get(&[1, 2]), 9.0);
        assert_eq!(a.get(&[2, 0]), 0.0, "out of bounds reads zero");
        a.set(&[-1, 0], 5.0); // dropped
        assert!(a.data().iter().sum::<f64>() == 9.0);
        assert_eq!(a.extents(), &[2, 3]);
    }

    #[test]
    fn zero_trip_kernels_are_noops() {
        let p = parse_program("kernel e(N) { for (i: N) A[i] = 1.0; }").unwrap();
        let sizes = ProblemSizes::new([("N", 0)]);
        let mut store = Store::new();
        store.insert("A", Array::zeros(vec![1]));
        run_program(&p, &sizes, &mut store).unwrap();
        assert_eq!(store.get("A").unwrap().get(&[0]), 0.0);
    }
}
