//! Seeded synthetic affine-program generator.
//!
//! Produces random — but always grammatically valid — programs in the
//! affine-C dialect, for two consumers:
//!
//! * the `bench_parse` bin, which needs corpora large and varied enough
//!   that parser throughput numbers mean something;
//! * the fuzz/differential test suites, which feed the same generated
//!   source to both parser engines and through the
//!   parse → pretty → re-parse fixpoint.
//!
//! Determinism is the whole contract: `generate_program(seed, cfg)` is a
//! pure function of its arguments, so every test failure and every bench
//! corpus is reproducible from a `u64`.

/// Tunables for [`generate_program`]. Field ranges are inclusive where
/// they are ranges; the generator clamps degenerate values to 1.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of kernels in the program.
    pub kernels: usize,
    /// Maximum loop-nest depth per kernel (actual depth is 1..=max).
    pub max_depth: usize,
    /// Maximum statements per kernel body (actual count is 1..=max).
    pub max_stmts: usize,
    /// Maximum operand count in a right-hand-side expression chain.
    pub max_expr_terms: usize,
    /// Emit `// comments` and irregular whitespace so the trivia path
    /// is exercised too.
    pub trivia: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            kernels: 2,
            max_depth: 3,
            max_stmts: 2,
            max_expr_terms: 4,
            trivia: true,
        }
    }
}

/// xorshift64* — the same tiny deterministic PRNG the gpusim fault
/// injector uses; good enough for corpus shaping, zero dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // splitmix64 scramble so adjacent seeds land in distant states.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Rng((z ^ (z >> 31)).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n` (n ≥ 1).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// True with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

// Identifier shapes modeled on the real kernel corpus (`eatss-kernels`,
// `examples/kernels/`): descriptive snake_case array names, not
// single letters — parser cost is dominated by identifier handling, so
// name lengths must look like real code for MB/s to mean anything.
const ARRAYS: &[&str] = &[
    "A",
    "B",
    "acc",
    "tmp0",
    "coeff_matrix",
    "grid_input",
    "grid_output",
    "stencil_weights",
    "partial_sums",
    "batched_lhs",
    "batched_rhs",
    "threshold_map",
    "gradient_x",
    "gradient_y",
    "conv_filter",
    "activation_buf",
];
const FLOATS: &[&str] = &["2", "3", "0.5", "3.0", "0.25", "1.5"];
const COMMENTS: &[&str] = &[
    "// accumulate the partial contraction for this tile row",
    "// halo cells are handled by the clamped subscripts below",
    "// inner product over the shared dimension",
    "// write-back: one cache line per iteration of the innermost loop",
    "// generated nest (seeded synthetic corpus, see parser::gen)",
    "// coefficients are broadcast from the first tile",
];

/// Generates one program: a pure function of `(seed, cfg)`.
pub fn generate_program(seed: u64, cfg: &GenConfig) -> String {
    let mut rng = Rng::new(seed);
    let mut out = String::new();
    for k in 0..cfg.kernels.max(1) {
        gen_kernel(&mut rng, cfg, k, &mut out);
    }
    out
}

fn gen_kernel(rng: &mut Rng, cfg: &GenConfig, idx: usize, out: &mut String) {
    let depth = 1 + rng.below(cfg.max_depth.max(1));
    // Extent per dimension: mostly parameters (N0, N1, ...), sometimes a
    // compile-time constant.
    let extents: Vec<Option<String>> = (0..depth)
        .map(|d| {
            if rng.chance(1, 5) {
                None // const extent
            } else {
                Some(format!("N{d}"))
            }
        })
        .collect();
    let params: Vec<&String> = extents.iter().flatten().collect();
    if cfg.trivia && rng.chance(2, 3) {
        out.push_str(COMMENTS[rng.below(COMMENTS.len())]);
        out.push('\n');
    }
    const KERNEL_NAMES: &[&str] = &[
        "contract_stage",
        "stencil_sweep",
        "batched_update",
        "reduce_rows",
        "elementwise_scale",
    ];
    out.push_str(&format!(
        "kernel {}_{idx}(",
        KERNEL_NAMES[rng.below(KERNEL_NAMES.len())]
    ));
    for (i, p) in params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(p);
    }
    out.push_str(") {\n");
    for (d, ext) in extents.iter().enumerate() {
        let seq = if d == 0 && rng.chance(1, 6) { "seq " } else { "" };
        let extent = match ext {
            Some(p) => p.clone(),
            None => format!("{}", 16 << rng.below(4)),
        };
        out.push_str(&"  ".repeat(d + 1));
        out.push_str(&format!("for {seq}(i{d}: {extent})\n"));
    }
    let stmts = 1 + rng.below(cfg.max_stmts.max(1));
    let indent = "  ".repeat(depth + 1);
    if stmts > 1 {
        out.push_str(&"  ".repeat(depth));
        out.push_str("{\n");
    }
    for _ in 0..stmts {
        out.push_str(&indent);
        gen_stmt(rng, cfg, depth, out);
        out.push('\n');
        if cfg.trivia && rng.chance(1, 4) {
            out.push_str(&indent);
            out.push_str(COMMENTS[rng.below(COMMENTS.len())]);
            out.push('\n');
        }
    }
    if stmts > 1 {
        out.push_str(&"  ".repeat(depth));
        out.push_str("}\n");
    }
    out.push_str("}\n");
}

fn gen_stmt(rng: &mut Rng, cfg: &GenConfig, depth: usize, out: &mut String) {
    gen_ref(rng, depth, out);
    out.push_str(if rng.chance(1, 3) { " += " } else { " = " });
    gen_expr(rng, cfg, depth, out);
    out.push(';');
}

const OPS: [char; 4] = ['+', '-', '*', '/'];

fn gen_expr(rng: &mut Rng, cfg: &GenConfig, depth: usize, out: &mut String) {
    let terms = 1 + rng.below(cfg.max_expr_terms.max(1));
    for t in 0..terms {
        if t > 0 {
            out.push(' ');
            out.push(OPS[rng.below(4)]);
            out.push(' ');
        }
        gen_operand(rng, depth, out);
    }
}

fn gen_operand(rng: &mut Rng, depth: usize, out: &mut String) {
    // Single leading negation only: `--x` is a parse error by design.
    if rng.chance(1, 8) {
        out.push('-');
    }
    if rng.chance(1, 4) {
        // Parenthesized sub-chain.
        out.push('(');
        let terms = 2 + rng.below(2);
        for t in 0..terms {
            if t > 0 {
                out.push(' ');
                out.push(OPS[rng.below(4)]);
                out.push(' ');
            }
            gen_operand_leaf(rng, depth, out);
        }
        out.push(')');
    } else {
        gen_operand_leaf(rng, depth, out);
    }
}

fn gen_operand_leaf(rng: &mut Rng, depth: usize, out: &mut String) {
    if rng.chance(1, 4) {
        out.push_str(FLOATS[rng.below(FLOATS.len())]);
    } else {
        gen_ref(rng, depth, out);
    }
}

fn gen_ref(rng: &mut Rng, depth: usize, out: &mut String) {
    out.push_str(ARRAYS[rng.below(ARRAYS.len())]);
    if rng.chance(1, 8) {
        return; // scalar reference
    }
    let rank = 1 + rng.below(depth.min(3));
    for _ in 0..rank {
        out.push('[');
        gen_subscript(rng, depth, out);
        out.push(']');
    }
}

fn gen_subscript(rng: &mut Rng, depth: usize, out: &mut String) {
    let d = rng.below(depth);
    // Coefficients stay nonzero and small; a `0*i` term would be an
    // all-zero row the analyses reject, and the dialect has no use for it.
    match rng.below(7) {
        0 => out.push_str(&format!("i{d}")),
        1 => out.push_str(&format!("i{d}+{}", 1 + rng.below(3))),
        2 => out.push_str(&format!("i{d}-{}", 1 + rng.below(3))),
        3 => out.push_str(&format!("{}*i{d}", 2 + rng.below(2))),
        4 => out.push_str(&format!("i{d}*{}", 2 + rng.below(2))),
        5 => out.push_str(&format!("-i{d}+{}", 1 + rng.below(4))),
        _ => {
            // Multi-term affine over two distinct dims when depth allows.
            if depth >= 2 {
                let other = (d + 1 + rng.below(depth - 1)) % depth;
                out.push_str(&format!("i{d}+i{other}"));
            } else {
                out.push_str(&format!("i{d}"));
            }
        }
    }
}

/// Total bytes of a corpus generated from `seeds` with `cfg` — the
/// denominator `bench_parse` reports MB/s against.
pub fn corpus_bytes(seeds: &[u64], cfg: &GenConfig) -> usize {
    seeds
        .iter()
        .map(|&s| generate_program(s, cfg).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        assert_eq!(generate_program(42, &cfg), generate_program(42, &cfg));
        assert_ne!(generate_program(42, &cfg), generate_program(43, &cfg));
    }

    #[test]
    fn generated_programs_parse() {
        let cfg = GenConfig {
            kernels: 3,
            max_depth: 4,
            max_stmts: 3,
            max_expr_terms: 5,
            trivia: true,
        };
        for seed in 0..64 {
            let src = generate_program(seed, &cfg);
            super::super::parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }
}
