//! Parser for a small affine-C dialect.
//!
//! All benchmark kernels in the reproduction are declared in this dialect,
//! which captures exactly the program fragment EATSS and PPCG reason about:
//! perfectly nested loops with affine subscripts.
//!
//! ```text
//! program := kernel+
//! kernel  := "kernel" IDENT "(" IDENT ("," IDENT)* ")" "{" loop "}"
//! loop    := "for" ["seq"] "(" IDENT ":" extent ")" body
//! extent  := IDENT | INT
//! body    := loop | "{" stmt+ "}" | stmt
//! stmt    := ref ("=" | "+=") expr ";"
//! ref     := IDENT ("[" affine "]")*
//! affine  := ["-"] aterm (("+" | "-") aterm)*
//! aterm   := INT ["*" IDENT] | IDENT ["*" INT]
//! expr    := unary (("+" | "-" | "*" | "/") unary)*
//! unary   := ["-"] (ref | NUMBER | "(" expr ")")
//! ```
//!
//! `for seq (t: T)` marks a loop as serial — used for stencil time loops,
//! whose inter-statement carried dependences the single-nest IR does not
//! represent (see DESIGN.md).
//!
//! # Engine architecture (DESIGN.md §16)
//!
//! The default engine is a single-pass, zero-copy parser:
//!
//! * the lexer produces **span tokens** — a kind plus a byte range over
//!   the input `&str`; no per-token heap allocation, numbers are decoded
//!   only when a grammar position consumes them;
//! * identifiers are **interned** ([`intern`]) into `u32` symbols, with
//!   the contextual keywords `kernel`/`for`/`seq` pre-interned by
//!   length/byte dispatch, so every hot name comparison (keyword checks,
//!   duplicate iterators, dimension lookups) is a `u32` equality;
//! * right-hand-side expressions are built in a per-kernel **arena** of
//!   `Copy` nodes and lowered to the boxed [`RhsExpr`] IR only when the
//!   kernel is complete;
//! * errors carry **byte offsets** internally; line/column are computed
//!   by a single scan only on the error path, and the caret snippet of
//!   [`render_snippet`] is rendered only on display.
//!
//! The retired tokenize-everything engine survives as [`reference`];
//! differential property tests pin this engine to it — identical
//! [`Program`] IR on every accepted input and identical [`ParseError`]
//! positions and messages on every rejected one (including the baseline's
//! lex-errors-win-over-parse-errors ordering, restored on the cold path
//! by a lex-only sweep).

pub mod gen;
mod intern;
pub mod reference;

use crate::ir::{AffineExpr, ArrayRef, Extent, Kernel, LoopDim, Program, RhsExpr, Statement};
use intern::{Interner, KW_FOR, KW_KERNEL, KW_SEQ};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum parenthesis nesting inside one right-hand-side expression.
/// Untrusted `source` requests (`eatss-serve`) reach this parser; a
/// bounded recursion depth turns `((((…))))` from a stack overflow into
/// a positioned [`ParseError`].
pub const MAX_EXPR_DEPTH: usize = 64;

/// Maximum loop-nest depth, for the same reason as [`MAX_EXPR_DEPTH`].
/// Real affine kernels are ≤ 5 deep; 64 is far beyond anything the
/// tiling machinery could use.
pub const MAX_LOOP_DEPTH: usize = 64;

/// A parse failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

/// Renders a rich diagnostic for `err`: the error line followed by the
/// offending source line and a caret under the reported column.
///
/// Kept separate from [`ParseError`] (which stays a plain
/// line/col/message value) so the snippet is built only when a human
/// actually sees the error — parse-and-discard paths (the serve cache,
/// differential tests) never pay for it.
///
/// # Examples
///
/// ```
/// use eatss_affine::parser::{parse_program, render_snippet};
///
/// let src = "kernel f(N) {\n  for (i: N) A[i] $ B[i];\n}";
/// let err = parse_program(src).unwrap_err();
/// let snippet = render_snippet(src, &err);
/// assert!(snippet.contains("  for (i: N) A[i] $ B[i];"));
/// assert!(snippet.lines().last().unwrap().ends_with('^'));
/// ```
pub fn render_snippet(src: &str, err: &ParseError) -> String {
    let line_text = src.lines().nth(err.line.saturating_sub(1)).unwrap_or("");
    let mut out = format!("{err}\n  {line_text}\n  ");
    for _ in 1..err.col {
        out.push(' ');
    }
    out.push('^');
    out
}

/// 1-based line/column of a byte offset — computed lazily, only when an
/// error is actually materialized. Columns count bytes from the line
/// start, exactly like the reference lexer's eager per-byte tracking.
fn position(src: &str, offset: usize) -> (usize, usize) {
    let prefix = &src.as_bytes()[..offset.min(src.len())];
    let line = 1 + prefix.iter().filter(|&&b| b == b'\n').count();
    let line_start = prefix
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |i| i + 1);
    (line, offset - line_start + 1)
}

/// Internal error carrying a byte offset; converted to a line/column
/// [`ParseError`] only at the public API boundary.
struct RawError {
    offset: usize,
    message: String,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TokKind {
    /// Interned identifier symbol.
    Ident(u32),
    /// Integer literal; decoded from its span on demand.
    Int,
    /// Float literal; decoded from its span on demand.
    Float,
    /// Single-byte punctuation, carrying the byte itself.
    Punct(u8),
    /// The only two-byte punctuator, `+=`.
    PlusEq,
    Eof,
}

/// A span token: kind plus byte range over the input. 12 bytes, `Copy`,
/// no heap — the whole point of the rewrite.
#[derive(Clone, Copy)]
struct Token {
    kind: TokKind,
    start: u32,
    end: u32,
}

/// Arena node for right-hand-side expressions: `Copy`, indexed by `u32`
/// into [`FastParser::arena`], lowered to the boxed [`RhsExpr`] IR at
/// kernel end.
#[derive(Clone, Copy)]
enum ANode {
    Num(f64),
    Ref(u32),
    Bin(u8, u32, u32),
    Neg(u32),
}

/// A statement parsed into arena form; lowered at kernel end.
struct RawStmt {
    write: ArrayRef,
    reads: Vec<ArrayRef>,
    root: u32,
    is_accumulation: bool,
    flops: u32,
}

struct FastParser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    /// Lex cursor (bytes consumed, including the lookahead token).
    pos: usize,
    /// Single-token lookahead — the "current token" everywhere below,
    /// mirroring the reference parser's `tokens[idx]`.
    tok: Token,
    interner: Interner<'a>,
    /// Per-kernel expression arena, cleared after each kernel lowers.
    arena: Vec<ANode>,
}

impl<'a> FastParser<'a> {
    fn new(src: &'a str) -> Result<Self, RawError> {
        let mut p = FastParser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tok: Token {
                kind: TokKind::Eof,
                start: 0,
                end: 0,
            },
            interner: Interner::new(),
            arena: Vec::new(),
        };
        p.tok = p.lex()?;
        Ok(p)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.bytes.get(self.pos) {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(&c) = self.bytes.get(self.pos) {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn lex(&mut self) -> Result<Token, RawError> {
        self.skip_trivia();
        let start = self.pos;
        let Some(&c) = self.bytes.get(self.pos) else {
            return Ok(Token {
                kind: TokKind::Eof,
                start: start as u32,
                end: start as u32,
            });
        };
        if c.is_ascii_alphabetic() || c == b'_' {
            self.pos += 1;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
            {
                self.pos += 1;
            }
            let text = &self.src[start..self.pos];
            // Contextual keywords by length/byte dispatch: fixed low
            // symbols, so keyword checks downstream are u32 compares.
            let sym = match text.len() {
                3 if text == "for" => KW_FOR,
                3 if text == "seq" => KW_SEQ,
                6 if text == "kernel" => KW_KERNEL,
                _ => self.interner.intern(text),
            };
            return Ok(Token {
                kind: TokKind::Ident(sym),
                start: start as u32,
                end: self.pos as u32,
            });
        }
        if c.is_ascii_digit() {
            let mut is_float = false;
            while let Some(&c) = self.bytes.get(self.pos) {
                if c.is_ascii_digit() {
                    self.pos += 1;
                } else if c == b'.'
                    && !is_float
                    && self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    self.pos += 1;
                } else {
                    break;
                }
            }
            return Ok(Token {
                kind: if is_float { TokKind::Float } else { TokKind::Int },
                start: start as u32,
                end: self.pos as u32,
            });
        }
        if c == b'+' && self.bytes.get(self.pos + 1) == Some(&b'=') {
            self.pos += 2;
            return Ok(Token {
                kind: TokKind::PlusEq,
                start: start as u32,
                end: self.pos as u32,
            });
        }
        match c {
            b'(' | b')' | b'{' | b'}' | b'[' | b']' | b',' | b';' | b':' | b'=' | b'+' | b'-'
            | b'*' | b'/' => {
                self.pos += 1;
                Ok(Token {
                    kind: TokKind::Punct(c),
                    start: start as u32,
                    end: self.pos as u32,
                })
            }
            other => Err(RawError {
                offset: start,
                message: format!("unexpected character `{}`", other as char),
            }),
        }
    }

    fn text(&self, t: Token) -> &'a str {
        &self.src[t.start as usize..t.end as usize]
    }

    /// Decodes an integer literal at its use site. The reference engine
    /// decodes eagerly during tokenization; position and message match.
    fn decode_int(&self, t: Token) -> Result<i64, RawError> {
        let text = self.text(t);
        text.parse().map_err(|_| RawError {
            offset: t.start as usize,
            message: format!("invalid integer literal `{text}`"),
        })
    }

    /// `DIGITS "." DIGITS` always decodes (overlong literals round to
    /// infinity, exactly like the reference's eager `str::parse`).
    fn decode_float(&self, t: Token) -> f64 {
        self.text(t).parse().unwrap_or(f64::INFINITY)
    }

    /// How a token prints inside "found …" messages — identical to the
    /// reference `Tok` display, which shows *decoded* numbers. For an
    /// undecodable integer the raw text stands in; the error carrying it
    /// is always superseded by the lex-sweep error on the cold path.
    fn tok_display(&self, t: Token) -> String {
        match t.kind {
            TokKind::Ident(sym) => format!("`{}`", self.interner.resolve(sym)),
            TokKind::Int => match self.text(t).parse::<i64>() {
                Ok(v) => format!("`{v}`"),
                Err(_) => format!("`{}`", self.text(t)),
            },
            TokKind::Float => format!("`{}`", self.decode_float(t)),
            TokKind::Punct(c) => format!("`{}`", c as char),
            TokKind::PlusEq => "`+=`".to_owned(),
            TokKind::Eof => "end of input".to_owned(),
        }
    }

    /// Errors at the *current* token's position — the same rule as the
    /// reference `err()`, including its after-`bump` quirks.
    fn err(&self, message: impl Into<String>) -> RawError {
        RawError {
            offset: self.tok.start as usize,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Result<Token, RawError> {
        let t = self.tok;
        if t.kind != TokKind::Eof {
            self.tok = self.lex()?;
        }
        Ok(t)
    }

    fn eat_punct(&mut self, p: u8) -> Result<(), RawError> {
        if self.tok.kind == TokKind::Punct(p) {
            self.bump()?;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                p as char,
                self.tok_display(self.tok)
            )))
        }
    }

    fn try_punct(&mut self, p: u8) -> Result<bool, RawError> {
        if self.tok.kind == TokKind::Punct(p) {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn eat_ident(&mut self) -> Result<u32, RawError> {
        match self.tok.kind {
            TokKind::Ident(sym) => {
                self.bump()?;
                Ok(sym)
            }
            _ => Err(self.err(format!(
                "expected identifier, found {}",
                self.tok_display(self.tok)
            ))),
        }
    }

    fn eat_keyword(&mut self, sym: u32, kw: &str) -> Result<(), RawError> {
        if self.tok.kind == TokKind::Ident(sym) {
            self.bump()?;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected keyword `{kw}`, found {}",
                self.tok_display(self.tok)
            )))
        }
    }

    fn at_keyword(&self, sym: u32) -> bool {
        self.tok.kind == TokKind::Ident(sym)
    }

    fn name(&self, sym: u32) -> String {
        self.interner.resolve(sym).to_owned()
    }

    fn node(&mut self, n: ANode) -> u32 {
        self.arena.push(n);
        (self.arena.len() - 1) as u32
    }

    fn parse_program(&mut self, name: &str) -> Result<Program, RawError> {
        let mut kernels: Vec<Kernel> = Vec::new();
        let mut taken: Vec<u32> = Vec::new();
        while self.tok.kind != TokKind::Eof {
            let (sym, kernel) = self.parse_kernel(&taken)?;
            taken.push(sym);
            kernels.push(kernel);
        }
        if kernels.is_empty() {
            return Err(self.err("expected at least one `kernel` declaration"));
        }
        Ok(Program {
            name: name.to_owned(),
            kernels,
        })
    }

    fn parse_kernel(&mut self, taken: &[u32]) -> Result<(u32, Kernel), RawError> {
        self.eat_keyword(KW_KERNEL, "kernel")?;
        let name_tok = self.tok;
        let name_sym = self.eat_ident()?;
        // Downstream lookups are name-keyed (execution plans, verify
        // batches, serve requests); a duplicate would silently shadow
        // one of the nests. Symbol equality makes this a u32 scan.
        if taken.contains(&name_sym) {
            return Err(RawError {
                offset: name_tok.start as usize,
                message: format!("duplicate kernel name `{}`", self.interner.resolve(name_sym)),
            });
        }
        self.eat_punct(b'(')?;
        let mut params: Vec<u32> = Vec::new();
        if self.tok.kind != TokKind::Punct(b')') {
            loop {
                params.push(self.eat_ident()?);
                if !self.try_punct(b',')? {
                    break;
                }
            }
        }
        self.eat_punct(b')')?;
        self.eat_punct(b'{')?;
        let mut dims: Vec<LoopDim> = Vec::new();
        let mut dim_syms: Vec<u32> = Vec::new();
        let raw_stmts = self.parse_loop(&params, &mut dims, &mut dim_syms)?;
        self.eat_punct(b'}')?;
        // IR construction at the end: lower every statement's arena
        // expression into the boxed RhsExpr tree, then recycle the arena.
        let stmts = raw_stmts.into_iter().map(|rs| self.lower_stmt(rs)).collect();
        self.arena.clear();
        Ok((
            name_sym,
            Kernel {
                name: self.name(name_sym),
                dims,
                stmts,
            },
        ))
    }

    fn parse_loop(
        &mut self,
        params: &[u32],
        dims: &mut Vec<LoopDim>,
        dim_syms: &mut Vec<u32>,
    ) -> Result<Vec<RawStmt>, RawError> {
        if dims.len() >= MAX_LOOP_DEPTH {
            return Err(self.err(format!("loop nesting exceeds {MAX_LOOP_DEPTH} levels")));
        }
        self.eat_keyword(KW_FOR, "for")?;
        let explicit_serial = if self.at_keyword(KW_SEQ) {
            self.bump()?;
            true
        } else {
            false
        };
        self.eat_punct(b'(')?;
        let iter = self.eat_ident()?;
        if dim_syms.contains(&iter) {
            return Err(self.err(format!(
                "duplicate loop iterator `{}`",
                self.interner.resolve(iter)
            )));
        }
        if params.contains(&iter) {
            return Err(self.err(format!(
                "loop iterator `{}` shadows a problem-size parameter",
                self.interner.resolve(iter)
            )));
        }
        self.eat_punct(b':')?;
        let ext = self.bump()?;
        let extent = match ext.kind {
            TokKind::Int => Extent::Const(self.decode_int(ext)?),
            TokKind::Ident(p) => {
                if !params.contains(&p) {
                    return Err(self.err(format!(
                        "unknown extent parameter `{}`",
                        self.interner.resolve(p)
                    )));
                }
                Extent::Param(self.name(p))
            }
            _ => {
                return Err(self.err(format!(
                    "expected loop extent, found {}",
                    self.tok_display(ext)
                )))
            }
        };
        self.eat_punct(b')')?;
        dims.push(LoopDim {
            name: self.name(iter),
            extent,
            explicit_serial,
        });
        dim_syms.push(iter);
        // body
        if self.at_keyword(KW_FOR) {
            return self.parse_loop(params, dims, dim_syms);
        }
        if self.try_punct(b'{')? {
            if self.at_keyword(KW_FOR) {
                return Err(self.err(
                    "imperfectly nested loops are not supported: a braced body must \
                     contain statements only",
                ));
            }
            let mut stmts = Vec::new();
            while self.tok.kind != TokKind::Punct(b'}') {
                stmts.push(self.parse_stmt(dim_syms)?);
            }
            self.eat_punct(b'}')?;
            if stmts.is_empty() {
                return Err(self.err("loop body has no statements"));
            }
            Ok(stmts)
        } else {
            Ok(vec![self.parse_stmt(dim_syms)?])
        }
    }

    fn parse_stmt(&mut self, dim_syms: &[u32]) -> Result<RawStmt, RawError> {
        let write = self.parse_ref(dim_syms)?;
        let is_accumulation = if self.try_plus_eq()? {
            true
        } else {
            self.eat_punct(b'=')?;
            false
        };
        let mut reads = Vec::new();
        let mut flops = u32::from(is_accumulation);
        let root = self.parse_expr(dim_syms, &mut reads, &mut flops, 0)?;
        self.eat_punct(b';')?;
        Ok(RawStmt {
            write,
            reads,
            root,
            is_accumulation,
            flops,
        })
    }

    fn try_plus_eq(&mut self) -> Result<bool, RawError> {
        if self.tok.kind == TokKind::PlusEq {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// expr := unary (binop unary)*  (left-associative, no precedence —
    /// adequate for rendering the benchmark kernels' bodies)
    fn parse_expr(
        &mut self,
        dim_syms: &[u32],
        reads: &mut Vec<ArrayRef>,
        flops: &mut u32,
        depth: usize,
    ) -> Result<u32, RawError> {
        if depth > MAX_EXPR_DEPTH {
            return Err(self.err(format!("expression nesting exceeds {MAX_EXPR_DEPTH} levels")));
        }
        let mut lhs = self.parse_unary(dim_syms, reads, flops, depth)?;
        loop {
            let op = match self.tok.kind {
                TokKind::Punct(c @ (b'+' | b'-' | b'*' | b'/')) => c,
                _ => return Ok(lhs),
            };
            self.bump()?;
            *flops += 1;
            let rhs = self.parse_unary(dim_syms, reads, flops, depth)?;
            lhs = self.node(ANode::Bin(op, lhs, rhs));
        }
    }

    fn parse_unary(
        &mut self,
        dim_syms: &[u32],
        reads: &mut Vec<ArrayRef>,
        flops: &mut u32,
        depth: usize,
    ) -> Result<u32, RawError> {
        let negated = self.try_punct(b'-')?;
        let inner = match self.tok.kind {
            TokKind::Int => {
                let t = self.bump()?;
                let v = self.decode_int(t)?;
                self.node(ANode::Num(v as f64))
            }
            TokKind::Float => {
                let t = self.bump()?;
                let v = self.decode_float(t);
                self.node(ANode::Num(v))
            }
            TokKind::Punct(b'(') => {
                self.bump()?;
                let e = self.parse_expr(dim_syms, reads, flops, depth + 1)?;
                self.eat_punct(b')')?;
                e
            }
            TokKind::Ident(_) => {
                let r = self.parse_ref(dim_syms)?;
                reads.push(r);
                self.node(ANode::Ref((reads.len() - 1) as u32))
            }
            _ => {
                return Err(self.err(format!(
                    "expected operand, found {}",
                    self.tok_display(self.tok)
                )))
            }
        };
        Ok(if negated {
            self.node(ANode::Neg(inner))
        } else {
            inner
        })
    }

    fn parse_ref(&mut self, dim_syms: &[u32]) -> Result<ArrayRef, RawError> {
        let array = self.eat_ident()?;
        let mut subscripts = Vec::new();
        while self.try_punct(b'[')? {
            subscripts.push(self.parse_affine(dim_syms)?);
            self.eat_punct(b']')?;
        }
        Ok(ArrayRef {
            array: self.name(array),
            subscripts,
        })
    }

    /// affine := ["-"] aterm (("+"|"-") aterm)*
    fn parse_affine(&mut self, dim_syms: &[u32]) -> Result<AffineExpr, RawError> {
        let mut expr = AffineExpr::constant(0);
        let mut sign: i64 = if self.try_punct(b'-')? { -1 } else { 1 };
        loop {
            self.parse_aterm(dim_syms, sign, &mut expr)?;
            if self.try_punct(b'+')? {
                sign = 1;
            } else if self.try_punct(b'-')? {
                sign = -1;
            } else {
                return Ok(expr);
            }
        }
    }

    /// aterm := INT ["*" IDENT] | IDENT ["*" INT]
    fn parse_aterm(
        &mut self,
        dim_syms: &[u32],
        sign: i64,
        expr: &mut AffineExpr,
    ) -> Result<(), RawError> {
        let t = self.bump()?;
        match t.kind {
            TokKind::Int => {
                let v = self.decode_int(t)?;
                if self.try_punct(b'*')? {
                    let name = self.eat_ident()?;
                    let dim = self.lookup_dim(dim_syms, name)?;
                    expr.add_term(dim, sign * v);
                } else {
                    expr.add_constant(sign * v);
                }
                Ok(())
            }
            TokKind::Ident(name) => {
                let dim = self.lookup_dim(dim_syms, name)?;
                if self.try_punct(b'*')? {
                    let ct = self.bump()?;
                    match ct.kind {
                        TokKind::Int => expr.add_term(dim, sign * self.decode_int(ct)?),
                        _ => {
                            return Err(self.err(format!(
                                "expected integer coefficient, found {}",
                                self.tok_display(ct)
                            )))
                        }
                    }
                } else {
                    expr.add_term(dim, sign);
                }
                Ok(())
            }
            _ => Err(self.err(format!(
                "expected affine term, found {}",
                self.tok_display(t)
            ))),
        }
    }

    fn lookup_dim(&self, dim_syms: &[u32], name: u32) -> Result<usize, RawError> {
        dim_syms.iter().position(|&d| d == name).ok_or_else(|| {
            self.err(format!(
                "`{}` is not a loop iterator in scope (subscripts must be \
                 affine in the iterators)",
                self.interner.resolve(name)
            ))
        })
    }

    fn lower_stmt(&self, rs: RawStmt) -> Statement {
        Statement {
            rhs: self.lower(rs.root),
            write: rs.write,
            reads: rs.reads,
            is_accumulation: rs.is_accumulation,
            flops: rs.flops,
        }
    }

    fn lower(&self, id: u32) -> RhsExpr {
        match self.arena[id as usize] {
            ANode::Num(v) => RhsExpr::Num(v),
            ANode::Ref(i) => RhsExpr::Ref(i as usize),
            ANode::Bin(op, a, b) => {
                RhsExpr::Bin(op as char, Box::new(self.lower(a)), Box::new(self.lower(b)))
            }
            ANode::Neg(a) => RhsExpr::Neg(Box::new(self.lower(a))),
        }
    }
}

/// Lex-only sweep over the whole input: the first lex-level error, if
/// any. The reference engine tokenizes everything before parsing, so a
/// lex error anywhere wins over any parse error; the single-pass engine
/// restores that ordering here — on the error path only.
fn lex_scan(src: &str) -> Option<RawError> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    loop {
        loop {
            match bytes.get(pos) {
                Some(c) if c.is_ascii_whitespace() => pos += 1,
                Some(b'/') if bytes.get(pos + 1) == Some(&b'/') => {
                    while let Some(&c) = bytes.get(pos) {
                        if c == b'\n' {
                            break;
                        }
                        pos += 1;
                    }
                }
                _ => break,
            }
        }
        let start = pos;
        let &c = bytes.get(pos)?;
        if c.is_ascii_alphabetic() || c == b'_' {
            pos += 1;
            while bytes
                .get(pos)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
            {
                pos += 1;
            }
        } else if c.is_ascii_digit() {
            let mut is_float = false;
            while let Some(&c) = bytes.get(pos) {
                if c.is_ascii_digit() {
                    pos += 1;
                } else if c == b'.' && !is_float && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    pos += 1;
                } else {
                    break;
                }
            }
            let text = &src[start..pos];
            if !is_float && text.parse::<i64>().is_err() {
                return Some(RawError {
                    offset: start,
                    message: format!("invalid integer literal `{text}`"),
                });
            }
        } else if c == b'+' && bytes.get(pos + 1) == Some(&b'=') {
            pos += 2;
        } else if matches!(
            c,
            b'(' | b')'
                | b'{'
                | b'}'
                | b'['
                | b']'
                | b','
                | b';'
                | b':'
                | b'='
                | b'+'
                | b'-'
                | b'*'
                | b'/'
        ) {
            pos += 1;
        } else {
            return Some(RawError {
                offset: start,
                message: format!("unexpected character `{}`", c as char),
            });
        }
    }
}

/// Converts an internal failure into the public [`ParseError`]: a lex
/// error anywhere in the input supersedes the parse error (matching the
/// reference's tokenize-first ordering), then line/column are computed
/// in one scan.
fn finish_err(src: &str, parse_err: RawError) -> ParseError {
    let raw = lex_scan(src).unwrap_or(parse_err);
    let (line, col) = position(src, raw.offset);
    ParseError {
        line,
        col,
        message: raw.message,
    }
}

fn parse_with(name: Option<&str>, src: &str) -> Result<Program, ParseError> {
    eatss_trace::counter_add("parse.bytes", src.len() as u64);
    let mut parser = match FastParser::new(src) {
        Ok(p) => p,
        Err(e) => return Err(finish_err(src, e)),
    };
    match parser.parse_program(name.unwrap_or("")) {
        Ok(mut program) => {
            if name.is_none() {
                program.name = program.kernels[0].name.clone();
            }
            Ok(program)
        }
        Err(e) => Err(finish_err(src, e)),
    }
}

/// Parses a program from source; the program name is derived from the
/// first kernel's name.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information on malformed input.
///
/// # Examples
///
/// ```
/// use eatss_affine::parser::parse_program;
///
/// let p = parse_program("kernel axpy(N) { for (i: N) y[i] += a * x[i]; }")?;
/// assert_eq!(p.name, "axpy");
/// assert_eq!(p.kernels[0].depth(), 1);
/// # Ok::<(), eatss_affine::parser::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_with(None, src)
}

/// Parses a program and overrides its name.
///
/// # Errors
///
/// Same conditions as [`parse_program`].
pub fn parse_named_program(name: &str, src: &str) -> Result<Program, ParseError> {
    parse_with(Some(name), src)
}

/// Parses a batch of `(name, source)` pairs, optionally in parallel on a
/// scoped worker pool, returning per-input results in input order.
///
/// Determinism contract (same as the PR 2 sweep pool): each input is
/// parsed independently with [`parse_named_program`] and results merge
/// by index, so `jobs = N` is **bit-identical** to `jobs = 1` — asserted
/// by `parse_files_identity` in the affine test suite and by the
/// `parse-smoke` CI job's `cmp` over `eatss --kernel-dir` output.
///
/// `jobs = 0` uses all available cores.
pub fn parse_files(
    sources: &[(String, String)],
    jobs: usize,
) -> Vec<Result<Program, ParseError>> {
    let workers = match jobs {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
    .min(sources.len().max(1));
    if workers <= 1 {
        return sources
            .iter()
            .map(|(name, src)| parse_named_program(name, src))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<Program, ParseError>>>> =
        sources.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((name, src)) = sources.get(i) else {
                    break;
                };
                *slots[i].lock().unwrap() = Some(parse_named_program(name, src));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every input parsed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_matmul() {
        let p = parse_program(
            "kernel matmul(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 Out[i][j] += In[i][k] * Ker[k][j];
             }",
        )
        .unwrap();
        let k = &p.kernels[0];
        assert_eq!(k.name, "matmul");
        assert_eq!(k.depth(), 3);
        assert_eq!(k.dims[0].name, "i");
        assert_eq!(k.dims[2].extent, Extent::Param("P".into()));
        let s = &k.stmts[0];
        assert!(s.is_accumulation);
        assert_eq!(s.flops, 2);
        assert_eq!(s.write.array, "Out");
        assert_eq!(s.reads.len(), 2);
        assert_eq!(s.reads[0].subscripts[1], AffineExpr::var(2));
    }

    #[test]
    fn parses_stencil_with_offsets_and_floats() {
        let p = parse_program(
            "kernel jacobi(N) {
               for (i: N) for (j: N)
                 B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
             }",
        )
        .unwrap();
        let s = &p.kernels[0].stmts[0];
        assert!(!s.is_accumulation);
        assert_eq!(s.reads.len(), 5);
        assert_eq!(s.reads[1].subscripts[1].offset(), -1);
        assert_eq!(s.reads[4].subscripts[0].offset(), -1);
        assert_eq!(s.flops, 5); // one mul + four adds
    }

    #[test]
    fn parses_seq_loop_marker() {
        let p = parse_program(
            "kernel heat(T, N) {
               for seq (t: T) for (i: N)
                 A[i] = A[i-1] + A[i+1];
             }",
        )
        .unwrap();
        assert!(p.kernels[0].dims[0].explicit_serial);
        assert!(!p.kernels[0].dims[1].explicit_serial);
    }

    #[test]
    fn parses_multiple_kernels_and_blocks() {
        let p = parse_named_program(
            "2mm",
            "kernel mm1(NI, NJ, NK) {
               for (i: NI) for (j: NJ) for (k: NK)
                 tmp[i][j] += alpha * A[i][k] * B[k][j];
             }
             kernel mm2(NI, NL, NJ) {
               for (i: NI) for (j: NL) for (k: NJ) {
                 D[i][j] += tmp[i][k] * C[k][j];
               }
             }",
        )
        .unwrap();
        assert_eq!(p.name, "2mm");
        assert_eq!(p.kernels.len(), 2);
        // `alpha` is a scalar read.
        assert!(p.kernels[0].stmts[0].reads[0].subscripts.is_empty());
    }

    #[test]
    fn parses_coefficient_subscripts() {
        let p = parse_program(
            "kernel strided(N) {
               for (i: N) A[2*i] = B[i*3+1] + B[4];
             }",
        )
        .unwrap();
        let s = &p.kernels[0].stmts[0];
        assert_eq!(s.write.subscripts[0].coeff(0), 2);
        assert_eq!(s.reads[0].subscripts[0].coeff(0), 3);
        assert_eq!(s.reads[0].subscripts[0].offset(), 1);
        assert_eq!(s.reads[1].subscripts[0].offset(), 4);
    }

    #[test]
    fn parses_negative_leading_subscript() {
        let p = parse_program("kernel f(N) { for (i: N) A[-i+5] = B[i]; }").unwrap();
        let sub = &p.kernels[0].stmts[0].write.subscripts[0];
        assert_eq!(sub.coeff(0), -1);
        assert_eq!(sub.offset(), 5);
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program(
            "// leading comment
             kernel f(N) { // trailing
               for (i: N) A[i] = B[i]; // stmt
             }",
        )
        .unwrap();
        assert_eq!(p.kernels[0].stmts.len(), 1);
    }

    #[test]
    fn error_on_unknown_iterator_in_subscript() {
        let e = parse_program("kernel f(N) { for (i: N) A[z] = B[i]; }").unwrap_err();
        assert!(e.message.contains("`z`"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn error_on_unknown_extent() {
        let e = parse_program("kernel f(N) { for (i: M) A[i] = B[i]; }").unwrap_err();
        assert!(e.message.contains("unknown extent parameter `M`"));
    }

    #[test]
    fn error_on_duplicate_iterator() {
        let e =
            parse_program("kernel f(N) { for (i: N) for (i: N) A[i] = B[i]; }").unwrap_err();
        assert!(e.message.contains("duplicate loop iterator"));
    }

    #[test]
    fn error_on_duplicate_kernel_name() {
        let e = parse_program(
            "kernel f(N) { for (i: N) A[i] = B[i]; }\n\
             kernel f(M) { for (j: M) C[j] = D[j]; }",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate kernel name `f`"), "{e:?}");
        // Positioned at the second `f`, line 2.
        assert_eq!(e.line, 2);
        // Distinct names in one program stay legal.
        let p = parse_program(
            "kernel f(N) { for (i: N) A[i] = B[i]; }\n\
             kernel g(N) { for (i: N) A[i] = B[i]; }",
        )
        .unwrap();
        assert_eq!(p.kernels.len(), 2);
    }

    #[test]
    fn error_on_imperfect_nest() {
        let e = parse_program(
            "kernel f(N) { for (i: N) { for (j: N) A[i][j] = B[i][j]; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("imperfectly nested"));
    }

    #[test]
    fn error_on_empty_body_and_empty_program() {
        assert!(parse_program("kernel f(N) { for (i: N) { } }").is_err());
        assert!(parse_program("   ").is_err());
    }

    #[test]
    fn error_reports_position() {
        let e = parse_program("kernel f(N) {\n  for (i: N)\n    A[i] $ B[i];\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unexpected character"));
    }

    #[test]
    fn const_extent_is_allowed() {
        let p = parse_program("kernel f() { for (i: 128) A[i] = B[i]; }").unwrap();
        assert_eq!(p.kernels[0].dims[0].extent, Extent::Const(128));
    }

    #[test]
    fn iterator_shadowing_parameter_is_rejected() {
        let e = parse_program("kernel f(N) { for (N: N) A[N] = B[N]; }").unwrap_err();
        assert!(e.message.contains("shadows"));
    }

    #[test]
    fn division_counts_as_flop() {
        let p = parse_program("kernel f(N) { for (i: N) A[i] = B[i] / 3 + 1; }").unwrap();
        assert_eq!(p.kernels[0].stmts[0].flops, 2);
    }

    #[test]
    fn keywords_are_contextual_identifiers() {
        // `for`, `seq` and `kernel` are pre-interned symbols but remain
        // ordinary identifiers in non-keyword positions — exactly like
        // the reference's string comparisons.
        let p = parse_program("kernel seq(N) { for (i: N) kernel[i] = for_[i]; }").unwrap();
        assert_eq!(p.kernels[0].name, "seq");
        assert_eq!(p.kernels[0].stmts[0].write.array, "kernel");
    }

    #[test]
    fn lex_error_after_parse_error_wins() {
        // The reference tokenizes everything up front, so the `$` on
        // line 2 is reported even though the parse already failed at the
        // `=` on line 1. The single-pass engine must match.
        let src = "kernel = (N) { for (i: N) A[i] = B[i]; }\n$";
        let fast = parse_program(src).unwrap_err();
        let base = reference::parse_program(src).unwrap_err();
        assert_eq!(fast, base);
        assert!(fast.message.contains("unexpected character `$`"));
        assert_eq!(fast.line, 2);
    }

    #[test]
    fn overflowing_integer_literal_is_a_positioned_error() {
        let src = "kernel f(N) { for (i: N) A[i] = B[99999999999999999999]; }";
        let fast = parse_program(src).unwrap_err();
        let base = reference::parse_program(src).unwrap_err();
        assert_eq!(fast, base);
        assert!(fast.message.contains("invalid integer literal"));
    }

    #[test]
    fn expression_depth_is_limited_with_position() {
        let nest = |n: usize| {
            format!(
                "kernel f(N) {{ for (i: N) A[i] = {}B[i]{}; }}",
                "(".repeat(n),
                ")".repeat(n)
            )
        };
        // At the limit: fine.
        assert!(parse_program(&nest(MAX_EXPR_DEPTH)).is_ok());
        // One over: positioned error, identical in both engines.
        let fast = parse_program(&nest(MAX_EXPR_DEPTH + 1)).unwrap_err();
        let base = reference::parse_program(&nest(MAX_EXPR_DEPTH + 1)).unwrap_err();
        assert_eq!(fast, base);
        assert!(fast.message.contains("expression nesting exceeds"));
        assert_eq!(fast.line, 1);
    }

    #[test]
    fn loop_depth_is_limited_with_position() {
        let nest = |n: usize| {
            let mut src = String::from("kernel f(N) { ");
            for d in 0..n {
                src.push_str(&format!("for (i{d}: 8) "));
            }
            src.push_str("A[i0] = B[i0]; }");
            src
        };
        assert!(parse_program(&nest(MAX_LOOP_DEPTH)).is_ok());
        let fast = parse_program(&nest(MAX_LOOP_DEPTH + 1)).unwrap_err();
        let base = reference::parse_program(&nest(MAX_LOOP_DEPTH + 1)).unwrap_err();
        assert_eq!(fast, base);
        assert!(fast.message.contains("loop nesting exceeds"));
    }

    #[test]
    fn snippet_renders_source_line_and_caret() {
        let src = "kernel f(N) {\n  for (i: N)\n    A[i] $ B[i];\n}";
        let err = parse_program(src).unwrap_err();
        let snippet = render_snippet(src, &err);
        let lines: Vec<&str> = snippet.lines().collect();
        assert_eq!(lines[1], "      A[i] $ B[i];");
        // Caret under the `$` (col 10 of the trimmed-as-is line).
        assert_eq!(lines[2], format!("  {}^", " ".repeat(err.col - 1)));
    }

    #[test]
    fn parse_files_preserves_order_and_errors() {
        let sources = vec![
            (
                "good".to_owned(),
                "kernel g(N) { for (i: N) A[i] = B[i]; }".to_owned(),
            ),
            ("bad".to_owned(), "kernel ???".to_owned()),
        ];
        for jobs in [1, 4] {
            let results = parse_files(&sources, jobs);
            assert_eq!(results.len(), 2);
            assert_eq!(results[0].as_ref().unwrap().name, "good");
            assert!(results[1].is_err());
        }
    }
}

