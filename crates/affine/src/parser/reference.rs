//! The original tokenize-then-parse front end, retained verbatim as the
//! differential baseline for the zero-copy engine in [`super`] (the
//! PR 2/PR 5 convention: the replaced engine lives on under `::reference`
//! and property tests pin the rewrite against it).
//!
//! Two deliberate characteristics the fast engine must reproduce:
//!
//! * the **entire** input is tokenized before parsing starts, so a
//!   lex-level error (invalid literal, unexpected character) anywhere in
//!   the source wins over any parse error, regardless of position;
//! * `err()` reports the position of the *current* token, which for
//!   errors raised after a `bump()` is the token **after** the offending
//!   one (e.g. "duplicate loop iterator" points past the iterator).
//!
//! The only post-retirement edit is the recursion-depth guard shared
//! with the fast engine ([`MAX_EXPR_DEPTH`], [`MAX_LOOP_DEPTH`]) —
//! without it, differential fuzzing over deeply nested adversarial
//! inputs would overflow this engine's stack.

use super::{ParseError, MAX_EXPR_DEPTH, MAX_LOOP_DEPTH};
use crate::ir::{AffineExpr, ArrayRef, Extent, Kernel, LoopDim, Program, RhsExpr, Statement};
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(&'static str),
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Float(v) => write!(f, "`{v}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> u8 {
        let c = self.src[self.pos];
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let s = std::str::from_utf8(&self.src[start..self.pos])
                .expect("ascii ident")
                .to_owned();
            return Ok((Tok::Ident(s), line, col));
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            let mut is_float = false;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    self.bump();
                } else if c == b'.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    self.bump();
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| ParseError {
                    line,
                    col,
                    message: format!("invalid float literal `{text}`"),
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| ParseError {
                    line,
                    col,
                    message: format!("invalid integer literal `{text}`"),
                })?)
            };
            return Ok((tok, line, col));
        }
        // Punctuation (longest match first).
        if c == b'+' && self.peek2() == Some(b'=') {
            self.bump();
            self.bump();
            return Ok((Tok::Punct("+="), line, col));
        }
        let single: &'static str = match c {
            b'(' => "(",
            b')' => ")",
            b'{' => "{",
            b'}' => "}",
            b'[' => "[",
            b']' => "]",
            b',' => ",",
            b';' => ";",
            b':' => ":",
            b'=' => "=",
            b'+' => "+",
            b'-' => "-",
            b'*' => "*",
            b'/' => "/",
            other => {
                return Err(ParseError {
                    line,
                    col,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        };
        self.bump();
        Ok((Tok::Punct(single), line, col))
    }
}

struct Parser {
    tokens: Vec<(Tok, usize, usize)>,
    idx: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        loop {
            let t = lexer.next_token()?;
            let eof = matches!(t.0, Tok::Eof);
            tokens.push(t);
            if eof {
                break;
            }
        }
        Ok(Parser { tokens, idx: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.idx].0
    }

    fn here(&self) -> (usize, usize) {
        let (_, l, c) = &self.tokens[self.idx];
        (*l, *c)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.idx].0.clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{p}`, found {other}"))),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Tok::Ident(_) => match self.bump() {
                Tok::Ident(s) => Ok(s),
                _ => unreachable!("peeked ident"),
            },
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected keyword `{kw}`, found {other}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn parse_program(&mut self, name: &str) -> Result<Program, ParseError> {
        let mut kernels: Vec<Kernel> = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            let kernel = self.parse_kernel(&kernels)?;
            kernels.push(kernel);
        }
        if kernels.is_empty() {
            return Err(self.err("expected at least one `kernel` declaration"));
        }
        Ok(Program {
            name: name.to_owned(),
            kernels,
        })
    }

    fn parse_kernel(&mut self, taken: &[Kernel]) -> Result<Kernel, ParseError> {
        self.eat_keyword("kernel")?;
        let (name_line, name_col) = self.here();
        let name = self.eat_ident()?;
        // Downstream lookups are name-keyed (execution plans, verify
        // batches, serve requests); a duplicate would silently shadow
        // one of the nests.
        if taken.iter().any(|k| k.name == name) {
            return Err(ParseError {
                line: name_line,
                col: name_col,
                message: format!("duplicate kernel name `{name}`"),
            });
        }
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::Punct(")")) {
            loop {
                params.push(self.eat_ident()?);
                if !self.try_punct(",") {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        self.eat_punct("{")?;
        let mut dims: Vec<LoopDim> = Vec::new();
        let stmts = self.parse_loop(&params, &mut dims)?;
        self.eat_punct("}")?;
        Ok(Kernel { name, dims, stmts })
    }

    fn parse_loop(
        &mut self,
        params: &[String],
        dims: &mut Vec<LoopDim>,
    ) -> Result<Vec<Statement>, ParseError> {
        if dims.len() >= MAX_LOOP_DEPTH {
            return Err(self.err(format!("loop nesting exceeds {MAX_LOOP_DEPTH} levels")));
        }
        self.eat_keyword("for")?;
        let explicit_serial = if self.at_keyword("seq") {
            self.bump();
            true
        } else {
            false
        };
        self.eat_punct("(")?;
        let iter = self.eat_ident()?;
        if dims.iter().any(|d| d.name == iter) {
            return Err(self.err(format!("duplicate loop iterator `{iter}`")));
        }
        if params.contains(&iter) {
            return Err(self.err(format!(
                "loop iterator `{iter}` shadows a problem-size parameter"
            )));
        }
        self.eat_punct(":")?;
        let extent = match self.bump() {
            Tok::Int(v) => Extent::Const(v),
            Tok::Ident(p) => {
                if !params.contains(&p) {
                    return Err(self.err(format!("unknown extent parameter `{p}`")));
                }
                Extent::Param(p)
            }
            other => return Err(self.err(format!("expected loop extent, found {other}"))),
        };
        self.eat_punct(")")?;
        dims.push(LoopDim {
            name: iter,
            extent,
            explicit_serial,
        });
        // body
        if self.at_keyword("for") {
            return self.parse_loop(params, dims);
        }
        if self.try_punct("{") {
            if self.at_keyword("for") {
                return Err(self.err(
                    "imperfectly nested loops are not supported: a braced body must \
                     contain statements only",
                ));
            }
            let mut stmts = Vec::new();
            while !matches!(self.peek(), Tok::Punct("}")) {
                stmts.push(self.parse_stmt(dims)?);
            }
            self.eat_punct("}")?;
            if stmts.is_empty() {
                return Err(self.err("loop body has no statements"));
            }
            Ok(stmts)
        } else {
            Ok(vec![self.parse_stmt(dims)?])
        }
    }

    fn parse_stmt(&mut self, dims: &[LoopDim]) -> Result<Statement, ParseError> {
        let write = self.parse_ref(dims)?;
        let is_accumulation = if self.try_punct("+=") {
            true
        } else {
            self.eat_punct("=")?;
            false
        };
        let mut reads = Vec::new();
        let mut flops = u32::from(is_accumulation);
        let rhs = self.parse_expr(dims, &mut reads, &mut flops, 0)?;
        self.eat_punct(";")?;
        Ok(Statement {
            write,
            reads,
            rhs,
            is_accumulation,
            flops,
        })
    }

    /// expr := unary (binop unary)*  (left-associative, no precedence —
    /// adequate for rendering the benchmark kernels' bodies)
    fn parse_expr(
        &mut self,
        dims: &[LoopDim],
        reads: &mut Vec<ArrayRef>,
        flops: &mut u32,
        depth: usize,
    ) -> Result<RhsExpr, ParseError> {
        if depth > MAX_EXPR_DEPTH {
            return Err(self.err(format!("expression nesting exceeds {MAX_EXPR_DEPTH} levels")));
        }
        let mut lhs = self.parse_unary(dims, reads, flops, depth)?;
        loop {
            let op = match self.peek() {
                Tok::Punct(p) if matches!(*p, "+" | "-" | "*" | "/") => {
                    p.chars().next().expect("single-char operator")
                }
                _ => return Ok(lhs),
            };
            self.bump();
            *flops += 1;
            let rhs = self.parse_unary(dims, reads, flops, depth)?;
            lhs = RhsExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_unary(
        &mut self,
        dims: &[LoopDim],
        reads: &mut Vec<ArrayRef>,
        flops: &mut u32,
        depth: usize,
    ) -> Result<RhsExpr, ParseError> {
        let negated = self.try_punct("-");
        let inner = match self.peek() {
            Tok::Int(_) | Tok::Float(_) => match self.bump() {
                Tok::Int(v) => RhsExpr::Num(v as f64),
                Tok::Float(v) => RhsExpr::Num(v),
                _ => unreachable!("peeked number"),
            },
            Tok::Punct("(") => {
                self.bump();
                let e = self.parse_expr(dims, reads, flops, depth + 1)?;
                self.eat_punct(")")?;
                e
            }
            Tok::Ident(_) => {
                let r = self.parse_ref(dims)?;
                reads.push(r);
                RhsExpr::Ref(reads.len() - 1)
            }
            other => return Err(self.err(format!("expected operand, found {other}"))),
        };
        Ok(if negated {
            RhsExpr::Neg(Box::new(inner))
        } else {
            inner
        })
    }

    fn parse_ref(&mut self, dims: &[LoopDim]) -> Result<ArrayRef, ParseError> {
        let array = self.eat_ident()?;
        let mut subscripts = Vec::new();
        while self.try_punct("[") {
            subscripts.push(self.parse_affine(dims)?);
            self.eat_punct("]")?;
        }
        Ok(ArrayRef { array, subscripts })
    }

    /// affine := ["-"] aterm (("+"|"-") aterm)*
    fn parse_affine(&mut self, dims: &[LoopDim]) -> Result<AffineExpr, ParseError> {
        let mut expr = AffineExpr::constant(0);
        let mut sign: i64 = if self.try_punct("-") { -1 } else { 1 };
        loop {
            self.parse_aterm(dims, sign, &mut expr)?;
            if self.try_punct("+") {
                sign = 1;
            } else if self.try_punct("-") {
                sign = -1;
            } else {
                return Ok(expr);
            }
        }
    }

    /// aterm := INT ["*" IDENT] | IDENT ["*" INT]
    fn parse_aterm(
        &mut self,
        dims: &[LoopDim],
        sign: i64,
        expr: &mut AffineExpr,
    ) -> Result<(), ParseError> {
        match self.bump() {
            Tok::Int(v) => {
                if self.try_punct("*") {
                    let name = self.eat_ident()?;
                    let dim = self.lookup_dim(dims, &name)?;
                    expr.add_term(dim, sign * v);
                } else {
                    expr.add_constant(sign * v);
                }
                Ok(())
            }
            Tok::Ident(name) => {
                let dim = self.lookup_dim(dims, &name)?;
                if self.try_punct("*") {
                    match self.bump() {
                        Tok::Int(v) => expr.add_term(dim, sign * v),
                        other => {
                            return Err(
                                self.err(format!("expected integer coefficient, found {other}"))
                            )
                        }
                    }
                } else {
                    expr.add_term(dim, sign);
                }
                Ok(())
            }
            other => Err(self.err(format!("expected affine term, found {other}"))),
        }
    }

    fn lookup_dim(&self, dims: &[LoopDim], name: &str) -> Result<usize, ParseError> {
        dims.iter().position(|d| d.name == name).ok_or_else(|| {
            self.err(format!(
                "`{name}` is not a loop iterator in scope (subscripts must be \
                 affine in the iterators)"
            ))
        })
    }
}

/// Parses a program with the retained baseline engine; the program name
/// is derived from the first kernel's name.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information on malformed input.
///
/// # Examples
///
/// ```
/// use eatss_affine::parser::reference;
///
/// let p = reference::parse_program("kernel axpy(N) { for (i: N) y[i] += a * x[i]; }")?;
/// assert_eq!(p.name, "axpy");
/// assert_eq!(p.kernels[0].depth(), 1);
/// # Ok::<(), eatss_affine::parser::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut parser = Parser::new(src)?;
    let mut program = parser.parse_program("")?;
    program.name = program.kernels[0].name.clone();
    Ok(program)
}

/// Parses a program and overrides its name.
///
/// # Errors
///
/// Same conditions as [`parse_program`].
pub fn parse_named_program(name: &str, src: &str) -> Result<Program, ParseError> {
    let mut parser = Parser::new(src)?;
    parser.parse_program(name)
}
