//! Zero-dependency identifier interner.
//!
//! Maps `&'a str` slices of the source being parsed to dense `u32`
//! symbols so every hot comparison in the parser — keyword checks,
//! duplicate-iterator detection, dimension lookups — is a `u32`
//! equality instead of a byte compare against a heap `String`.
//!
//! FNV-1a over the bytes, open addressing with linear probing, capacity
//! kept a power of two and grown at 75% load. No `unsafe` (the crate
//! forbids it): slots index into `syms` rather than aliasing pointers.

/// Pre-interned symbol for the contextual keyword `kernel`.
pub(crate) const KW_KERNEL: u32 = 0;
/// Pre-interned symbol for the contextual keyword `for`.
pub(crate) const KW_FOR: u32 = 1;
/// Pre-interned symbol for the contextual keyword `seq`.
pub(crate) const KW_SEQ: u32 = 2;

const EMPTY: u32 = u32::MAX;

pub(crate) struct Interner<'a> {
    /// Symbol → string, in insertion order.
    syms: Vec<&'a str>,
    /// Open-addressed table of symbol ids; `EMPTY` marks a free slot.
    /// Length is always a power of two.
    table: Vec<u32>,
}

impl<'a> Interner<'a> {
    pub(crate) fn new() -> Self {
        let mut interner = Interner {
            syms: Vec::with_capacity(16),
            table: vec![EMPTY; 64],
        };
        // Keywords occupy fixed low symbols so the lexer's dispatch can
        // hand them out without touching the table.
        let kw = (
            interner.intern("kernel"),
            interner.intern("for"),
            interner.intern("seq"),
        );
        debug_assert_eq!(kw, (KW_KERNEL, KW_FOR, KW_SEQ));
        interner
    }

    pub(crate) fn intern(&mut self, s: &'a str) -> u32 {
        let mask = self.table.len() - 1;
        let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => break,
                sym if self.syms[sym as usize] == s => return sym,
                _ => slot = (slot + 1) & mask,
            }
        }
        let sym = self.syms.len() as u32;
        self.syms.push(s);
        self.table[slot] = sym;
        if self.syms.len() * 4 >= self.table.len() * 3 {
            self.grow();
        }
        sym
    }

    pub(crate) fn resolve(&self, sym: u32) -> &'a str {
        self.syms[sym as usize]
    }

    fn grow(&mut self) {
        let new_len = self.table.len() * 2;
        let mask = new_len - 1;
        let mut table = vec![EMPTY; new_len];
        for (sym, s) in self.syms.iter().enumerate() {
            let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = sym as u32;
        }
        self.table = table;
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_get_fixed_symbols() {
        let mut i = Interner::new();
        assert_eq!(i.intern("kernel"), KW_KERNEL);
        assert_eq!(i.intern("for"), KW_FOR);
        assert_eq!(i.intern("seq"), KW_SEQ);
    }

    #[test]
    fn interning_is_idempotent_and_resolvable() {
        let src = "alpha beta alpha gamma beta";
        let mut i = Interner::new();
        let words: Vec<&str> = src.split_whitespace().collect();
        let a1 = i.intern(words[0]);
        let b1 = i.intern(words[1]);
        let a2 = i.intern(words[2]);
        let g = i.intern(words[3]);
        let b2 = i.intern(words[4]);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_ne!(a1, b1);
        assert_ne!(a1, g);
        assert_eq!(i.resolve(a1), "alpha");
        assert_eq!(i.resolve(g), "gamma");
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        // 64-slot table grows at 48 live symbols; push well past it.
        let names: Vec<String> = (0..512).map(|n| format!("ident_{n}")).collect();
        let mut i = Interner::new();
        let syms: Vec<u32> = names.iter().map(|n| i.intern(n)).collect();
        for (n, &s) in names.iter().zip(&syms) {
            assert_eq!(i.resolve(s), n.as_str());
            assert_eq!(i.intern(n), s);
        }
    }
}
