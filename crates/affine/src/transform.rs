//! Loop-nest transformations beyond tiling.
//!
//! §IV-M of the paper positions the model generator for use "before
//! applying the transformation" or on already-transformed code; this
//! module provides the classical companion transformation — **loop
//! permutation (interchange)** — with a dependence-based legality check,
//! so interchanged variants can be fed through the same EATSS/PPCG
//! pipeline. Legality follows the textbook rule: a permutation is legal
//! iff every dependence distance vector remains lexicographically
//! non-negative after permuting its components.

use crate::analysis::dependence::{dependences, DepDistance};
use crate::ir::{Kernel, LoopDim, Statement};
use std::error::Error;
use std::fmt;

/// Why a permutation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermuteError {
    /// `perm` is not a permutation of `0..depth`.
    NotAPermutation {
        /// Loop-nest depth.
        depth: usize,
        /// The offending permutation.
        perm: Vec<usize>,
    },
    /// The permutation reverses a dependence (lexicographically negative
    /// distance after permuting).
    Illegal {
        /// Array carrying the violated dependence.
        array: String,
    },
}

impl fmt::Display for PermuteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermuteError::NotAPermutation { depth, perm } => {
                write!(f, "{perm:?} is not a permutation of 0..{depth}")
            }
            PermuteError::Illegal { array } => {
                write!(f, "permutation reverses a dependence through `{array}`")
            }
        }
    }
}

impl Error for PermuteError {}

/// Checks whether permuting the loops of `kernel` by `perm` (position
/// `p` of the new nest holds old dimension `perm[p]`) preserves every
/// dependence.
///
/// `Star` distances are treated as *unknown sign*: they may only appear
/// at or after a position where a `Const(>0)` component has already
/// secured lexicographic positivity (or in self positions for all-zero
/// prefixes, where the unknown could be negative — rejected).
pub fn is_legal_permutation(kernel: &Kernel, perm: &[usize]) -> Result<(), PermuteError> {
    let depth = kernel.depth();
    if !is_permutation(perm, depth) {
        return Err(PermuteError::NotAPermutation {
            depth,
            perm: perm.to_vec(),
        });
    }
    for dep in dependences(kernel) {
        if dep.is_reduction {
            // Commutative accumulation: iteration reordering only
            // reassociates the sum, never violates the dependence.
            continue;
        }
        let mut secured = false;
        for &p in perm {
            match dep.distance[p] {
                DepDistance::Const(0) => continue,
                DepDistance::Const(c) if c > 0 => {
                    secured = true;
                    break;
                }
                DepDistance::Const(_) => {
                    // Negative leading component: reversed dependence.
                    return Err(PermuteError::Illegal {
                        array: dep.array.clone(),
                    });
                }
                DepDistance::Star => {
                    // Unknown sign: only safe if already secured.
                    if !secured {
                        return Err(PermuteError::Illegal {
                            array: dep.array.clone(),
                        });
                    }
                    break;
                }
            }
        }
        let _ = secured;
    }
    Ok(())
}

fn is_permutation(perm: &[usize], depth: usize) -> bool {
    if perm.len() != depth {
        return false;
    }
    let mut seen = vec![false; depth];
    for &p in perm {
        if p >= depth || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Permutes the loop nest: the new dimension `p` is the old `perm[p]`.
/// All subscripts are rewritten to the new dimension numbering.
///
/// # Errors
///
/// Returns [`PermuteError`] if `perm` is malformed or reverses a
/// dependence.
///
/// # Examples
///
/// ```
/// use eatss_affine::parser::parse_program;
/// use eatss_affine::transform::permute;
///
/// let p = parse_program(
///     "kernel mm(M, N, P) {
///        for (i: M) for (j: N) for (k: P)
///          C[i][j] += A[i][k] * B[k][j];
///      }")?;
/// // i-k-j order: legal — the k-reduction is commutative and imposes
/// // no ordering constraint.
/// let ikj = permute(&p.kernels[0], &[0, 2, 1])?;
/// assert_eq!(ikj.dim_names(), vec!["i", "k", "j"]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn permute(kernel: &Kernel, perm: &[usize]) -> Result<Kernel, PermuteError> {
    is_legal_permutation(kernel, perm)?;
    // old dim -> new dim
    let mut new_of_old = vec![0usize; kernel.depth()];
    for (new, &old) in perm.iter().enumerate() {
        new_of_old[old] = new;
    }
    let dims: Vec<LoopDim> = perm.iter().map(|&old| kernel.dims[old].clone()).collect();
    let remap = |stmt: &Statement| -> Statement {
        let mut s = stmt.clone();
        let remap_ref = |r: &mut crate::ir::ArrayRef| {
            for sub in &mut r.subscripts {
                let terms: Vec<(usize, i64)> = sub
                    .terms()
                    .iter()
                    .map(|&(d, c)| (new_of_old[d], c))
                    .collect();
                *sub = crate::ir::AffineExpr::from_terms(terms, sub.offset());
            }
        };
        remap_ref(&mut s.write);
        for r in &mut s.reads {
            remap_ref(r);
        }
        s
    };
    Ok(Kernel {
        name: kernel.name.clone(),
        dims,
        stmts: kernel.stmts.iter().map(remap).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_kernel, Array, Store};
    use crate::parser::parse_program;
    use crate::ProblemSizes;

    fn matmul() -> Kernel {
        parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap()
        .kernels
        .remove(0)
    }

    #[test]
    fn matmul_permutations_are_all_legal() {
        // Matmul's only dependence is the commutative k-reduction
        // self-dependence, which constrains no ordering: all 6 loop
        // orders (ijk, ikj, jik, jki, kij, kji) are legal.
        let k = matmul();
        for perm in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            assert!(is_legal_permutation(&k, &perm).is_ok(), "{perm:?}");
        }
    }

    #[test]
    fn malformed_permutations_are_rejected() {
        let k = matmul();
        for bad in [vec![0, 1], vec![0, 1, 1], vec![0, 1, 3], vec![]] {
            assert!(matches!(
                is_legal_permutation(&k, &bad),
                Err(PermuteError::NotAPermutation { .. })
            ));
        }
    }

    #[test]
    fn flow_dependence_blocks_reversal() {
        // A[i][j] = A[i-1][j] + 1: distance (1, 0); swapping loops makes
        // the leading component 0 then +1 — still lexicographically
        // positive, legal. Reversal cannot be expressed by permutation
        // alone here, so craft a 2-D wavefront instead:
        // A[i][j] = A[i-1][j+1]: distance (1, -1). Interchange gives
        // (-1, 1): illegal.
        let p = parse_program(
            "kernel w(N) {
               for (i: N) for (j: N)
                 A[i][j] = A[i-1][j+1] + 1.0;
             }",
        )
        .unwrap();
        assert!(is_legal_permutation(&p.kernels[0], &[0, 1]).is_ok());
        assert!(matches!(
            is_legal_permutation(&p.kernels[0], &[1, 0]),
            Err(PermuteError::Illegal { array }) if array == "A"
        ));
    }

    #[test]
    fn permuted_kernel_rewrites_subscripts() {
        let k = matmul();
        let ikj = permute(&k, &[0, 2, 1]).unwrap();
        assert_eq!(ikj.dim_names(), vec!["i", "k", "j"]);
        // C[i][j] must now reference dims 0 and 2.
        let c = &ikj.stmts[0].write;
        assert!(c.subscripts[0].uses(0));
        assert!(c.subscripts[1].uses(2));
        // A[i][k] now references dims 0 and 1.
        let a = &ikj.stmts[0].reads[0];
        assert!(a.subscripts[1].uses(1));
    }

    #[test]
    fn legal_permutation_preserves_semantics() {
        let k = matmul();
        let n = 5;
        let sizes = ProblemSizes::new([("M", n), ("N", n), ("P", n)]);
        let init = |store: &mut Store| {
            store.insert("C", Array::zeros(vec![n, n]));
            store.insert(
                "A",
                Array::from_fn(vec![n, n], |i| ((i[0] + 2 * i[1]) % 7) as f64),
            );
            store.insert(
                "B",
                Array::from_fn(vec![n, n], |i| ((3 * i[0] + i[1]) % 5) as f64),
            );
        };
        let mut reference = Store::new();
        init(&mut reference);
        run_kernel(&k, &sizes, &mut reference).unwrap();
        for perm in [[0, 2, 1], [1, 0, 2], [0, 1, 2]] {
            let permuted = permute(&k, &perm).unwrap();
            let mut store = Store::new();
            init(&mut store);
            run_kernel(&permuted, &sizes, &mut store).unwrap();
            assert_eq!(
                store.get("C").unwrap(),
                reference.get("C").unwrap(),
                "perm {perm:?}"
            );
        }
    }

    #[test]
    fn permuted_kernel_flows_through_the_analyses() {
        use crate::analysis::AccessAnalysis;
        let k = matmul();
        let ikj = permute(&k, &[0, 2, 1]).unwrap();
        let a = AccessAnalysis::analyze(&ikj);
        // j (now dim 2) is still the CMA loop; k (now dim 1) is serial.
        assert_eq!(a.cma_dim, Some(2));
        assert_eq!(a.parallel, vec![true, false, true]);
    }
}
