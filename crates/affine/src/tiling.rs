//! The loop tiling transformation.
//!
//! Tiling rewrites a depth-`L` nest into `L` *tile loops* (stepping by the
//! tile size) around `L` *point loops* (bounded by `min(N, t + T)` guards),
//! exactly as in Fig. 4 of the paper. The [`TiledNest`] produced here is
//! consumed by the PPCG stand-in's GPU mapper and code generator, and by
//! the GPU simulator's traffic model.

use crate::ir::{Kernel, ProblemSizes};
use std::error::Error;
use std::fmt;

/// Errors from constructing a tiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TilingError {
    /// Number of tile sizes does not match the loop depth.
    WrongArity {
        /// Loop-nest depth.
        expected: usize,
        /// Number of tile sizes supplied.
        got: usize,
    },
    /// A tile size was zero or negative.
    NonPositiveTile {
        /// Dimension of the offending size.
        dim: usize,
        /// The offending value.
        value: i64,
    },
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::WrongArity { expected, got } => {
                write!(f, "expected {expected} tile sizes, got {got}")
            }
            TilingError::NonPositiveTile { dim, value } => {
                write!(f, "tile size for dimension {dim} must be positive, got {value}")
            }
        }
    }
}

impl Error for TilingError {}

/// A tile-size configuration: one size per loop dimension, outermost
/// first.
///
/// # Examples
///
/// ```
/// use eatss_affine::tiling::TileConfig;
///
/// let cfg = TileConfig::new(vec![32, 64, 16]);
/// assert_eq!(cfg.sizes(), &[32, 64, 16]);
/// // The paper's default-PPCG baseline is 32^d.
/// assert_eq!(TileConfig::ppcg_default(3).sizes(), &[32, 32, 32]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TileConfig {
    sizes: Vec<i64>,
}

impl TileConfig {
    /// Creates a configuration from explicit sizes.
    pub fn new(sizes: Vec<i64>) -> Self {
        TileConfig { sizes }
    }

    /// The paper's default PPCG configuration: `32^depth`.
    pub fn ppcg_default(depth: usize) -> Self {
        TileConfig {
            sizes: vec![32; depth],
        }
    }

    /// The tile sizes, outermost dimension first.
    pub fn sizes(&self) -> &[i64] {
        &self.sizes
    }

    /// Number of dimensions covered.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether no sizes are present.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The first `depth` sizes, for applying a program-wide configuration
    /// to a shallower kernel (2mm shares one triple across both matmuls).
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds the configuration length.
    pub fn truncated(&self, depth: usize) -> TileConfig {
        TileConfig {
            sizes: self.sizes[..depth].to_vec(),
        }
    }
}

impl fmt::Display for TileConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.sizes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

/// A kernel together with a validated tiling of its loop nest.
#[derive(Debug, Clone)]
pub struct TiledNest {
    /// The untiled kernel.
    pub kernel: Kernel,
    /// Validated tile sizes (same arity as the kernel depth).
    pub tiles: TileConfig,
}

impl TiledNest {
    /// Applies `tiles` to `kernel`, validating arity and positivity.
    ///
    /// Tile sizes larger than a dimension's trip count are legal (the
    /// point loop's `min` guard clips them), matching PPCG.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError`] on arity mismatch or non-positive sizes.
    pub fn new(kernel: &Kernel, tiles: &TileConfig) -> Result<Self, TilingError> {
        if tiles.len() != kernel.depth() {
            return Err(TilingError::WrongArity {
                expected: kernel.depth(),
                got: tiles.len(),
            });
        }
        for (dim, &value) in tiles.sizes().iter().enumerate() {
            if value <= 0 {
                return Err(TilingError::NonPositiveTile { dim, value });
            }
        }
        Ok(TiledNest {
            kernel: kernel.clone(),
            tiles: tiles.clone(),
        })
    }

    /// Tile size of dimension `dim`.
    pub fn tile(&self, dim: usize) -> i64 {
        self.tiles.sizes()[dim]
    }

    /// Number of tiles along dimension `dim` under `sizes`
    /// (`ceil(N / T)`).
    ///
    /// # Errors
    ///
    /// Returns the unbound parameter name.
    pub fn num_tiles(&self, dim: usize, sizes: &ProblemSizes) -> Result<i64, String> {
        let n = self.kernel.trip_count(dim, sizes)?;
        Ok(div_ceil(n, self.tile(dim)))
    }

    /// Effective (clipped) tile extent along `dim`: `min(T, N)`.
    ///
    /// # Errors
    ///
    /// Returns the unbound parameter name.
    pub fn clipped_tile(&self, dim: usize, sizes: &ProblemSizes) -> Result<i64, String> {
        let n = self.kernel.trip_count(dim, sizes)?;
        Ok(self.tile(dim).min(n))
    }

    /// Total number of tiles (product over all dimensions).
    ///
    /// # Errors
    ///
    /// Returns the first unbound parameter name.
    pub fn total_tiles(&self, sizes: &ProblemSizes) -> Result<i64, String> {
        let mut total = 1i64;
        for d in 0..self.kernel.depth() {
            total = total.saturating_mul(self.num_tiles(d, sizes)?);
        }
        Ok(total)
    }

    /// Enumerates every iteration point by walking tile loops then point
    /// loops with `min` guards — the loop structure of Fig. 4. Intended
    /// for small problem sizes in tests.
    ///
    /// # Errors
    ///
    /// Returns the first unbound parameter name.
    pub fn enumerate_points(&self, sizes: &ProblemSizes) -> Result<Vec<Vec<i64>>, String> {
        let depth = self.kernel.depth();
        let trips: Vec<i64> = (0..depth)
            .map(|d| self.kernel.trip_count(d, sizes))
            .collect::<Result<_, _>>()?;
        let mut points = Vec::new();
        let mut tile_origin = vec![0i64; depth];
        self.walk_tiles(&trips, 0, &mut tile_origin, &mut points);
        Ok(points)
    }

    fn walk_tiles(
        &self,
        trips: &[i64],
        dim: usize,
        origin: &mut Vec<i64>,
        points: &mut Vec<Vec<i64>>,
    ) {
        if dim == trips.len() {
            let mut point = origin.clone();
            self.walk_points(trips, 0, origin, &mut point, points);
            return;
        }
        let step = self.tile(dim);
        let mut t = 0;
        while t < trips[dim] {
            origin[dim] = t;
            self.walk_tiles(trips, dim + 1, origin, points);
            t += step;
        }
    }

    fn walk_points(
        &self,
        trips: &[i64],
        dim: usize,
        origin: &[i64],
        point: &mut Vec<i64>,
        points: &mut Vec<Vec<i64>>,
    ) {
        if dim == trips.len() {
            points.push(point.clone());
            return;
        }
        let upper = trips[dim].min(origin[dim] + self.tile(dim));
        for v in origin[dim]..upper {
            point[dim] = v;
            self.walk_points(trips, dim + 1, origin, point, points);
        }
    }
}

/// Ceiling division for positive divisors.
pub fn div_ceil(n: i64, d: i64) -> i64 {
    debug_assert!(d > 0, "div_ceil requires a positive divisor");
    (n + d - 1).div_euclid(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn matmul() -> Kernel {
        parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap()
        .kernels
        .remove(0)
    }

    #[test]
    fn arity_and_positivity_are_validated() {
        let k = matmul();
        assert!(matches!(
            TiledNest::new(&k, &TileConfig::new(vec![32, 32])),
            Err(TilingError::WrongArity { expected: 3, got: 2 })
        ));
        assert!(matches!(
            TiledNest::new(&k, &TileConfig::new(vec![32, 0, 32])),
            Err(TilingError::NonPositiveTile { dim: 1, value: 0 })
        ));
    }

    #[test]
    fn tile_counts_round_up() {
        let k = matmul();
        let t = TiledNest::new(&k, &TileConfig::new(vec![32, 64, 16])).unwrap();
        let sizes = ProblemSizes::new([("M", 100), ("N", 64), ("P", 17)]);
        assert_eq!(t.num_tiles(0, &sizes).unwrap(), 4); // ceil(100/32)
        assert_eq!(t.num_tiles(1, &sizes).unwrap(), 1);
        assert_eq!(t.num_tiles(2, &sizes).unwrap(), 2); // ceil(17/16)
        assert_eq!(t.total_tiles(&sizes).unwrap(), 8);
        assert_eq!(t.clipped_tile(1, &sizes).unwrap(), 64);
        assert_eq!(t.clipped_tile(0, &sizes).unwrap(), 32);
    }

    #[test]
    fn oversized_tiles_are_clipped() {
        let k = matmul();
        let t = TiledNest::new(&k, &TileConfig::new(vec![1024, 1024, 1024])).unwrap();
        let sizes = ProblemSizes::new([("M", 10), ("N", 10), ("P", 10)]);
        assert_eq!(t.total_tiles(&sizes).unwrap(), 1);
        assert_eq!(t.clipped_tile(0, &sizes).unwrap(), 10);
    }

    #[test]
    fn enumeration_preserves_iteration_space() {
        let k = matmul();
        let sizes = ProblemSizes::new([("M", 7), ("N", 5), ("P", 9)]);
        let t = TiledNest::new(&k, &TileConfig::new(vec![3, 2, 4])).unwrap();
        let mut pts = t.enumerate_points(&sizes).unwrap();
        assert_eq!(pts.len() as i64, 7 * 5 * 9);
        pts.sort();
        pts.dedup();
        assert_eq!(pts.len() as i64, 7 * 5 * 9, "no duplicates");
        // Every point must be within bounds.
        assert!(pts
            .iter()
            .all(|p| p[0] < 7 && p[1] < 5 && p[2] < 9 && p.iter().all(|&v| v >= 0)));
    }

    #[test]
    fn display_and_default() {
        let cfg = TileConfig::ppcg_default(2);
        assert_eq!(cfg.to_string(), "(32, 32)");
        assert!(!cfg.is_empty());
        assert_eq!(cfg.truncated(1).sizes(), &[32]);
    }

    #[test]
    fn div_ceil_edge_cases() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
    }
}
