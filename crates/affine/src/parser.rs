//! Parser for a small affine-C dialect.
//!
//! All benchmark kernels in the reproduction are declared in this dialect,
//! which captures exactly the program fragment EATSS and PPCG reason about:
//! perfectly nested loops with affine subscripts.
//!
//! ```text
//! program := kernel+
//! kernel  := "kernel" IDENT "(" IDENT ("," IDENT)* ")" "{" loop "}"
//! loop    := "for" ["seq"] "(" IDENT ":" extent ")" body
//! extent  := IDENT | INT
//! body    := loop | "{" stmt+ "}" | stmt
//! stmt    := ref ("=" | "+=") expr ";"
//! ref     := IDENT ("[" affine "]")*
//! affine  := ["-"] aterm (("+" | "-") aterm)*
//! aterm   := INT ["*" IDENT] | IDENT ["*" INT]
//! expr    := unary (("+" | "-" | "*" | "/") unary)*
//! unary   := ["-"] (ref | NUMBER | "(" expr ")")
//! ```
//!
//! `for seq (t: T)` marks a loop as serial — used for stencil time loops,
//! whose inter-statement carried dependences the single-nest IR does not
//! represent (see DESIGN.md).

use crate::ir::{AffineExpr, ArrayRef, Extent, Kernel, LoopDim, Program, RhsExpr, Statement};
use std::error::Error;
use std::fmt;

/// A parse failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(&'static str),
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Float(v) => write!(f, "`{v}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> u8 {
        let c = self.src[self.pos];
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let s = std::str::from_utf8(&self.src[start..self.pos])
                .expect("ascii ident")
                .to_owned();
            return Ok((Tok::Ident(s), line, col));
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            let mut is_float = false;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    self.bump();
                } else if c == b'.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    self.bump();
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| ParseError {
                    line,
                    col,
                    message: format!("invalid float literal `{text}`"),
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| ParseError {
                    line,
                    col,
                    message: format!("invalid integer literal `{text}`"),
                })?)
            };
            return Ok((tok, line, col));
        }
        // Punctuation (longest match first).
        if c == b'+' && self.peek2() == Some(b'=') {
            self.bump();
            self.bump();
            return Ok((Tok::Punct("+="), line, col));
        }
        let single: &'static str = match c {
            b'(' => "(",
            b')' => ")",
            b'{' => "{",
            b'}' => "}",
            b'[' => "[",
            b']' => "]",
            b',' => ",",
            b';' => ";",
            b':' => ":",
            b'=' => "=",
            b'+' => "+",
            b'-' => "-",
            b'*' => "*",
            b'/' => "/",
            other => {
                return Err(ParseError {
                    line,
                    col,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        };
        self.bump();
        Ok((Tok::Punct(single), line, col))
    }
}

struct Parser {
    tokens: Vec<(Tok, usize, usize)>,
    idx: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        loop {
            let t = lexer.next_token()?;
            let eof = matches!(t.0, Tok::Eof);
            tokens.push(t);
            if eof {
                break;
            }
        }
        Ok(Parser { tokens, idx: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.idx].0
    }

    fn here(&self) -> (usize, usize) {
        let (_, l, c) = &self.tokens[self.idx];
        (*l, *c)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.idx].0.clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{p}`, found {other}"))),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Tok::Ident(_) => match self.bump() {
                Tok::Ident(s) => Ok(s),
                _ => unreachable!("peeked ident"),
            },
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected keyword `{kw}`, found {other}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn parse_program(&mut self, name: &str) -> Result<Program, ParseError> {
        let mut kernels: Vec<Kernel> = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            let kernel = self.parse_kernel(&kernels)?;
            kernels.push(kernel);
        }
        if kernels.is_empty() {
            return Err(self.err("expected at least one `kernel` declaration"));
        }
        Ok(Program {
            name: name.to_owned(),
            kernels,
        })
    }

    fn parse_kernel(&mut self, taken: &[Kernel]) -> Result<Kernel, ParseError> {
        self.eat_keyword("kernel")?;
        let (name_line, name_col) = self.here();
        let name = self.eat_ident()?;
        // Downstream lookups are name-keyed (execution plans, verify
        // batches, serve requests); a duplicate would silently shadow
        // one of the nests.
        if taken.iter().any(|k| k.name == name) {
            return Err(ParseError {
                line: name_line,
                col: name_col,
                message: format!("duplicate kernel name `{name}`"),
            });
        }
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::Punct(")")) {
            loop {
                params.push(self.eat_ident()?);
                if !self.try_punct(",") {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        self.eat_punct("{")?;
        let mut dims: Vec<LoopDim> = Vec::new();
        let stmts = self.parse_loop(&params, &mut dims)?;
        self.eat_punct("}")?;
        Ok(Kernel { name, dims, stmts })
    }

    fn parse_loop(
        &mut self,
        params: &[String],
        dims: &mut Vec<LoopDim>,
    ) -> Result<Vec<Statement>, ParseError> {
        self.eat_keyword("for")?;
        let explicit_serial = if self.at_keyword("seq") {
            self.bump();
            true
        } else {
            false
        };
        self.eat_punct("(")?;
        let iter = self.eat_ident()?;
        if dims.iter().any(|d| d.name == iter) {
            return Err(self.err(format!("duplicate loop iterator `{iter}`")));
        }
        if params.contains(&iter) {
            return Err(self.err(format!(
                "loop iterator `{iter}` shadows a problem-size parameter"
            )));
        }
        self.eat_punct(":")?;
        let extent = match self.bump() {
            Tok::Int(v) => Extent::Const(v),
            Tok::Ident(p) => {
                if !params.contains(&p) {
                    return Err(self.err(format!("unknown extent parameter `{p}`")));
                }
                Extent::Param(p)
            }
            other => return Err(self.err(format!("expected loop extent, found {other}"))),
        };
        self.eat_punct(")")?;
        dims.push(LoopDim {
            name: iter,
            extent,
            explicit_serial,
        });
        // body
        if self.at_keyword("for") {
            return self.parse_loop(params, dims);
        }
        if self.try_punct("{") {
            if self.at_keyword("for") {
                return Err(self.err(
                    "imperfectly nested loops are not supported: a braced body must \
                     contain statements only",
                ));
            }
            let mut stmts = Vec::new();
            while !matches!(self.peek(), Tok::Punct("}")) {
                stmts.push(self.parse_stmt(dims)?);
            }
            self.eat_punct("}")?;
            if stmts.is_empty() {
                return Err(self.err("loop body has no statements"));
            }
            Ok(stmts)
        } else {
            Ok(vec![self.parse_stmt(dims)?])
        }
    }

    fn parse_stmt(&mut self, dims: &[LoopDim]) -> Result<Statement, ParseError> {
        let write = self.parse_ref(dims)?;
        let is_accumulation = if self.try_punct("+=") {
            true
        } else {
            self.eat_punct("=")?;
            false
        };
        let mut reads = Vec::new();
        let mut flops = u32::from(is_accumulation);
        let rhs = self.parse_expr(dims, &mut reads, &mut flops)?;
        self.eat_punct(";")?;
        Ok(Statement {
            write,
            reads,
            rhs,
            is_accumulation,
            flops,
        })
    }

    /// expr := unary (binop unary)*  (left-associative, no precedence —
    /// adequate for rendering the benchmark kernels' bodies)
    fn parse_expr(
        &mut self,
        dims: &[LoopDim],
        reads: &mut Vec<ArrayRef>,
        flops: &mut u32,
    ) -> Result<RhsExpr, ParseError> {
        let mut lhs = self.parse_unary(dims, reads, flops)?;
        loop {
            let op = match self.peek() {
                Tok::Punct(p) if matches!(*p, "+" | "-" | "*" | "/") => {
                    p.chars().next().expect("single-char operator")
                }
                _ => return Ok(lhs),
            };
            self.bump();
            *flops += 1;
            let rhs = self.parse_unary(dims, reads, flops)?;
            lhs = RhsExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_unary(
        &mut self,
        dims: &[LoopDim],
        reads: &mut Vec<ArrayRef>,
        flops: &mut u32,
    ) -> Result<RhsExpr, ParseError> {
        let negated = self.try_punct("-");
        let inner = match self.peek() {
            Tok::Int(_) | Tok::Float(_) => match self.bump() {
                Tok::Int(v) => RhsExpr::Num(v as f64),
                Tok::Float(v) => RhsExpr::Num(v),
                _ => unreachable!("peeked number"),
            },
            Tok::Punct("(") => {
                self.bump();
                let e = self.parse_expr(dims, reads, flops)?;
                self.eat_punct(")")?;
                e
            }
            Tok::Ident(_) => {
                let r = self.parse_ref(dims)?;
                reads.push(r);
                RhsExpr::Ref(reads.len() - 1)
            }
            other => return Err(self.err(format!("expected operand, found {other}"))),
        };
        Ok(if negated {
            RhsExpr::Neg(Box::new(inner))
        } else {
            inner
        })
    }

    fn parse_ref(&mut self, dims: &[LoopDim]) -> Result<ArrayRef, ParseError> {
        let array = self.eat_ident()?;
        let mut subscripts = Vec::new();
        while self.try_punct("[") {
            subscripts.push(self.parse_affine(dims)?);
            self.eat_punct("]")?;
        }
        Ok(ArrayRef { array, subscripts })
    }

    /// affine := ["-"] aterm (("+"|"-") aterm)*
    fn parse_affine(&mut self, dims: &[LoopDim]) -> Result<AffineExpr, ParseError> {
        let mut expr = AffineExpr::constant(0);
        let mut sign: i64 = if self.try_punct("-") { -1 } else { 1 };
        loop {
            self.parse_aterm(dims, sign, &mut expr)?;
            if self.try_punct("+") {
                sign = 1;
            } else if self.try_punct("-") {
                sign = -1;
            } else {
                return Ok(expr);
            }
        }
    }

    /// aterm := INT ["*" IDENT] | IDENT ["*" INT]
    fn parse_aterm(
        &mut self,
        dims: &[LoopDim],
        sign: i64,
        expr: &mut AffineExpr,
    ) -> Result<(), ParseError> {
        match self.bump() {
            Tok::Int(v) => {
                if self.try_punct("*") {
                    let name = self.eat_ident()?;
                    let dim = self.lookup_dim(dims, &name)?;
                    expr.add_term(dim, sign * v);
                } else {
                    expr.add_constant(sign * v);
                }
                Ok(())
            }
            Tok::Ident(name) => {
                let dim = self.lookup_dim(dims, &name)?;
                if self.try_punct("*") {
                    match self.bump() {
                        Tok::Int(v) => expr.add_term(dim, sign * v),
                        other => {
                            return Err(
                                self.err(format!("expected integer coefficient, found {other}"))
                            )
                        }
                    }
                } else {
                    expr.add_term(dim, sign);
                }
                Ok(())
            }
            other => Err(self.err(format!("expected affine term, found {other}"))),
        }
    }

    fn lookup_dim(&self, dims: &[LoopDim], name: &str) -> Result<usize, ParseError> {
        dims.iter().position(|d| d.name == name).ok_or_else(|| {
            self.err(format!(
                "`{name}` is not a loop iterator in scope (subscripts must be \
                 affine in the iterators)"
            ))
        })
    }
}

/// Parses a program from source; the program name is derived from the
/// first kernel's name.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information on malformed input.
///
/// # Examples
///
/// ```
/// use eatss_affine::parser::parse_program;
///
/// let p = parse_program("kernel axpy(N) { for (i: N) y[i] += a * x[i]; }")?;
/// assert_eq!(p.name, "axpy");
/// assert_eq!(p.kernels[0].depth(), 1);
/// # Ok::<(), eatss_affine::parser::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut parser = Parser::new(src)?;
    let mut program = parser.parse_program("")?;
    program.name = program.kernels[0].name.clone();
    Ok(program)
}

/// Parses a program and overrides its name.
///
/// # Errors
///
/// Same conditions as [`parse_program`].
pub fn parse_named_program(name: &str, src: &str) -> Result<Program, ParseError> {
    let mut parser = Parser::new(src)?;
    parser.parse_program(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_matmul() {
        let p = parse_program(
            "kernel matmul(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 Out[i][j] += In[i][k] * Ker[k][j];
             }",
        )
        .unwrap();
        let k = &p.kernels[0];
        assert_eq!(k.name, "matmul");
        assert_eq!(k.depth(), 3);
        assert_eq!(k.dims[0].name, "i");
        assert_eq!(k.dims[2].extent, Extent::Param("P".into()));
        let s = &k.stmts[0];
        assert!(s.is_accumulation);
        assert_eq!(s.flops, 2);
        assert_eq!(s.write.array, "Out");
        assert_eq!(s.reads.len(), 2);
        assert_eq!(s.reads[0].subscripts[1], AffineExpr::var(2));
    }

    #[test]
    fn parses_stencil_with_offsets_and_floats() {
        let p = parse_program(
            "kernel jacobi(N) {
               for (i: N) for (j: N)
                 B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
             }",
        )
        .unwrap();
        let s = &p.kernels[0].stmts[0];
        assert!(!s.is_accumulation);
        assert_eq!(s.reads.len(), 5);
        assert_eq!(s.reads[1].subscripts[1].offset(), -1);
        assert_eq!(s.reads[4].subscripts[0].offset(), -1);
        assert_eq!(s.flops, 5); // one mul + four adds
    }

    #[test]
    fn parses_seq_loop_marker() {
        let p = parse_program(
            "kernel heat(T, N) {
               for seq (t: T) for (i: N)
                 A[i] = A[i-1] + A[i+1];
             }",
        )
        .unwrap();
        assert!(p.kernels[0].dims[0].explicit_serial);
        assert!(!p.kernels[0].dims[1].explicit_serial);
    }

    #[test]
    fn parses_multiple_kernels_and_blocks() {
        let p = parse_named_program(
            "2mm",
            "kernel mm1(NI, NJ, NK) {
               for (i: NI) for (j: NJ) for (k: NK)
                 tmp[i][j] += alpha * A[i][k] * B[k][j];
             }
             kernel mm2(NI, NL, NJ) {
               for (i: NI) for (j: NL) for (k: NJ) {
                 D[i][j] += tmp[i][k] * C[k][j];
               }
             }",
        )
        .unwrap();
        assert_eq!(p.name, "2mm");
        assert_eq!(p.kernels.len(), 2);
        // `alpha` is a scalar read.
        assert!(p.kernels[0].stmts[0].reads[0].subscripts.is_empty());
    }

    #[test]
    fn parses_coefficient_subscripts() {
        let p = parse_program(
            "kernel strided(N) {
               for (i: N) A[2*i] = B[i*3+1] + B[4];
             }",
        )
        .unwrap();
        let s = &p.kernels[0].stmts[0];
        assert_eq!(s.write.subscripts[0].coeff(0), 2);
        assert_eq!(s.reads[0].subscripts[0].coeff(0), 3);
        assert_eq!(s.reads[0].subscripts[0].offset(), 1);
        assert_eq!(s.reads[1].subscripts[0].offset(), 4);
    }

    #[test]
    fn parses_negative_leading_subscript() {
        let p = parse_program("kernel f(N) { for (i: N) A[-i+5] = B[i]; }").unwrap();
        let sub = &p.kernels[0].stmts[0].write.subscripts[0];
        assert_eq!(sub.coeff(0), -1);
        assert_eq!(sub.offset(), 5);
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program(
            "// leading comment
             kernel f(N) { // trailing
               for (i: N) A[i] = B[i]; // stmt
             }",
        )
        .unwrap();
        assert_eq!(p.kernels[0].stmts.len(), 1);
    }

    #[test]
    fn error_on_unknown_iterator_in_subscript() {
        let e = parse_program("kernel f(N) { for (i: N) A[z] = B[i]; }").unwrap_err();
        assert!(e.message.contains("`z`"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn error_on_unknown_extent() {
        let e = parse_program("kernel f(N) { for (i: M) A[i] = B[i]; }").unwrap_err();
        assert!(e.message.contains("unknown extent parameter `M`"));
    }

    #[test]
    fn error_on_duplicate_iterator() {
        let e =
            parse_program("kernel f(N) { for (i: N) for (i: N) A[i] = B[i]; }").unwrap_err();
        assert!(e.message.contains("duplicate loop iterator"));
    }

    #[test]
    fn error_on_duplicate_kernel_name() {
        let e = parse_program(
            "kernel f(N) { for (i: N) A[i] = B[i]; }\n\
             kernel f(M) { for (j: M) C[j] = D[j]; }",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate kernel name `f`"), "{e:?}");
        // Positioned at the second `f`, line 2.
        assert_eq!(e.line, 2);
        // Distinct names in one program stay legal.
        let p = parse_program(
            "kernel f(N) { for (i: N) A[i] = B[i]; }\n\
             kernel g(N) { for (i: N) A[i] = B[i]; }",
        )
        .unwrap();
        assert_eq!(p.kernels.len(), 2);
    }

    #[test]
    fn error_on_imperfect_nest() {
        let e = parse_program(
            "kernel f(N) { for (i: N) { for (j: N) A[i][j] = B[i][j]; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("imperfectly nested"));
    }

    #[test]
    fn error_on_empty_body_and_empty_program() {
        assert!(parse_program("kernel f(N) { for (i: N) { } }").is_err());
        assert!(parse_program("   ").is_err());
    }

    #[test]
    fn error_reports_position() {
        let e = parse_program("kernel f(N) {\n  for (i: N)\n    A[i] $ B[i];\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unexpected character"));
    }

    #[test]
    fn const_extent_is_allowed() {
        let p = parse_program("kernel f() { for (i: 128) A[i] = B[i]; }").unwrap();
        assert_eq!(p.kernels[0].dims[0].extent, Extent::Const(128));
    }

    #[test]
    fn iterator_shadowing_parameter_is_rejected() {
        let e = parse_program("kernel f(N) { for (N: N) A[N] = B[N]; }").unwrap_err();
        assert!(e.message.contains("shadows"));
    }

    #[test]
    fn division_counts_as_flop() {
        let p = parse_program("kernel f(N) { for (i: N) A[i] = B[i] / 3 + 1; }").unwrap();
        assert_eq!(p.kernels[0].stmts[0].flops, 2);
    }
}
