//! The affine loop-nest intermediate representation.
//!
//! A [`Program`] is a list of [`Kernel`]s (perfectly nested affine loop
//! nests with one or more statements in the innermost body — the shape
//! PPCG's tiler operates on). Array subscripts are [`AffineExpr`]s over the
//! loop iterators, which is exactly the fragment the EATSS model generator
//! consumes.

use std::collections::BTreeMap;
use std::fmt;

/// Loop extent: either a symbolic problem-size parameter or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Extent {
    /// Named problem-size parameter (e.g. `M`).
    Param(String),
    /// Fixed trip count.
    Const(i64),
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Extent::Param(p) => f.write_str(p),
            Extent::Const(c) => write!(f, "{c}"),
        }
    }
}

/// One loop dimension of a kernel, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDim {
    /// Iterator name (e.g. `i`).
    pub name: String,
    /// Trip count (loops run from `0` to `extent - 1`).
    pub extent: Extent,
    /// Declared serial (`for seq (...)` in the source dialect), used for
    /// time loops whose carried dependences flow between statements that
    /// our single-nest IR does not otherwise relate.
    pub explicit_serial: bool,
}

/// An affine function of the loop iterators: `Σ coeff·iter + constant`.
///
/// # Examples
///
/// ```
/// use eatss_affine::AffineExpr;
///
/// // 2*i0 - 1
/// let e = AffineExpr::from_terms(vec![(0, 2)], -1);
/// assert_eq!(e.eval(&[5, 7]), 9);
/// assert_eq!(e.coeff(0), 2);
/// assert_eq!(e.coeff(1), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    /// `(dimension index, coefficient)` pairs, sorted by dimension, no
    /// zero coefficients, no duplicate dimensions.
    terms: Vec<(usize, i64)>,
    /// Constant offset.
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The single-iterator expression `iter_dim` (coefficient 1).
    pub fn var(dim: usize) -> Self {
        AffineExpr {
            terms: vec![(dim, 1)],
            constant: 0,
        }
    }

    /// Builds from raw `(dim, coeff)` terms plus a constant, normalizing
    /// (merging duplicates, dropping zeros, sorting by dimension).
    pub fn from_terms(terms: Vec<(usize, i64)>, constant: i64) -> Self {
        let mut map: BTreeMap<usize, i64> = BTreeMap::new();
        for (d, c) in terms {
            *map.entry(d).or_insert(0) += c;
        }
        AffineExpr {
            terms: map.into_iter().filter(|&(_, c)| c != 0).collect(),
            constant,
        }
    }

    /// Adds `coeff·iter_dim` to the expression.
    pub fn add_term(&mut self, dim: usize, coeff: i64) {
        match self.terms.binary_search_by_key(&dim, |&(d, _)| d) {
            Ok(i) => {
                self.terms[i].1 += coeff;
                if self.terms[i].1 == 0 {
                    self.terms.remove(i);
                }
            }
            Err(i) => {
                if coeff != 0 {
                    self.terms.insert(i, (dim, coeff));
                }
            }
        }
    }

    /// Adds a constant.
    pub fn add_constant(&mut self, c: i64) {
        self.constant += c;
    }

    /// Coefficient of dimension `dim` (0 if absent).
    pub fn coeff(&self, dim: usize) -> i64 {
        self.terms
            .binary_search_by_key(&dim, |&(d, _)| d)
            .map(|i| self.terms[i].1)
            .unwrap_or(0)
    }

    /// Constant offset.
    pub fn offset(&self) -> i64 {
        self.constant
    }

    /// Non-zero `(dim, coeff)` pairs sorted by dimension.
    pub fn terms(&self) -> &[(usize, i64)] {
        &self.terms
    }

    /// Whether any iterator appears.
    pub fn uses_any_iter(&self) -> bool {
        !self.terms.is_empty()
    }

    /// Whether iterator `dim` appears with non-zero coefficient.
    pub fn uses(&self, dim: usize) -> bool {
        self.coeff(dim) != 0
    }

    /// The linear part, i.e. the expression minus its constant.
    pub fn linear_part(&self) -> AffineExpr {
        AffineExpr {
            terms: self.terms.clone(),
            constant: 0,
        }
    }

    /// Evaluates at a concrete iteration point.
    ///
    /// # Panics
    ///
    /// Panics if the point has fewer dimensions than the expression uses.
    pub fn eval(&self, point: &[i64]) -> i64 {
        self.terms
            .iter()
            .map(|&(d, c)| c * point[d])
            .sum::<i64>()
            + self.constant
    }

    /// Renders using the given iterator names.
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> impl fmt::Display + 'a {
        struct D<'a>(&'a AffineExpr, &'a [String]);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut first = true;
                for &(d, c) in &self.0.terms {
                    let name: &str = self.1.get(d).map(String::as_str).unwrap_or("?");
                    if first {
                        match c {
                            1 => write!(f, "{name}")?,
                            -1 => write!(f, "-{name}")?,
                            _ => write!(f, "{c}*{name}")?,
                        }
                        first = false;
                    } else if c > 0 {
                        if c == 1 {
                            write!(f, "+{name}")?;
                        } else {
                            write!(f, "+{c}*{name}")?;
                        }
                    } else if c == -1 {
                        write!(f, "-{name}")?;
                    } else {
                        write!(f, "{c}*{name}")?;
                    }
                }
                if first {
                    write!(f, "{}", self.0.constant)?;
                } else if self.0.constant > 0 {
                    write!(f, "+{}", self.0.constant)?;
                } else if self.0.constant < 0 {
                    write!(f, "{}", self.0.constant)?;
                }
                Ok(())
            }
        }
        D(self, names)
    }
}

/// A single array reference, e.g. `In[i][k]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// Array name.
    pub array: String,
    /// Subscript expressions, slowest-varying first. Empty for scalars.
    pub subscripts: Vec<AffineExpr>,
}

impl ArrayRef {
    /// Creates a reference from an array name and subscripts.
    pub fn new(array: impl Into<String>, subscripts: Vec<AffineExpr>) -> Self {
        ArrayRef {
            array: array.into(),
            subscripts,
        }
    }

    /// The fastest-varying subscript, if the reference is not scalar.
    pub fn fastest_subscript(&self) -> Option<&AffineExpr> {
        self.subscripts.last()
    }

    /// Whether iterator `dim` appears in any subscript.
    pub fn uses_dim(&self, dim: usize) -> bool {
        self.subscripts.iter().any(|s| s.uses(dim))
    }

    /// Iterator dims used anywhere in the subscripts, ascending, deduped.
    pub fn used_dims(&self) -> Vec<usize> {
        let mut dims: Vec<usize> = self
            .subscripts
            .iter()
            .flat_map(|s| s.terms().iter().map(|&(d, _)| d))
            .collect();
        dims.sort_unstable();
        dims.dedup();
        dims
    }

    /// Whether the reference has *stride-1* access along `dim`: `dim`
    /// appears with coefficient ±1 in the fastest-varying subscript and
    /// nowhere else.
    pub fn stride1_dim(&self) -> Option<usize> {
        let last = self.fastest_subscript()?;
        let candidates: Vec<usize> = last
            .terms()
            .iter()
            .filter(|&&(_, c)| c == 1 || c == -1)
            .map(|&(d, _)| d)
            .collect();
        // Of those, prefer one not used in the slower subscripts (a dim
        // also indexing a slower subscript does not give contiguity).
        candidates
            .iter()
            .copied()
            .find(|&d| {
                !self.subscripts[..self.subscripts.len() - 1]
                    .iter()
                    .any(|s| s.uses(d))
            })
            .or_else(|| candidates.first().copied())
    }

    /// Renders using the given iterator names.
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> String {
        let mut s = self.array.clone();
        for sub in &self.subscripts {
            s.push('[');
            s.push_str(&sub.display_with(names).to_string());
            s.push(']');
        }
        s
    }
}

/// Right-hand-side expression shape (for code generation); array operands
/// index into [`Statement::reads`].
#[derive(Debug, Clone, PartialEq)]
pub enum RhsExpr {
    /// Numeric literal.
    Num(f64),
    /// The `i`-th read reference of the owning statement.
    Ref(usize),
    /// Binary operation; `op` is one of `+ - * /`.
    Bin(char, Box<RhsExpr>, Box<RhsExpr>),
    /// Unary negation.
    Neg(Box<RhsExpr>),
}

impl RhsExpr {
    /// Renders the expression, printing read `i` as `reads[i]` with the
    /// given iterator names substituted.
    pub fn display_with(&self, reads: &[ArrayRef], names: &[String]) -> String {
        match self {
            RhsExpr::Num(v) => {
                if v.fract() == 0.0 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            RhsExpr::Ref(i) => reads
                .get(*i)
                .map(|r| r.display_with(names))
                .unwrap_or_else(|| "?".to_owned()),
            RhsExpr::Bin(op, a, b) => format!(
                "({} {op} {})",
                a.display_with(reads, names),
                b.display_with(reads, names)
            ),
            RhsExpr::Neg(a) => format!("(-{})", a.display_with(reads, names)),
        }
    }
}

/// One statement in the innermost loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The written reference (left-hand side).
    pub write: ArrayRef,
    /// Read references on the right-hand side, in textual order.
    pub reads: Vec<ArrayRef>,
    /// Right-hand-side expression shape over [`Statement::reads`].
    pub rhs: RhsExpr,
    /// `true` for `+=` statements (the write is also a read — a
    /// reduction).
    pub is_accumulation: bool,
    /// Floating-point operations per dynamic instance.
    pub flops: u32,
}

impl Statement {
    /// All references of the statement: the write first, then reads (the
    /// write repeated as a read for accumulations).
    pub fn all_refs(&self) -> Vec<&ArrayRef> {
        let mut v = Vec::with_capacity(self.reads.len() + 2);
        v.push(&self.write);
        if self.is_accumulation {
            v.push(&self.write);
        }
        v.extend(self.reads.iter());
        v
    }

    /// Unique references (write + reads, deduplicated structurally).
    pub fn unique_refs(&self) -> Vec<&ArrayRef> {
        let mut v: Vec<&ArrayRef> = Vec::new();
        for r in std::iter::once(&self.write).chain(self.reads.iter()) {
            if !v.contains(&r) {
                v.push(r);
            }
        }
        v
    }
}

/// A perfectly nested affine loop nest with statements in the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (e.g. `gemm`).
    pub name: String,
    /// Loop dimensions, outermost first.
    pub dims: Vec<LoopDim>,
    /// Innermost-body statements in textual order.
    pub stmts: Vec<Statement>,
}

impl Kernel {
    /// Loop-nest depth (`L` in the paper).
    pub fn depth(&self) -> usize {
        self.dims.len()
    }

    /// Iterator names, outermost first.
    pub fn dim_names(&self) -> Vec<String> {
        self.dims.iter().map(|d| d.name.clone()).collect()
    }

    /// Unique references across all statements (write + reads).
    pub fn unique_refs(&self) -> Vec<&ArrayRef> {
        let mut v: Vec<&ArrayRef> = Vec::new();
        for s in &self.stmts {
            for r in s.unique_refs() {
                if !v.contains(&r) {
                    v.push(r);
                }
            }
        }
        v
    }

    /// Names of arrays touched by the kernel, in first-use order.
    pub fn array_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = Vec::new();
        for r in self.unique_refs() {
            if !v.contains(&r.array.as_str()) {
                v.push(&r.array);
            }
        }
        v
    }

    /// Concrete trip count of dimension `dim` under `sizes`.
    ///
    /// # Errors
    ///
    /// Returns the parameter name if it is unbound in `sizes`.
    pub fn trip_count(&self, dim: usize, sizes: &ProblemSizes) -> Result<i64, String> {
        match &self.dims[dim].extent {
            Extent::Const(c) => Ok(*c),
            Extent::Param(p) => sizes.get(p).ok_or_else(|| p.clone()),
        }
    }

    /// Total dynamic iteration count under `sizes`.
    ///
    /// # Errors
    ///
    /// Returns the first unbound parameter name.
    pub fn iteration_space_size(&self, sizes: &ProblemSizes) -> Result<i64, String> {
        let mut total: i64 = 1;
        for d in 0..self.depth() {
            total = total.saturating_mul(self.trip_count(d, sizes)?);
        }
        Ok(total)
    }

    /// Total floating-point operations under `sizes`.
    ///
    /// # Errors
    ///
    /// Returns the first unbound parameter name.
    pub fn total_flops(&self, sizes: &ProblemSizes) -> Result<i64, String> {
        let iters = self.iteration_space_size(sizes)?;
        let per_iter: i64 = self.stmts.iter().map(|s| s.flops as i64).sum();
        Ok(iters.saturating_mul(per_iter))
    }
}

/// A program: one or more kernels sharing problem-size parameters
/// (e.g. 2mm is two back-to-back matmul kernels).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Member kernels in execution order.
    pub kernels: Vec<Kernel>,
}

impl Program {
    /// Maximum loop depth across kernels (`d` in the paper's `32^d`
    /// default-tiling notation).
    pub fn max_depth(&self) -> usize {
        self.kernels.iter().map(Kernel::depth).max().unwrap_or(0)
    }

    /// Total floating-point operations of all kernels under `sizes`.
    ///
    /// # Errors
    ///
    /// Returns the first unbound parameter name.
    pub fn total_flops(&self, sizes: &ProblemSizes) -> Result<i64, String> {
        let mut total = 0i64;
        for k in &self.kernels {
            total = total.saturating_add(k.total_flops(sizes)?);
        }
        Ok(total)
    }
}

/// Binding of problem-size parameters to concrete values.
///
/// # Examples
///
/// ```
/// use eatss_affine::ProblemSizes;
///
/// let sizes = ProblemSizes::new([("M", 1000), ("N", 1200)]);
/// assert_eq!(sizes.get("M"), Some(1000));
/// assert_eq!(sizes.get("K"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProblemSizes {
    map: BTreeMap<String, i64>,
}

impl ProblemSizes {
    /// Builds from `(name, value)` pairs.
    pub fn new<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, i64)>,
        S: Into<String>,
    {
        ProblemSizes {
            map: pairs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// Binds every parameter in `params` to the same value `n`.
    pub fn uniform<'a, I: IntoIterator<Item = &'a str>>(params: I, n: i64) -> Self {
        ProblemSizes::new(params.into_iter().map(|p| (p, n)))
    }

    /// Value of parameter `name`.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.map.get(name).copied()
    }

    /// Inserts or overwrites a binding.
    pub fn set(&mut self, name: impl Into<String>, value: i64) {
        self.map.insert(name.into(), value);
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul() -> Kernel {
        // Out[i][j] += In[i][k] * Ker[k][j]
        Kernel {
            name: "matmul".into(),
            dims: vec![
                LoopDim {
                    name: "i".into(),
                    extent: Extent::Param("M".into()),
                    explicit_serial: false,
                },
                LoopDim {
                    name: "j".into(),
                    extent: Extent::Param("N".into()),
                    explicit_serial: false,
                },
                LoopDim {
                    name: "k".into(),
                    extent: Extent::Param("P".into()),
                    explicit_serial: false,
                },
            ],
            stmts: vec![Statement {
                write: ArrayRef::new("Out", vec![AffineExpr::var(0), AffineExpr::var(1)]),
                reads: vec![
                    ArrayRef::new("In", vec![AffineExpr::var(0), AffineExpr::var(2)]),
                    ArrayRef::new("Ker", vec![AffineExpr::var(2), AffineExpr::var(1)]),
                ],
                rhs: RhsExpr::Bin(
                    '*',
                    Box::new(RhsExpr::Ref(0)),
                    Box::new(RhsExpr::Ref(1)),
                ),
                is_accumulation: true,
                flops: 2,
            }],
        }
    }

    #[test]
    fn affine_expr_normalization() {
        let e = AffineExpr::from_terms(vec![(2, 1), (0, 2), (2, -1)], 5);
        assert_eq!(e.terms(), &[(0, 2)]);
        assert_eq!(e.offset(), 5);
        let mut f = AffineExpr::var(1);
        f.add_term(1, -1);
        assert!(!f.uses_any_iter());
    }

    #[test]
    fn affine_expr_eval_and_display() {
        let e = AffineExpr::from_terms(vec![(0, 1), (1, -2)], 3);
        assert_eq!(e.eval(&[10, 4]), 5);
        let names = vec!["i".to_string(), "j".to_string()];
        assert_eq!(e.display_with(&names).to_string(), "i-2*j+3");
        assert_eq!(AffineExpr::constant(0).display_with(&names).to_string(), "0");
        let neg = AffineExpr::from_terms(vec![(0, -1)], 0);
        assert_eq!(neg.display_with(&names).to_string(), "-i");
    }

    #[test]
    fn stride1_detection_prefers_unshared_dim() {
        // A[i][j]: stride-1 dim is j.
        let a = ArrayRef::new("A", vec![AffineExpr::var(0), AffineExpr::var(1)]);
        assert_eq!(a.stride1_dim(), Some(1));
        // B[j][j]: j indexes both; still reported (only candidate).
        let b = ArrayRef::new("B", vec![AffineExpr::var(1), AffineExpr::var(1)]);
        assert_eq!(b.stride1_dim(), Some(1));
        // C[i][2*j]: coefficient 2 is not stride-1.
        let c = ArrayRef::new(
            "C",
            vec![AffineExpr::var(0), AffineExpr::from_terms(vec![(1, 2)], 0)],
        );
        assert_eq!(c.stride1_dim(), None);
        // scalar
        let s = ArrayRef::new("s", vec![]);
        assert_eq!(s.stride1_dim(), None);
    }

    #[test]
    fn stride1_with_offset_still_counts() {
        // in[i+1][j-1] has stride-1 along j (stencil halo).
        let r = ArrayRef::new(
            "in",
            vec![
                AffineExpr::from_terms(vec![(0, 1)], 1),
                AffineExpr::from_terms(vec![(1, 1)], -1),
            ],
        );
        assert_eq!(r.stride1_dim(), Some(1));
    }

    #[test]
    fn kernel_accessors() {
        let k = matmul();
        assert_eq!(k.depth(), 3);
        assert_eq!(k.array_names(), vec!["Out", "In", "Ker"]);
        assert_eq!(k.unique_refs().len(), 3);
        let sizes = ProblemSizes::new([("M", 10), ("N", 20), ("P", 30)]);
        assert_eq!(k.iteration_space_size(&sizes).unwrap(), 6000);
        assert_eq!(k.total_flops(&sizes).unwrap(), 12_000);
        assert_eq!(k.trip_count(0, &sizes).unwrap(), 10);
    }

    #[test]
    fn unbound_parameter_is_reported() {
        let k = matmul();
        let sizes = ProblemSizes::new([("M", 10)]);
        assert_eq!(k.iteration_space_size(&sizes), Err("N".to_string()));
    }

    #[test]
    fn statement_all_refs_repeats_accumulation_write() {
        let k = matmul();
        let s = &k.stmts[0];
        assert_eq!(s.all_refs().len(), 4); // Out (write), Out (read), In, Ker
        assert_eq!(s.unique_refs().len(), 3);
    }

    #[test]
    fn program_totals() {
        let p = Program {
            name: "two".into(),
            kernels: vec![matmul(), matmul()],
        };
        let sizes = ProblemSizes::new([("M", 10), ("N", 10), ("P", 10)]);
        assert_eq!(p.max_depth(), 3);
        assert_eq!(p.total_flops(&sizes).unwrap(), 4000);
    }

    #[test]
    fn problem_sizes_uniform_and_set() {
        let mut s = ProblemSizes::uniform(["M", "N"], 100);
        assert_eq!(s.get("M"), Some(100));
        s.set("M", 50);
        assert_eq!(s.get("M"), Some(50));
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn used_dims_are_sorted_and_deduped() {
        let r = ArrayRef::new(
            "B",
            vec![
                AffineExpr::from_terms(vec![(2, 1), (0, 1)], 0),
                AffineExpr::var(2),
            ],
        );
        assert_eq!(r.used_dims(), vec![0, 2]);
        assert!(r.uses_dim(0));
        assert!(!r.uses_dim(1));
    }
}
