//! Memory access-pattern analysis.
//!
//! Implements the analyses of §IV-A..§IV-K of the paper that feed the
//! model generator:
//!
//! * grouping of references into *distinct-cache-line* groups (§IV-G:
//!   "the number of references accessing distinct cache lines"),
//! * selection of the CMA loop dimension `l_s1` (§IV-D),
//! * the split into `L1_set` / `SH_set` (§IV-E),
//! * reuse typing per reference (Table II),
//! * the `H_i` weights of the objective function (§IV-K).

use crate::analysis::dependence::parallel_dims;
use crate::ir::{ArrayRef, Kernel};
use std::fmt;

/// Which memory an array reference is mapped to (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// Hardware-managed cache (the reference is CMA-capable or frequently
    /// updated).
    L1,
    /// Software-managed shared memory local to an SM.
    SharedMem,
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryKind::L1 => f.write_str("L1"),
            MemoryKind::SharedMem => f.write_str("Shared-Mem"),
        }
    }
}

/// Kind of data reuse a reference exhibits along a loop dimension
/// (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseKind {
    /// Temporal reuse: the dimension does not index the reference, so the
    /// same element is touched on every iteration of that loop.
    Temporal,
    /// Spatial reuse: the dimension strides through consecutive elements
    /// (stride-1 in the fastest-varying subscript).
    Spatial,
}

impl fmt::Display for ReuseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseKind::Temporal => f.write_str("T-reuse"),
            ReuseKind::Spatial => f.write_str("S-reuse"),
        }
    }
}

/// A group of textual references that touch the same cache lines: same
/// array, same linear subscript parts, and identical constant offsets in
/// all but the fastest-varying subscript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefGroup {
    /// Array name.
    pub array: String,
    /// Representative reference.
    pub representative: ArrayRef,
    /// Number of textual references merged into this group.
    pub members: usize,
    /// Whether some member is written.
    pub is_written: bool,
    /// Whether some member is an accumulation target (read+write).
    pub is_accumulated: bool,
    /// Loop dimension with stride-1 access, if any.
    pub stride1_dim: Option<usize>,
    /// Loop dimensions indexing the reference (sorted).
    pub used_dims: Vec<usize>,
    /// Memory the group is mapped to (filled by [`AccessAnalysis`]).
    pub memory: MemoryKind,
    /// Whether the group can be accessed with coalesced memory accesses
    /// along the selected CMA loop.
    pub cma_capable: bool,
    /// `(min, max)` constant offset of the fastest-varying subscript over
    /// all members. Members of one group may differ *only* in that offset
    /// (same cache line), so this span is exactly how much wider than the
    /// representative's footprint the group's true per-step access box is
    /// — e.g. `A[i][j-1]`, `A[i][j]`, `A[i][j+1]` give `(-1, 1)`.
    pub fastest_offsets: (i64, i64),
}

impl RefGroup {
    /// Reuse kinds of this reference: `(dim, kind)` pairs, temporal reuse
    /// for unused dimensions and spatial reuse along the stride-1
    /// dimension.
    pub fn reuse(&self, depth: usize) -> Vec<(usize, ReuseKind)> {
        let mut out = Vec::new();
        for d in 0..depth {
            if !self.used_dims.contains(&d) && !self.representative.subscripts.is_empty() {
                out.push((d, ReuseKind::Temporal));
            }
        }
        if let Some(d) = self.stride1_dim {
            out.push((d, ReuseKind::Spatial));
        }
        out.sort_by_key(|&(d, _)| d);
        out
    }
}

/// The complete access analysis of one kernel.
///
/// # Examples
///
/// Reproducing Table II of the paper for matmul:
///
/// ```
/// use eatss_affine::parser::parse_program;
/// use eatss_affine::analysis::{AccessAnalysis, MemoryKind};
///
/// let p = parse_program(
///     "kernel matmul(M, N, P) {
///        for (i: M) for (j: N) for (k: P)
///          Out[i][j] += In[i][k] * Ker[k][j];
///      }")?;
/// let a = AccessAnalysis::analyze(&p.kernels[0]);
/// assert_eq!(a.cma_dim, Some(1)); // loop j
/// let mem: Vec<_> = a.groups.iter().map(|g| (g.array.as_str(), g.memory)).collect();
/// assert_eq!(mem, vec![
///     ("Out", MemoryKind::L1),
///     ("In", MemoryKind::SharedMem),
///     ("Ker", MemoryKind::L1),
/// ]);
/// # Ok::<(), eatss_affine::parser::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AccessAnalysis {
    /// Loop depth of the analyzed kernel.
    pub depth: usize,
    /// Parallel (`true`) / serial (`false`) classification per dimension.
    pub parallel: Vec<bool>,
    /// The CMA loop dimension `l_s1` (§IV-D), if any dimension exhibits
    /// stride-1 access.
    pub cma_dim: Option<usize>,
    /// Distinct-cache-line reference groups, in first-occurrence order.
    pub groups: Vec<RefGroup>,
}

impl AccessAnalysis {
    /// Runs the full analysis on a kernel.
    pub fn analyze(kernel: &Kernel) -> Self {
        let depth = kernel.depth();
        let parallel = parallel_dims(kernel);
        let mut groups = collect_groups(kernel);
        let cma_dim = select_cma_dim(&groups, &parallel);
        for g in &mut groups {
            g.cma_capable = cma_dim.is_some() && g.stride1_dim == cma_dim;
            // §IV-E: CMA-capable references exploit L1; §IV-A also keeps
            // "repeatedly and frequently updated" (accumulated) references
            // in cache. Everything else goes to shared memory.
            g.memory = if g.cma_capable || g.is_accumulated {
                MemoryKind::L1
            } else {
                MemoryKind::SharedMem
            };
        }
        AccessAnalysis {
            depth,
            parallel,
            cma_dim,
            groups,
        }
    }

    /// Number of references accessing distinct cache lines
    /// (`no.references` of §IV-G).
    pub fn distinct_line_refs(&self) -> usize {
        self.groups.len()
    }

    /// Groups mapped to the L1 cache (`L1_set`, §IV-E).
    pub fn l1_set(&self) -> impl Iterator<Item = &RefGroup> + '_ {
        self.groups.iter().filter(|g| g.memory == MemoryKind::L1)
    }

    /// Groups mapped to shared memory (`SH_set`, §IV-E).
    pub fn sh_set(&self) -> impl Iterator<Item = &RefGroup> + '_ {
        self.groups
            .iter()
            .filter(|g| g.memory == MemoryKind::SharedMem)
    }

    /// The `H_i` objective weights of §IV-K.
    ///
    /// `H_i` counts references whose stride-1 dimension is `i`, scaled by
    /// `warp_alignment_factor` when `i` is the CMA loop. In nests of depth
    /// ≥ 3, non-parallel dimensions are nullified; in 2-D nests the
    /// parallel dimension is dropped from the sum and the non-parallel
    /// dimension kept (§IV-K, sub-cases 1–3).
    pub fn h_weights(&self, warp_alignment_factor: i64) -> Vec<i64> {
        let mut h = vec![0i64; self.depth];
        for g in &self.groups {
            if let Some(d) = g.stride1_dim {
                h[d] += g.members as i64;
            }
        }
        for (d, w) in h.iter_mut().enumerate() {
            if Some(d) == self.cma_dim {
                *w *= warp_alignment_factor;
            }
            if self.depth >= 3 && !self.parallel[d] {
                *w = 0;
            }
            if self.depth == 2 && self.parallel[d] {
                *w = 0;
            }
        }
        h
    }
}

/// Groups a kernel's textual references by cache-line identity.
fn collect_groups(kernel: &Kernel) -> Vec<RefGroup> {
    #[derive(PartialEq)]
    struct Key {
        array: String,
        linear: Vec<Vec<(usize, i64)>>,
        slow_offsets: Vec<i64>,
    }
    fn key_of(r: &ArrayRef) -> Key {
        let linear = r
            .subscripts
            .iter()
            .map(|s| s.terms().to_vec())
            .collect::<Vec<_>>();
        let n = r.subscripts.len();
        let slow_offsets = r.subscripts[..n.saturating_sub(1)]
            .iter()
            .map(|s| s.offset())
            .collect();
        Key {
            array: r.array.clone(),
            linear,
            slow_offsets,
        }
    }

    let mut keys: Vec<Key> = Vec::new();
    let mut groups: Vec<RefGroup> = Vec::new();
    let mut add = |r: &ArrayRef, written: bool, accumulated: bool| {
        let key = key_of(r);
        let fast_off = r.fastest_subscript().map(|s| s.offset()).unwrap_or(0);
        if let Some(i) = keys.iter().position(|k| *k == key) {
            groups[i].members += 1;
            groups[i].is_written |= written;
            groups[i].is_accumulated |= accumulated;
            let (lo, hi) = groups[i].fastest_offsets;
            groups[i].fastest_offsets = (lo.min(fast_off), hi.max(fast_off));
        } else {
            keys.push(key);
            groups.push(RefGroup {
                array: r.array.clone(),
                representative: r.clone(),
                members: 1,
                is_written: written,
                is_accumulated: accumulated,
                stride1_dim: r.stride1_dim(),
                used_dims: r.used_dims(),
                memory: MemoryKind::L1, // refined by the caller
                cma_capable: false,     // refined by the caller
                fastest_offsets: (fast_off, fast_off),
            });
        }
    };
    for s in &kernel.stmts {
        add(&s.write, true, s.is_accumulation);
        for r in &s.reads {
            // Scalars (no subscripts) live in registers; skip them.
            if !r.subscripts.is_empty() {
                add(r, false, false);
            }
        }
    }
    groups
}

/// §IV-D: prefer parallel dimensions with stride-1 access in the most
/// references; fall back to any stride-1 dimension (2-D kernels often have
/// their only stride-1 access on the serial loop). Ties prefer the
/// innermost dimension.
fn select_cma_dim(groups: &[RefGroup], parallel: &[bool]) -> Option<usize> {
    let mut counts = vec![0usize; parallel.len()];
    for g in groups {
        if let Some(d) = g.stride1_dim {
            counts[d] += g.members;
        }
    }
    let best = |pred: &dyn Fn(usize) -> bool| -> Option<usize> {
        (0..parallel.len())
            .filter(|&d| pred(d) && counts[d] > 0)
            .max_by_key(|&d| (counts[d], d))
    };
    best(&|d| parallel[d]).or_else(|| best(&|_| true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn analyze(src: &str) -> AccessAnalysis {
        let p = parse_program(src).expect("valid kernel source");
        AccessAnalysis::analyze(&p.kernels[0])
    }

    const MATMUL: &str = "kernel matmul(M, N, P) {
        for (i: M) for (j: N) for (k: P)
          Out[i][j] += In[i][k] * Ker[k][j];
      }";

    #[test]
    fn matmul_table2_classification() {
        let a = analyze(MATMUL);
        assert_eq!(a.cma_dim, Some(1));
        assert_eq!(a.distinct_line_refs(), 3);
        let out = &a.groups[0];
        assert_eq!(out.array, "Out");
        assert_eq!(out.memory, MemoryKind::L1);
        assert!(out.cma_capable);
        assert_eq!(
            out.reuse(3),
            vec![(1, ReuseKind::Spatial), (2, ReuseKind::Temporal)]
        );
        let inr = &a.groups[1];
        assert_eq!(inr.array, "In");
        assert_eq!(inr.memory, MemoryKind::SharedMem);
        assert!(!inr.cma_capable);
        assert_eq!(
            inr.reuse(3),
            vec![(1, ReuseKind::Temporal), (2, ReuseKind::Spatial)]
        );
        let ker = &a.groups[2];
        assert_eq!(ker.array, "Ker");
        assert_eq!(ker.memory, MemoryKind::L1);
        assert_eq!(
            ker.reuse(3),
            vec![(0, ReuseKind::Temporal), (1, ReuseKind::Spatial)]
        );
    }

    #[test]
    fn matmul_h_weights_match_paper() {
        // §IV-A: objective weights are [0, 2*WAF, 0] for WAF = 16.
        let a = analyze(MATMUL);
        assert_eq!(a.h_weights(16), vec![0, 32, 0]);
        assert_eq!(a.h_weights(8), vec![0, 16, 0]);
    }

    #[test]
    fn l1_and_sh_sets_partition_groups() {
        let a = analyze(MATMUL);
        assert_eq!(a.l1_set().count(), 2);
        assert_eq!(a.sh_set().count(), 1);
        assert_eq!(a.l1_set().count() + a.sh_set().count(), a.groups.len());
    }

    #[test]
    fn stencil_line_grouping() {
        // Five textual refs but A[i][j±1], A[i][j] share lines → 4 groups:
        // B[i][j], A[i][j*], A[i+1][j], A[i-1][j].
        let a = analyze(
            "kernel jac(N) {
               for (i: N) for (j: N)
                 B[i][j] = A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j];
             }",
        );
        assert_eq!(a.distinct_line_refs(), 4);
        let a_center = a
            .groups
            .iter()
            .find(|g| g.array == "A" && g.members == 3)
            .expect("merged center group");
        assert_eq!(a_center.stride1_dim, Some(1));
        assert_eq!(
            a_center.fastest_offsets,
            (-1, 1),
            "merged group spans the j-1..j+1 halo"
        );
        let b = a.groups.iter().find(|g| g.array == "B").unwrap();
        assert_eq!(b.fastest_offsets, (0, 0));
    }

    #[test]
    fn fdtd_like_counts_four_refs() {
        // §IV-G: "for the fdtd-2d kernel it would be 4 (two references
        // typically lie in the same cache line)". One representative
        // statement shows the merge.
        let a = analyze(
            "kernel hz(N, M) {
               for (i: N) for (j: M)
                 hz[i][j] += ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j];
             }",
        );
        // hz, ex{[i][j+1],[i][j]}, ey[i+1][j], ey[i][j] → 4 groups.
        assert_eq!(a.distinct_line_refs(), 4);
    }

    #[test]
    fn cma_prefers_parallel_dim() {
        // In mvt the only stride-1 dims are j (A, y) and i (x); i is the
        // parallel one but j has more references. §IV-D prefers parallel
        // dims first, so CMA falls on i... unless no parallel dim has
        // stride-1, in which case the serial one is taken.
        let a = analyze(
            "kernel mvt(N) {
               for (i: N) for (j: N) x[i] += A[i][j] * y[j];
             }",
        );
        assert_eq!(a.parallel, vec![true, false]);
        // x[i] is stride-1 along i (1-D array), so the parallel dim wins.
        assert_eq!(a.cma_dim, Some(0));
    }

    #[test]
    fn cma_falls_back_to_serial_dim() {
        // Drop the 1-D write: now only j is stride-1 anywhere.
        let a = analyze(
            "kernel rowsum(N) {
               for (i: N) for (j: N) s[i][0] += A[i][j];
             }",
        );
        assert_eq!(a.cma_dim, Some(1));
        assert!(!a.parallel[1]);
    }

    #[test]
    fn two_d_h_weights_prefer_nonparallel_loop() {
        // §IV-K sub-case 3: in 2-D nests the parallel loop is ignored and
        // the non-parallel loop kept.
        let a = analyze(
            "kernel mvt(N) {
               for (i: N) for (j: N) x[i] += A[i][j] * y[j];
             }",
        );
        let h = a.h_weights(16);
        assert_eq!(h[0], 0, "parallel dim dropped in 2-D nests");
        assert!(h[1] > 0, "serial stride-1 dim kept in 2-D nests");
    }

    #[test]
    fn high_dim_h_weights_nullify_serial_dims() {
        let a = analyze(
            "kernel conv(H, W, R, S) {
               for (i: H) for (j: W) for (p: R) for (q: S)
                 out[i][j] += in[i+p][j+q] * w[p][q];
             }",
        );
        let h = a.h_weights(16);
        assert_eq!(h[2], 0);
        assert_eq!(h[3], 0, "q is stride-1 for in/w but serial in a 4-D nest");
        assert!(h[1] > 0, "j is stride-1 for out and parallel");
    }

    #[test]
    fn scalars_are_ignored() {
        let a = analyze("kernel ax(N) { for (i: N) y[i] = alpha * x[i]; }");
        assert_eq!(a.distinct_line_refs(), 2);
        assert!(a.groups.iter().all(|g| g.array != "alpha"));
    }

    #[test]
    fn accumulated_non_cma_ref_stays_in_l1() {
        // The write target of a reduction is "repeatedly and frequently
        // updated" and stays cache-mapped even without CMA capability.
        let a = analyze(
            "kernel colsum(N) {
               for (i: N) for (j: N) s[j][i] += A[j][i];
             }",
        );
        let s = a.groups.iter().find(|g| g.array == "s").unwrap();
        assert_eq!(s.memory, MemoryKind::L1);
    }

    #[test]
    fn reuse_of_scalar_free_groups_is_empty_safe() {
        let a = analyze("kernel id(N) { for (i: N) A[i] = B[i]; }");
        for g in &a.groups {
            let reuse = g.reuse(1);
            assert_eq!(reuse, vec![(0, ReuseKind::Spatial)]);
        }
    }

    #[test]
    fn memory_kind_display() {
        assert_eq!(MemoryKind::L1.to_string(), "L1");
        assert_eq!(MemoryKind::SharedMem.to_string(), "Shared-Mem");
        assert_eq!(ReuseKind::Temporal.to_string(), "T-reuse");
        assert_eq!(ReuseKind::Spatial.to_string(), "S-reuse");
    }
}
