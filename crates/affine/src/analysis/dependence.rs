//! Distance-vector dependence analysis.
//!
//! The EATSS objective function needs to know which loop dimensions are
//! parallel (they contribute to the thread-block product) and which are
//! serial (they only affect locality and energy). We compute this with a
//! classical uniform-dependence test that is exact for the benchmark
//! kernels' access patterns and conservative elsewhere:
//!
//! * a pair *(write W, reference R)* on the same array with **identical
//!   linear parts** induces a dependence whose per-dimension distance is
//!   the (divided) offset difference — [`DepDistance::Const`];
//! * dimensions used by *neither* subscript have unknown distance
//!   ([`DepDistance::Star`]), e.g. the reduction dimension `k` of matmul;
//! * pairs with differing linear parts are handled conservatively: every
//!   dimension gets [`DepDistance::Star`].
//!
//! A dimension is **serial** if some dependence may be carried at it
//! (scanning outer→inner: a `Const(≠0)` distance definitely carries and
//! shields inner dimensions; a `Star` may carry and scanning continues).

use crate::ir::{ArrayRef, Kernel};

/// Per-dimension dependence distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepDistance {
    /// Distance is exactly this constant (0 = loop-independent at this
    /// dimension).
    Const(i64),
    /// Distance is unknown / unconstrained (the dimension indexes neither
    /// reference, or the pair is non-uniform).
    Star,
}

/// A data dependence between a written reference and another reference of
/// the same array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Array the dependence flows through.
    pub array: String,
    /// Distance per loop dimension, outermost first.
    pub distance: Vec<DepDistance>,
    /// Whether this is an accumulation self-dependence (`C[..] += ...`):
    /// it serializes its carrying loop but, being a commutative
    /// reduction, imposes no ordering constraint on loop permutation.
    pub is_reduction: bool,
}

impl Dependence {
    /// Whether every component is `Const(0)` (purely loop-independent).
    pub fn is_all_zero(&self) -> bool {
        self.distance
            .iter()
            .all(|d| matches!(d, DepDistance::Const(0)))
    }
}

/// Computes all (write, ref) dependences of a kernel.
pub fn dependences(kernel: &Kernel) -> Vec<Dependence> {
    let depth = kernel.depth();
    let mut deps = Vec::new();
    for (wi, ws) in kernel.stmts.iter().enumerate() {
        let write = &ws.write;
        for (ri, rs) in kernel.stmts.iter().enumerate() {
            let mut candidates: Vec<&ArrayRef> = Vec::new();
            // Reads of the same array...
            candidates.extend(rs.reads.iter().filter(|r| r.array == write.array));
            // ...the implicit read of an accumulation...
            if ri == wi && ws.is_accumulation {
                candidates.push(write);
            }
            // ...and output dependences with another statement's write.
            if ri != wi && rs.write.array == write.array {
                candidates.push(&rs.write);
            }
            for r in candidates {
                if let Some(distance) = pair_distance(write, r, depth) {
                    let is_reduction =
                        ri == wi && ws.is_accumulation && std::ptr::eq(r, write);
                    let dep = Dependence {
                        array: write.array.clone(),
                        distance,
                        is_reduction,
                    };
                    if !dep.is_all_zero() || ri != wi || is_reduction {
                        // Accumulation self-dependences are kept even with
                        // an all-zero constant part: they are carried by
                        // the unused (reduction) dimensions, already Star.
                        deps.push(dep);
                    }
                }
            }
        }
    }
    deps
}

/// Distance vector for a (write, read) pair, or `None` when the subscript
/// systems can never be equal (no dependence).
fn pair_distance(w: &ArrayRef, r: &ArrayRef, depth: usize) -> Option<Vec<DepDistance>> {
    if w.subscripts.len() != r.subscripts.len() {
        // Shape mismatch (should not happen in well-formed programs);
        // be conservative.
        return Some(vec![DepDistance::Star; depth]);
    }
    let uniform = w
        .subscripts
        .iter()
        .zip(&r.subscripts)
        .all(|(a, b)| a.linear_part() == b.linear_part());
    if !uniform {
        return Some(vec![DepDistance::Star; depth]);
    }
    let mut distance = vec![DepDistance::Star; depth];
    let mut determined = vec![false; depth];
    for (ws, rs) in w.subscripts.iter().zip(&r.subscripts) {
        let diff = ws.offset() - rs.offset();
        let terms = ws.terms();
        match terms.len() {
            0 => {
                // Constant subscript on both sides: unequal constants mean
                // the references never alias through this subscript.
                if diff != 0 {
                    return None;
                }
            }
            1 => {
                let (dim, coeff) = terms[0];
                if diff % coeff != 0 {
                    return None; // offsets unreachable: no dependence
                }
                let d = diff / coeff;
                match distance[dim] {
                    DepDistance::Const(prev) if determined[dim] && prev != d => {
                        // Conflicting requirements: no dependence.
                        return None;
                    }
                    _ => {
                        distance[dim] = DepDistance::Const(d);
                        determined[dim] = true;
                    }
                }
            }
            _ => {
                // Multiple iterators in one subscript (e.g. `in[i+p]`):
                // the distance is under-determined for all of them.
                for &(dim, _) in terms {
                    if !determined[dim] {
                        distance[dim] = DepDistance::Star;
                    }
                }
            }
        }
    }
    Some(distance)
}

/// Classifies each loop dimension as parallel (`true`) or serial
/// (`false`).
///
/// A dimension declared `for seq` is always serial. Otherwise a dimension
/// is serial if some dependence may be carried at it.
///
/// # Examples
///
/// ```
/// use eatss_affine::parser::parse_program;
/// use eatss_affine::analysis::parallel_dims;
///
/// let p = parse_program(
///     "kernel conv(H, W, R, S) {
///        for (i: H) for (j: W) for (p: R) for (q: S)
///          out[i][j] += in[i+p][j+q] * w[p][q];
///      }")?;
/// assert_eq!(parallel_dims(&p.kernels[0]), vec![true, true, false, false]);
/// # Ok::<(), eatss_affine::parser::ParseError>(())
/// ```
pub fn parallel_dims(kernel: &Kernel) -> Vec<bool> {
    let depth = kernel.depth();
    let mut parallel = vec![true; depth];
    for (d, dim) in kernel.dims.iter().enumerate() {
        if dim.explicit_serial {
            parallel[d] = false;
        }
    }
    for dep in dependences(kernel) {
        // Scan outer to inner. Const(!=0) definitely carries here and
        // shields inner dims; Star may carry here and scanning continues;
        // Const(0) does not carry here.
        for (d, dist) in dep.distance.iter().enumerate() {
            match dist {
                DepDistance::Const(0) => {}
                DepDistance::Const(_) => {
                    parallel[d] = false;
                    break;
                }
                DepDistance::Star => {
                    parallel[d] = false;
                }
            }
        }
    }
    parallel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn dims_of(src: &str) -> Vec<bool> {
        let p = parse_program(src).expect("valid kernel source");
        parallel_dims(&p.kernels[0])
    }

    #[test]
    fn matmul_reduction_is_serial() {
        let par = dims_of(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        );
        assert_eq!(par, vec![true, true, false]);
    }

    #[test]
    fn copy_kernel_is_fully_parallel() {
        let par = dims_of(
            "kernel copy(N) { for (i: N) for (j: N) A[i][j] = B[i][j]; }",
        );
        assert_eq!(par, vec![true, true]);
    }

    #[test]
    fn jacobi_style_kernel_is_parallel_in_space() {
        // Writes B from A: no self-dependence, i and j parallel.
        let par = dims_of(
            "kernel jac(N) {
               for (i: N) for (j: N)
                 B[i][j] = A[i][j-1] + A[i][j+1] + A[i][j];
             }",
        );
        assert_eq!(par, vec![true, true]);
    }

    #[test]
    fn explicit_seq_forces_serial() {
        let par = dims_of(
            "kernel heat(T, N) {
               for seq (t: T) for (i: N) B[i] = A[i-1] + A[i+1];
             }",
        );
        assert_eq!(par, vec![false, true]);
    }

    #[test]
    fn in_place_stencil_is_serial() {
        // A[i] = A[i-1] + A[i+1]: flow dep distance +1 carried by i.
        let par = dims_of("kernel s(N) { for (i: N) A[i] = A[i-1] + A[i+1]; }");
        assert_eq!(par, vec![false]);
    }

    #[test]
    fn conv2d_reduction_dims_serial() {
        let par = dims_of(
            "kernel conv(H, W, R, S) {
               for (i: H) for (j: W) for (p: R) for (q: S)
                 out[i][j] += in[i+p][j+q] * w[p][q];
             }",
        );
        assert_eq!(par, vec![true, true, false, false]);
    }

    #[test]
    fn mttkrp_two_parallel_two_serial() {
        let par = dims_of(
            "kernel mttkrp(I, J, K, L) {
               for (i: I) for (j: J) for (k: K) for (l: L)
                 A[i][j] += B[i][k][l] * C[k][j] * D[l][j];
             }",
        );
        assert_eq!(par, vec![true, true, false, false]);
    }

    #[test]
    fn mvt_reduction_serial() {
        let par = dims_of(
            "kernel mvt(N) {
               for (i: N) for (j: N) x[i] += A[i][j] * y[j];
             }",
        );
        assert_eq!(par, vec![true, false]);
    }

    #[test]
    fn covariance_update_pattern() {
        let par = dims_of(
            "kernel cov(M, N) {
               for (i: M) for (j: M) for (k: N)
                 cov[i][j] += data[k][i] * data[k][j];
             }",
        );
        assert_eq!(par, vec![true, true, false]);
    }

    #[test]
    fn output_dependence_between_statements() {
        // Both statements write A[i]; zero distance => no serialization.
        let par = dims_of(
            "kernel w2(N) {
               for (i: N) {
                 A[i] = B[i];
                 A[i] = C[i];
               }
             }",
        );
        assert_eq!(par, vec![true]);
    }

    #[test]
    fn nonuniform_pair_is_conservative() {
        // A[2*i] written, A[i] read: non-uniform => Star => serial.
        let par = dims_of("kernel nu(N) { for (i: N) A[2*i] = A[i] + 1; }");
        assert_eq!(par, vec![false]);
    }

    #[test]
    fn unreachable_offsets_mean_no_dependence() {
        // A[2*i] vs A[2*i+1]: parity differs, never alias.
        let par = dims_of("kernel par(N) { for (i: N) A[2*i] = A[2*i+1] + 1; }");
        assert_eq!(par, vec![true]);
        let deps = dependences(
            &parse_program("kernel par(N) { for (i: N) A[2*i] = A[2*i+1] + 1; }")
                .unwrap()
                .kernels[0],
        );
        assert!(deps.is_empty());
    }

    #[test]
    fn constant_subscript_conflict_means_no_dependence() {
        let par = dims_of("kernel c(N) { for (i: N) A[0][i] = A[1][i] + 1; }");
        assert_eq!(par, vec![true]);
    }

    #[test]
    fn dependences_reports_reduction_star() {
        let p = parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap();
        let deps = dependences(&p.kernels[0]);
        assert_eq!(deps.len(), 1);
        assert_eq!(
            deps[0].distance,
            vec![
                DepDistance::Const(0),
                DepDistance::Const(0),
                DepDistance::Star
            ]
        );
        assert!(!deps[0].is_all_zero());
    }
}
