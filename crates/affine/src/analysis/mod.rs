//! Polyhedral-style analyses over the affine IR.
//!
//! * [`dependence`] — distance-vector dependence analysis classifying each
//!   loop dimension as parallel or serial (§IV-K of the paper relies on
//!   this classification "via dependence analysis").
//! * [`access`] — memory access-pattern analysis: stride-1 / CMA loop
//!   selection (§IV-D), the L1 vs shared-memory reference split (§IV-E),
//!   distinct-cache-line reference counting (§IV-G) and the `H_i`
//!   objective weights (§IV-K). Reproduces Table II of the paper.

pub mod access;
pub mod dependence;

pub use access::{AccessAnalysis, MemoryKind, RefGroup, ReuseKind};
pub use dependence::{parallel_dims, DepDistance, Dependence};
