//! Pretty-printing of the affine IR back to the source dialect.
//!
//! `parse(pretty(program))` is the identity on the IR (up to statement
//! FLOP counts, which are recomputed) — the round-trip property is
//! enforced by tests here and a property test in the integration suite.
//! Useful for dumping transformed programs and for golden tests.

use crate::ir::{Extent, Kernel, Program, RhsExpr, Statement};
use std::fmt::Write as _;

/// Renders a whole program in the affine dialect.
///
/// # Examples
///
/// ```
/// use eatss_affine::parser::parse_program;
/// use eatss_affine::pretty::pretty_program;
///
/// let src = "kernel axpy(N) { for (i: N) y[i] += a * x[i]; }";
/// let program = parse_program(src)?;
/// let printed = pretty_program(&program);
/// // The printed text re-parses to the same IR.
/// assert_eq!(parse_program(&printed)?, program);
/// # Ok::<(), eatss_affine::parser::ParseError>(())
/// ```
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, kernel) in program.kernels.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&pretty_kernel(kernel));
    }
    out
}

/// Renders one kernel.
pub fn pretty_kernel(kernel: &Kernel) -> String {
    let mut out = String::new();
    // Parameters: extent params in first-use order.
    let mut params: Vec<&str> = Vec::new();
    for d in &kernel.dims {
        if let Extent::Param(p) = &d.extent {
            if !params.contains(&p.as_str()) {
                params.push(p);
            }
        }
    }
    let _ = writeln!(out, "kernel {}({}) {{", kernel.name, params.join(", "));
    let names = kernel.dim_names();
    let mut indent = String::from("  ");
    for dim in &kernel.dims {
        let seq = if dim.explicit_serial { "seq " } else { "" };
        let _ = writeln!(out, "{indent}for {seq}({}: {})", dim.name, dim.extent);
        indent.push_str("  ");
    }
    if kernel.stmts.len() > 1 {
        let _ = writeln!(out, "{indent}{{");
        for s in &kernel.stmts {
            let _ = writeln!(out, "{indent}  {}", pretty_stmt(s, &names));
        }
        let _ = writeln!(out, "{indent}}}");
    } else if let Some(s) = kernel.stmts.first() {
        let _ = writeln!(out, "{indent}{}", pretty_stmt(s, &names));
    }
    out.push_str("}\n");
    out
}

/// Renders one statement.
pub fn pretty_stmt(stmt: &Statement, names: &[String]) -> String {
    let op = if stmt.is_accumulation { "+=" } else { "=" };
    format!(
        "{} {} {};",
        stmt.write.display_with(names),
        op,
        rhs(&stmt.rhs, stmt, names)
    )
}

fn rhs(e: &RhsExpr, stmt: &Statement, names: &[String]) -> String {
    match e {
        RhsExpr::Num(v) => {
            if v.fract() == 0.0 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        RhsExpr::Ref(i) => stmt
            .reads
            .get(*i)
            .map(|r| r.display_with(names))
            .unwrap_or_else(|| "0.0".to_owned()),
        RhsExpr::Bin(op, a, b) => format!(
            "({} {op} {})",
            rhs(a, stmt, names),
            rhs(b, stmt, names)
        ),
        RhsExpr::Neg(a) => format!("(-{})", rhs(a, stmt, names)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip(src: &str) {
        let program = parse_program(src).expect("original parses");
        let printed = pretty_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed source fails to parse: {e}\n{printed}"));
        assert_eq!(reparsed, program, "round-trip mismatch for:\n{printed}");
    }

    #[test]
    fn roundtrip_matmul() {
        roundtrip(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        );
    }

    #[test]
    fn roundtrip_stencil_with_seq_and_offsets() {
        roundtrip(
            "kernel jac(T, N) {
               for seq (t: T) for (i: N) for (j: N)
                 B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1]);
             }",
        );
    }

    #[test]
    fn roundtrip_multi_kernel_multi_stmt() {
        roundtrip(
            "kernel a(N) {
               for (i: N) {
                 X[i] = Y[i] + 1.0;
                 Z[i] = X[i] * 2.0;
               }
             }
             kernel b(N, M) {
               for (i: N) for (j: M) W[i][j] += V[j][i] / 3.0;
             }",
        );
    }

    #[test]
    fn roundtrip_every_registered_shape() {
        // Coefficients, scalars, negation, constant extents.
        roundtrip("kernel s(N) { for (i: N) A[2*i+1] = -B[i] + alpha * C[3]; }");
        roundtrip("kernel c() { for (i: 64) A[i] = B[i]; }");
    }

    #[test]
    fn pretty_kernel_shape() {
        let p = parse_program(
            "kernel mm(M, N) { for (i: M) for (j: N) C[i][j] += A[i][j]; }",
        )
        .unwrap();
        let text = pretty_kernel(&p.kernels[0]);
        assert!(text.starts_with("kernel mm(M, N) {"));
        assert!(text.contains("for (i: M)"));
        assert!(text.contains("C[i][j] += A[i][j];"));
        assert!(text.trim_end().ends_with('}'));
    }
}
