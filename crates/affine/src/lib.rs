//! Affine-program intermediate representation and polyhedral-style
//! analyses for the EATSS reproduction (CGO 2024).
//!
//! This crate is the stand-in for the isl/pet front-end machinery the
//! paper's toolchain (PPCG) relies on. It provides:
//!
//! * an [`ir`] module with the affine loop-nest IR ([`Kernel`],
//!   [`Statement`], [`ArrayRef`], [`AffineExpr`]),
//! * a [`parser`] for a small affine-C dialect in which all benchmark
//!   kernels are declared,
//! * [`analysis`] passes: dependence-based loop parallelism (§IV-K "via
//!   dependence analysis ... loops are identified as parallel or serial"),
//!   access-pattern classification (Table II: CMA capability, temporal /
//!   spatial reuse), the CMA loop selection of §IV-D, the L1 / shared-memory
//!   reference split of §IV-E, distinct-cache-line reference counting
//!   (§IV-G) and the `H_i` objective weights of §IV-K,
//! * a [`tiling`] transformation producing the tiled nest PPCG would
//!   generate, used by the code generator and the GPU simulator,
//! * a reference [`interp`]reter giving the IR an executable semantics,
//!   which the test suite uses to prove that tiling is
//!   semantics-preserving,
//! * a [`pretty`]-printer that round-trips with the parser.
//!
//! # Examples
//!
//! ```
//! use eatss_affine::parser::parse_program;
//! use eatss_affine::analysis::parallel_dims;
//!
//! let src = "
//!     kernel matmul(M, N, P) {
//!       for (i: M) for (j: N) for (k: P)
//!         Out[i][j] += In[i][k] * Ker[k][j];
//!     }";
//! let program = parse_program(src)?;
//! let kernel = &program.kernels[0];
//! // i and j are parallel; k carries the reduction.
//! assert_eq!(parallel_dims(kernel), vec![true, true, false]);
//! # Ok::<(), eatss_affine::parser::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod interp;
pub mod ir;
pub mod parser;
pub mod plan;
pub mod pretty;
pub mod tiling;
pub mod transform;

pub use ir::{AffineExpr, ArrayRef, Extent, Kernel, LoopDim, ProblemSizes, Program, Statement};
