//! Compiled execution plans: the interpreter's fast path.
//!
//! [`ExecPlan::compile`] lowers a [`Kernel`] against a concrete
//! [`Store`] layout and iteration domain into a form with no per-point
//! interpretation overhead:
//!
//! * **Arrays → slots.** Every reference is resolved once to a dense
//!   slot index into the store (no string keys in the hot loop).
//! * **Subscripts → address functions.** A subscript list over
//!   row-major extents is an affine function of the iteration point, so
//!   each access lowers to a precomputed linear address function —
//!   constant base offset plus one stride per loop dimension. When
//!   interval analysis over the iteration domain proves every subscript
//!   in bounds, the access is a single dot product ([`Addr::Linear`]);
//!   otherwise per-subscript bounds checks are kept ([`Addr::Checked`]),
//!   preserving the interpreter's OOB conventions (reads 0, writes
//!   dropped) exactly.
//! * **RHS trees → opcode tapes.** Each statement's expression is
//!   flattened into a postfix [`Op`] tape evaluated over a fixed-size
//!   value stack — no recursion, no `Box` dispatch. Tape order equals
//!   the tree-walker's evaluation order, so reads happen in the same
//!   sequence (observable through routed reads).
//!
//! External executors (the `eatss-ppcg` GPU emulator) can pre-route
//! individual reads to a [`RouteSource`], resolving its
//! staged-shared-memory matching once at compile time instead of per
//! read per point. `RouteSource` is the compiled analogue of
//! [`ReadHook`](crate::interp::ReadHook).
//!
//! `compile` returns `None` for shapes outside the plan's fixed buffers
//! (rank above [`MAX_RANK`], expression stack deeper than [`MAX_STACK`],
//! stride overflow); callers fall back to the reference tree-walker.
//! The fast path is differentially tested bitwise against
//! [`interp::reference`](crate::interp::reference) over the whole
//! benchmark suite.

use crate::interp::{Store, MAX_RANK};
use crate::ir::{AffineExpr, ArrayRef, Kernel};
use std::sync::atomic::{AtomicBool, Ordering};

/// Maximum postfix value-stack depth a plan supports; deeper expressions
/// fall back to the reference interpreter.
pub const MAX_STACK: usize = 16;

/// Lanes of the chunked (SIMD-style) row loop.
pub const SIMD_LANES: usize = 4;

/// Runtime switch for the chunked row loop — differential tests flip it
/// to pin the vector path bitwise against the scalar one.
static SIMD_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables the chunked (SIMD-style) row loop globally.
///
/// The vector path is only ever taken where it is provably bitwise
/// identical to the scalar loop (see [`ExecPlan::exec_row`]), so this
/// switch can never change results — it exists so differential tests
/// can compare both paths on identical inputs.
pub fn set_simd_enabled(enabled: bool) {
    SIMD_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the chunked row loop is currently enabled.
pub fn simd_enabled() -> bool {
    SIMD_ENABLED.load(Ordering::Relaxed)
}

/// Compiled execution state shared across a *batch* of stores with one
/// slot layout: slot-resolved address functions and opcode tapes are
/// compiled once per kernel and reused for every store in the batch.
///
/// Built by [`BatchPlan::compile`](crate::interp) and driven by
/// [`run_program_batch`](crate::interp::run_program_batch); a store whose
/// layout diverges from the compile-time one silently falls back to the
/// per-store path, so sharing is purely a performance property.
#[derive(Debug, Default)]
pub struct BatchPlan {
    /// One entry per kernel: trip counts and the compiled plan (`None`
    /// when the kernel does not lower; the tree-walking reference runs
    /// instead).
    pub(crate) kernels: Vec<(Vec<i64>, Option<ExecPlan>)>,
    /// Layout fingerprint the plans were compiled against:
    /// `(array name, slot, extents)` in name order.
    pub(crate) layout: Vec<(String, usize, Vec<i64>)>,
}

/// A source for pre-routed reads (the compiled analogue of
/// [`ReadHook`](crate::interp::ReadHook)): `read` receives the route id
/// chosen at compile time and the evaluated subscript indices.
pub trait RouteSource {
    /// Produces the value of a routed read.
    fn read(&mut self, route: usize, index: &[i64]) -> f64;

    /// Offers a whole row to the source: `count` reads starting at the
    /// subscript vector `start`, advancing by `delta` per point. A source
    /// that can prove the whole row resolves within its buffer returns
    /// the starting flat offset and per-point flat delta; reads then go
    /// through [`RouteSource::read_flat`] with no per-point subscript
    /// work. Returning `None` (the default) keeps per-point
    /// [`RouteSource::read`] calls.
    fn row(&mut self, _route: usize, _start: &[i64], _delta: &[i64], _count: i64) -> Option<(i64, i64)> {
        None
    }

    /// Reads a pre-linearized flat offset produced by [`RouteSource::row`].
    fn read_flat(&mut self, _route: usize, _flat: i64) -> f64 {
        0.0
    }
}

/// The trivial route source for plans compiled without routing.
pub struct NoRoutes;

impl RouteSource for NoRoutes {
    fn read(&mut self, _route: usize, _index: &[i64]) -> f64 {
        0.0
    }
}

/// One postfix opcode.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push a literal.
    Num(f64),
    /// Push the value of read `i` (index into `StmtPlan::reads`).
    Read(u32),
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    /// Unknown binary operator: pop two, push NaN (the tree-walker
    /// evaluates both operands, then yields NaN).
    Nan,
}

/// A lowered affine index function: `Σ coeff·point[dim] + offset`.
#[derive(Debug, Clone)]
struct IndexFn {
    terms: Vec<(u32, i64)>,
    offset: i64,
}

impl IndexFn {
    fn lower(e: &AffineExpr) -> IndexFn {
        IndexFn {
            terms: e.terms().iter().map(|&(d, c)| (d as u32, c)).collect(),
            offset: e.offset(),
        }
    }

    /// The coefficient on `dim` (0 when absent).
    fn coeff(&self, dim: usize) -> i64 {
        self.terms
            .iter()
            .find(|&&(d, _)| d as usize == dim)
            .map_or(0, |&(_, c)| c)
    }

    #[inline]
    fn eval(&self, point: &[i64]) -> i64 {
        let mut v = self.offset;
        for &(d, c) in &self.terms {
            v += c * point[d as usize];
        }
        v
    }

    /// Value interval over the iteration domain `0 ≤ point[d] < trips[d]`.
    /// `None` when a term's dimension lies outside the domain.
    fn range(&self, trips: &[i64]) -> Option<(i64, i64)> {
        let (mut lo, mut hi) = (self.offset, self.offset);
        for &(d, c) in &self.terms {
            let max = *trips.get(d as usize)? - 1;
            if c >= 0 {
                hi += c * max;
            } else {
                lo += c * max;
            }
        }
        Some((lo, hi))
    }
}

/// One subscript of a checked access: index function, extent to check
/// against, and the row-major stride it contributes.
#[derive(Debug, Clone)]
struct SubPlan {
    index: IndexFn,
    extent: i64,
    stride: i64,
}

/// A lowered array access.
#[derive(Debug, Clone)]
enum Addr {
    /// Proven in bounds: `flat = base + Σ stride·point[dim]`.
    Linear {
        slot: u32,
        base: i64,
        terms: Vec<(u32, i64)>,
    },
    /// Per-subscript bounds checks, then stride combination. Any failing
    /// check reads 0 / drops the write.
    Checked { slot: u32, subs: Vec<SubPlan> },
    /// Pre-routed to a [`RouteSource`] (never used for writes).
    Routed { route: u32, subs: Vec<IndexFn> },
    /// Statically resolved to a miss (absent array, rank mismatch):
    /// reads 0, writes dropped.
    Miss,
}

/// One lowered statement: opcode tape, lowered reads, lowered write.
#[derive(Debug, Clone)]
struct StmtPlan {
    tape: Vec<Op>,
    reads: Vec<Addr>,
    write: Addr,
    accumulate: bool,
    /// The tape is exactly `read(0) · read(1)` accumulated into the
    /// write — the dominant PolyBench statement shape, fused into a
    /// dedicated row loop.
    mul_acc: bool,
}

/// A kernel compiled against a store layout and iteration domain. See
/// the module docs.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    stmts: Vec<StmtPlan>,
}

/// Reusable scratch for [`ExecPlan::exec_row`]: one `(flat, delta)`
/// cursor per lowered access. Create once per kernel launch with
/// [`ExecPlan::scratch`] and reuse across rows — row setup then costs
/// one dot product per access instead of one per access *per point*.
#[derive(Debug, Clone, Default)]
pub struct RowScratch {
    stmts: Vec<StmtScratch>,
}

#[derive(Debug, Clone)]
struct StmtScratch {
    reads: Vec<RowCursor>,
    write: (i64, i64),
}

/// One access's incremental state along a row. `direct` marks cursors
/// whose flat offset is valid for the whole row — linear store accesses,
/// and routed reads the [`RouteSource`] linearized via
/// [`RouteSource::row`]. Everything else is recomputed per point.
#[derive(Debug, Clone, Copy, Default)]
struct RowCursor {
    flat: i64,
    delta: i64,
    direct: bool,
}

impl ExecPlan {
    /// Compiles `kernel` for the iteration domain `0 ≤ point[d] <
    /// trips[d]` against the array layout currently in `store`.
    ///
    /// The plan is only valid while the store keeps those layouts:
    /// replacing an array with different extents invalidates it.
    /// Returns `None` for shapes beyond the plan's fixed buffers — the
    /// caller falls back to the reference interpreter.
    pub fn compile(kernel: &Kernel, trips: &[i64], store: &Store) -> Option<ExecPlan> {
        ExecPlan::compile_routed(kernel, trips, store, |_| None)
    }

    /// Like [`ExecPlan::compile`], but each read is first offered to
    /// `router`: returning `Some(route)` lowers the read to that route
    /// id of the executor's [`RouteSource`] instead of a store access.
    /// Writes are never routed.
    pub fn compile_routed(
        kernel: &Kernel,
        trips: &[i64],
        store: &Store,
        mut router: impl FnMut(&ArrayRef) -> Option<usize>,
    ) -> Option<ExecPlan> {
        let _span = eatss_trace::span("pipeline", "plan_compile");
        if trips.iter().any(|&t| t <= 0) {
            return None;
        }
        let mut stmts = Vec::with_capacity(kernel.stmts.len());
        for stmt in &kernel.stmts {
            let mut tape = Vec::new();
            lower_expr(&stmt.rhs, &mut tape);
            if tape_stack_depth(&tape)? > MAX_STACK {
                return None;
            }
            let reads = stmt
                .reads
                .iter()
                .map(|r| lower_access(r, trips, store, router(r)))
                .collect::<Option<Vec<_>>>()?;
            let write = lower_access(&stmt.write, trips, store, None)?;
            let mul_acc = stmt.is_accumulation
                && matches!(tape.as_slice(), [Op::Read(0), Op::Read(1), Op::Mul]);
            stmts.push(StmtPlan {
                tape,
                reads,
                write,
                accumulate: stmt.is_accumulation,
                mul_acc,
            });
        }
        eatss_trace::counter_add("exec.plan_compiles", 1);
        Some(ExecPlan { stmts })
    }

    /// Executes every statement at one iteration point, in textual
    /// order — the compiled equivalent of
    /// [`interp::exec_point`](crate::interp::exec_point).
    pub fn exec_point(&self, store: &mut Store, point: &[i64]) {
        self.exec_point_routed(store, point, &mut NoRoutes);
    }

    /// Creates the row-execution scratch sized for this plan.
    pub fn scratch(&self) -> RowScratch {
        RowScratch {
            stmts: self
                .stmts
                .iter()
                .map(|s| StmtScratch {
                    reads: vec![RowCursor::default(); s.reads.len()],
                    write: (0, 0),
                })
                .collect(),
        }
    }

    /// Executes `count` iteration points along `dim`, starting from the
    /// current `point` and stepping by `step` — bit-for-bit equivalent
    /// to `count` calls to [`ExecPlan::exec_point`], but every
    /// [`Addr::Linear`] address is resolved once at row entry and then
    /// advanced incrementally by `step × stride` per point.
    ///
    /// `point[dim]` is clobbered (it tracks the row for checked and
    /// routed accesses); every other coordinate is left untouched.
    pub fn exec_row(
        &self,
        store: &mut Store,
        point: &mut [i64],
        dim: usize,
        count: i64,
        step: i64,
        scratch: &mut RowScratch,
    ) {
        self.exec_row_routed(store, point, dim, count, step, scratch, &mut NoRoutes);
    }

    /// Like [`ExecPlan::exec_row`], with routed reads served by `routes`.
    #[allow(clippy::too_many_arguments)]
    pub fn exec_row_routed(
        &self,
        store: &mut Store,
        point: &mut [i64],
        dim: usize,
        count: i64,
        step: i64,
        scratch: &mut RowScratch,
        routes: &mut impl RouteSource,
    ) {
        if count <= 0 {
            return;
        }
        // Checked subscripts are linear in the row variable, so each
        // one's in-bounds region is a contiguous interval of points;
        // `dlo..dhi` is the intersection over every checked read. Inside
        // it the checked cursors become direct flat walks, and only the
        // edge points pay the per-point bounds checks.
        let mut dlo = 0i64;
        let mut dhi = count;
        let mut has_checked = false;
        for (stmt, sc) in self.stmts.iter().zip(&mut scratch.stmts) {
            for (read, cursor) in stmt.reads.iter().zip(&mut sc.reads) {
                *cursor = match read {
                    Addr::Linear { base, terms, .. } => {
                        let (flat, delta) = row_cursor(*base, terms, point, dim, step);
                        RowCursor { flat, delta, direct: true }
                    }
                    Addr::Checked { subs, .. } => {
                        has_checked = true;
                        let mut flat = 0i64;
                        let mut delta = 0i64;
                        for sub in subs {
                            let s = sub.index.eval(point);
                            let d = step * sub.index.coeff(dim);
                            flat = flat.wrapping_add(s.wrapping_mul(sub.stride));
                            delta = delta.wrapping_add(d.wrapping_mul(sub.stride));
                            let (lo, hi) = inbounds_interval(s, d, sub.extent, count);
                            dlo = dlo.max(lo);
                            dhi = dhi.min(hi);
                        }
                        RowCursor { flat, delta, direct: false }
                    }
                    Addr::Routed { route, subs } => {
                        let mut start = [0i64; MAX_RANK];
                        let mut delta = [0i64; MAX_RANK];
                        for (p, s) in subs.iter().enumerate() {
                            start[p] = s.eval(point);
                            delta[p] = step * s.coeff(dim);
                        }
                        match routes.row(*route as usize, &start[..subs.len()], &delta[..subs.len()], count) {
                            Some((flat, delta)) => RowCursor { flat, delta, direct: true },
                            None => RowCursor::default(),
                        }
                    }
                    Addr::Miss => RowCursor::default(),
                };
            }
            sc.write = match &stmt.write {
                Addr::Linear { base, terms, .. } => row_cursor(*base, terms, point, dim, step),
                _ => (0, 0),
            };
        }
        if !has_checked {
            self.run_row_body(store, point, dim, count, step, scratch, routes);
            return;
        }
        let dhi = dhi.clamp(0, count);
        let dlo = dlo.clamp(0, dhi);
        if dlo > 0 {
            self.run_row_body(store, point, dim, dlo, step, scratch, routes);
        }
        if dhi > dlo {
            self.set_checked_direct(scratch, true);
            self.run_row_body(store, point, dim, dhi - dlo, step, scratch, routes);
            self.set_checked_direct(scratch, false);
        }
        if count > dhi {
            self.run_row_body(store, point, dim, count - dhi, step, scratch, routes);
        }
    }

    /// Marks every checked-read cursor (in)valid for direct flat reads —
    /// flipped around the in-bounds segment of a row.
    fn set_checked_direct(&self, scratch: &mut RowScratch, direct: bool) {
        for (stmt, sc) in self.stmts.iter().zip(&mut scratch.stmts) {
            for (read, cursor) in stmt.reads.iter().zip(&mut sc.reads) {
                if matches!(read, Addr::Checked { .. }) {
                    cursor.direct = direct;
                }
            }
        }
    }

    /// Executes `count` points of a row whose cursors are already set,
    /// leaving every cursor and `point[dim]` advanced past the segment.
    #[allow(clippy::too_many_arguments)]
    fn run_row_body(
        &self,
        store: &mut Store,
        point: &mut [i64],
        dim: usize,
        count: i64,
        step: i64,
        scratch: &mut RowScratch,
        routes: &mut impl RouteSource,
    ) {
        // Chunked (SIMD-style) path: rows where bitwise identity with the
        // scalar loops is provable run in [`SIMD_LANES`]-wide chunks; the
        // scalar loops below take the tail, continuing from the advanced
        // cursors.
        let mut count = count;
        if simd_enabled() && count >= SIMD_LANES as i64 {
            if let Some(wslot) = self.simd_eligible(scratch) {
                let chunks = count / SIMD_LANES as i64;
                self.run_row_simd(store, scratch, chunks, wslot);
                let done = chunks * SIMD_LANES as i64;
                point[dim] += step * done;
                count -= done;
                if count == 0 {
                    return;
                }
            }
        }
        // Fused fast path for the dominant single-statement shape
        // `W += R0 * R1` with every address resolved to a direct cursor:
        // no tape dispatch, no stack, no per-point write resolution.
        if self.stmts.len() == 1 {
            let stmt = &self.stmts[0];
            let sc = &mut scratch.stmts[0];
            if stmt.mul_acc
                && matches!(stmt.write, Addr::Linear { .. })
                && sc.reads.iter().all(|c| c.direct)
            {
                let Addr::Linear { slot: wslot, .. } = stmt.write else {
                    unreachable!("guarded by the matches! above")
                };
                if sc.write.1 == 0 {
                    // The write cell is fixed along the row (a reduction,
                    // e.g. `C[i][j] += A[i][k]·B[k][j]` rowed over `k`):
                    // accumulate in a register and store once. Identical
                    // rounding — the adds happen in the same order.
                    enum Rd<'a> {
                        Slice(&'a [f64]),
                        Route(usize),
                    }
                    let resolve = |addr: &Addr| match addr {
                        Addr::Linear { slot, .. } | Addr::Checked { slot, .. } => {
                            Rd::Slice(store.slot_array(*slot as usize).data())
                        }
                        Addr::Routed { route, .. } => Rd::Route(*route as usize),
                        Addr::Miss => unreachable!("non-direct cursors are excluded above"),
                    };
                    let r0 = resolve(&stmt.reads[0]);
                    let r1 = resolve(&stmt.reads[1]);
                    let (mut fa, da) = (sc.reads[0].flat, sc.reads[0].delta);
                    let (mut fb, db) = (sc.reads[1].flat, sc.reads[1].delta);
                    let wflat = sc.write.0 as usize;
                    let mut acc = store.slot_array(wslot as usize).data()[wflat];
                    for _ in 0..count {
                        let a = match &r0 {
                            Rd::Slice(d) => d[fa as usize],
                            Rd::Route(r) => routes.read_flat(*r, fa),
                        };
                        let b = match &r1 {
                            Rd::Slice(d) => d[fb as usize],
                            Rd::Route(r) => routes.read_flat(*r, fb),
                        };
                        acc += a * b;
                        fa = fa.wrapping_add(da);
                        fb = fb.wrapping_add(db);
                    }
                    store.slot_array_mut(wslot as usize).data_mut()[wflat] = acc;
                    // Persist the cursor advance — a split row's next
                    // segment continues from these.
                    sc.reads[0].flat = fa;
                    sc.reads[1].flat = fb;
                    point[dim] += step * count;
                    return;
                }
                for _ in 0..count {
                    let a = direct_val(&stmt.reads[0], &sc.reads[0], store, routes);
                    let b = direct_val(&stmt.reads[1], &sc.reads[1], store, routes);
                    let cell =
                        &mut store.slot_array_mut(wslot as usize).data_mut()[sc.write.0 as usize];
                    *cell += a * b;
                    for cursor in &mut sc.reads {
                        cursor.flat = cursor.flat.wrapping_add(cursor.delta);
                    }
                    sc.write.0 = sc.write.0.wrapping_add(sc.write.1);
                }
                point[dim] += step * count;
                return;
            }
        }
        let mut stack = [0.0f64; MAX_STACK];
        for _ in 0..count {
            for (stmt, sc) in self.stmts.iter().zip(&mut scratch.stmts) {
                let mut top = 0usize;
                for op in &stmt.tape {
                    match *op {
                        Op::Num(v) => {
                            stack[top] = v;
                            top += 1;
                        }
                        Op::Read(i) => {
                            let i = i as usize;
                            stack[top] = match &stmt.reads[i] {
                                Addr::Linear { slot, .. } => {
                                    store.slot_array(*slot as usize).data()[sc.reads[i].flat as usize]
                                }
                                Addr::Checked { slot, .. } if sc.reads[i].direct => {
                                    store.slot_array(*slot as usize).data()[sc.reads[i].flat as usize]
                                }
                                Addr::Routed { route, .. } if sc.reads[i].direct => {
                                    routes.read_flat(*route as usize, sc.reads[i].flat)
                                }
                                other => read_addr(other, store, point, routes),
                            };
                            top += 1;
                        }
                        Op::Add => {
                            top -= 1;
                            stack[top - 1] += stack[top];
                        }
                        Op::Sub => {
                            top -= 1;
                            stack[top - 1] -= stack[top];
                        }
                        Op::Mul => {
                            top -= 1;
                            stack[top - 1] *= stack[top];
                        }
                        Op::Div => {
                            top -= 1;
                            stack[top - 1] /= stack[top];
                        }
                        Op::Neg => stack[top - 1] = -stack[top - 1],
                        Op::Nan => {
                            top -= 1;
                            stack[top - 1] = f64::NAN;
                        }
                    }
                }
                let value = stack[0];
                match &stmt.write {
                    Addr::Linear { slot, .. } => {
                        let cell =
                            &mut store.slot_array_mut(*slot as usize).data_mut()[sc.write.0 as usize];
                        if stmt.accumulate {
                            *cell += value;
                        } else {
                            *cell = value;
                        }
                    }
                    other => {
                        if let Some((slot, flat)) = resolve_write(other, point) {
                            let data = store.slot_array_mut(slot as usize).data_mut();
                            match data.get_mut(flat) {
                                Some(cell) if stmt.accumulate => *cell += value,
                                Some(cell) => *cell = value,
                                None => {}
                            }
                        }
                    }
                }
                // Advance every cursor once per point. The add past the
                // final point may leave a flat one row outside the array;
                // it is never dereferenced, so wrap instead of trapping.
                for cursor in &mut sc.reads {
                    cursor.flat = cursor.flat.wrapping_add(cursor.delta);
                }
                sc.write.0 = sc.write.0.wrapping_add(sc.write.1);
            }
            point[dim] += step;
        }
    }

    /// Whether the row in flight may take the chunked lane loop with
    /// provable bitwise identity to the scalar loops: a single statement
    /// whose write walks a *distinct* linear cell per point (row delta
    /// ≠ 0), with every read a direct cursor into a store slot other
    /// than the written one. Distinct write cells mean lanes never race;
    /// slot disjointness means no point can observe another point's
    /// write; direct store-backed cursors mean each lane performs
    /// exactly the scalar op sequence on exactly the scalar operands.
    /// Fixed-cell reductions (write delta 0) are deliberately excluded —
    /// reassociating the accumulation would change rounding — as are
    /// routed reads, whose sources may be stateful.
    fn simd_eligible(&self, scratch: &RowScratch) -> Option<u32> {
        if self.stmts.len() != 1 {
            return None;
        }
        let stmt = &self.stmts[0];
        let sc = &scratch.stmts[0];
        let Addr::Linear { slot: wslot, .. } = stmt.write else {
            return None;
        };
        if sc.write.1 == 0 || !sc.reads.iter().all(|c| c.direct) {
            return None;
        }
        let disjoint = stmt.reads.iter().all(|r| match r {
            Addr::Linear { slot, .. } | Addr::Checked { slot, .. } => *slot != wslot,
            Addr::Routed { .. } | Addr::Miss => false,
        });
        disjoint.then_some(wslot)
    }

    /// Executes `chunks × SIMD_LANES` points of a row admitted by
    /// [`ExecPlan::simd_eligible`], evaluating the opcode tape on a
    /// stack of [`SIMD_LANES`]-wide value vectors. Each lane applies the
    /// scalar op sequence to the scalar operands of its point, and the
    /// written cells are pairwise distinct and unobserved by any read,
    /// so the result is bitwise identical to the scalar loop. Cursors
    /// are left advanced past the chunks; `point[dim]` is advanced by
    /// the caller (no checked or routed access remains that needs it).
    fn run_row_simd(&self, store: &mut Store, scratch: &mut RowScratch, chunks: i64, wslot: u32) {
        const L: usize = SIMD_LANES;
        let stmt = &self.stmts[0];
        let sc = &mut scratch.stmts[0];
        let mut stack = [[0.0f64; L]; MAX_STACK];
        for _ in 0..chunks {
            let mut top = 0usize;
            for op in &stmt.tape {
                match *op {
                    Op::Num(v) => {
                        stack[top] = [v; L];
                        top += 1;
                    }
                    Op::Read(i) => {
                        let i = i as usize;
                        let slot = match &stmt.reads[i] {
                            Addr::Linear { slot, .. } | Addr::Checked { slot, .. } => *slot,
                            _ => unreachable!("simd_eligible admits only slot-backed reads"),
                        };
                        let data = store.slot_array(slot as usize).data();
                        let (f, d) = (sc.reads[i].flat, sc.reads[i].delta);
                        for (lane, v) in stack[top].iter_mut().enumerate() {
                            *v = data[f.wrapping_add(d.wrapping_mul(lane as i64)) as usize];
                        }
                        top += 1;
                    }
                    Op::Add => {
                        top -= 1;
                        let rhs = stack[top];
                        for (v, r) in stack[top - 1].iter_mut().zip(rhs) {
                            *v += r;
                        }
                    }
                    Op::Sub => {
                        top -= 1;
                        let rhs = stack[top];
                        for (v, r) in stack[top - 1].iter_mut().zip(rhs) {
                            *v -= r;
                        }
                    }
                    Op::Mul => {
                        top -= 1;
                        let rhs = stack[top];
                        for (v, r) in stack[top - 1].iter_mut().zip(rhs) {
                            *v *= r;
                        }
                    }
                    Op::Div => {
                        top -= 1;
                        let rhs = stack[top];
                        for (v, r) in stack[top - 1].iter_mut().zip(rhs) {
                            *v /= r;
                        }
                    }
                    Op::Neg => {
                        for v in stack[top - 1].iter_mut() {
                            *v = -*v;
                        }
                    }
                    Op::Nan => {
                        top -= 1;
                        stack[top - 1] = [f64::NAN; L];
                    }
                }
            }
            let vals = stack[0];
            let (wf, wd) = (sc.write.0, sc.write.1);
            let data = store.slot_array_mut(wslot as usize).data_mut();
            for (lane, v) in vals.iter().enumerate() {
                let cell = &mut data[wf.wrapping_add(wd.wrapping_mul(lane as i64)) as usize];
                if stmt.accumulate {
                    *cell += *v;
                } else {
                    *cell = *v;
                }
            }
            for cursor in &mut sc.reads {
                cursor.flat = cursor.flat.wrapping_add(cursor.delta.wrapping_mul(L as i64));
            }
            sc.write.0 = sc.write.0.wrapping_add(sc.write.1.wrapping_mul(L as i64));
        }
    }

    /// Like [`ExecPlan::exec_point`], with routed reads served by
    /// `routes` — the compiled equivalent of
    /// [`interp::exec_point_hooked`](crate::interp::exec_point_hooked).
    pub fn exec_point_routed(
        &self,
        store: &mut Store,
        point: &[i64],
        routes: &mut impl RouteSource,
    ) {
        for stmt in &self.stmts {
            let mut stack = [0.0f64; MAX_STACK];
            let mut top = 0usize;
            for op in &stmt.tape {
                match *op {
                    Op::Num(v) => {
                        stack[top] = v;
                        top += 1;
                    }
                    Op::Read(i) => {
                        stack[top] = read_addr(&stmt.reads[i as usize], store, point, routes);
                        top += 1;
                    }
                    Op::Add => {
                        top -= 1;
                        stack[top - 1] += stack[top];
                    }
                    Op::Sub => {
                        top -= 1;
                        stack[top - 1] -= stack[top];
                    }
                    Op::Mul => {
                        top -= 1;
                        stack[top - 1] *= stack[top];
                    }
                    Op::Div => {
                        top -= 1;
                        stack[top - 1] /= stack[top];
                    }
                    Op::Neg => stack[top - 1] = -stack[top - 1],
                    Op::Nan => {
                        top -= 1;
                        stack[top - 1] = f64::NAN;
                    }
                }
            }
            let value = stack[0];
            let (slot, flat) = match resolve_write(&stmt.write, point) {
                Some(loc) => loc,
                None => continue,
            };
            let data = store.slot_array_mut(slot as usize).data_mut();
            match data.get_mut(flat) {
                Some(cell) if stmt.accumulate => *cell += value,
                Some(cell) => *cell = value,
                None => {}
            }
        }
    }
}

/// Flattens an RHS tree to postfix (left operand first, matching the
/// tree-walker's evaluation order).
fn lower_expr(e: &crate::ir::RhsExpr, tape: &mut Vec<Op>) {
    use crate::ir::RhsExpr;
    match e {
        RhsExpr::Num(v) => tape.push(Op::Num(*v)),
        RhsExpr::Ref(i) => tape.push(Op::Read(*i as u32)),
        RhsExpr::Bin(op, a, b) => {
            lower_expr(a, tape);
            lower_expr(b, tape);
            tape.push(match op {
                '+' => Op::Add,
                '-' => Op::Sub,
                '*' => Op::Mul,
                '/' => Op::Div,
                _ => Op::Nan,
            });
        }
        RhsExpr::Neg(a) => {
            lower_expr(a, tape);
            tape.push(Op::Neg);
        }
    }
}

/// Maximum value-stack depth the tape reaches (`None` on malformed
/// tapes, which `lower_expr` never produces).
fn tape_stack_depth(tape: &[Op]) -> Option<usize> {
    let mut depth = 0usize;
    let mut max = 0usize;
    for op in tape {
        match op {
            Op::Num(_) | Op::Read(_) => depth += 1,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Nan => depth = depth.checked_sub(1)?,
            Op::Neg => {}
        }
        max = max.max(depth);
    }
    Some(max)
}

fn lower_access(r: &ArrayRef, trips: &[i64], store: &Store, route: Option<usize>) -> Option<Addr> {
    if r.subscripts.len() > MAX_RANK || trips.len() > MAX_RANK {
        return None;
    }
    if let Some(route) = route {
        return Some(Addr::Routed {
            route: route as u32,
            subs: r.subscripts.iter().map(IndexFn::lower).collect(),
        });
    }
    let slot = match store.slot(&r.array) {
        Some(slot) => slot as u32,
        None => return Some(Addr::Miss),
    };
    let extents = store.slot_array(slot as usize).extents();
    if r.subscripts.is_empty() {
        // Scalar access convention: index `[0]` — a hit only on rank-1
        // arrays, a miss otherwise (matching `Array::get(&[0])`).
        return Some(if extents.len() == 1 {
            Addr::Linear {
                slot,
                base: 0,
                terms: Vec::new(),
            }
        } else {
            Addr::Miss
        });
    }
    if r.subscripts.len() != extents.len() {
        return Some(Addr::Miss);
    }
    // Row-major strides; overflow means the layout is beyond what the
    // plan's i64 address arithmetic can promise, so bail to reference.
    let mut strides = vec![1i64; extents.len()];
    for p in (0..extents.len().saturating_sub(1)).rev() {
        strides[p] = strides[p + 1].checked_mul(extents[p + 1])?;
    }
    let mut subs = Vec::with_capacity(r.subscripts.len());
    let mut in_bounds = true;
    for (p, s) in r.subscripts.iter().enumerate() {
        let index = IndexFn::lower(s);
        match index.range(trips) {
            Some((lo, hi)) if lo >= 0 && hi < extents[p] => {}
            _ => in_bounds = false,
        }
        subs.push(SubPlan {
            index,
            extent: extents[p],
            stride: strides[p],
        });
    }
    if !in_bounds {
        return Some(Addr::Checked { slot, subs });
    }
    // Every subscript is proven in bounds over the domain: fold the
    // per-subscript functions into one linear address function.
    let mut base = 0i64;
    let mut dim_strides = vec![0i64; trips.len()];
    for sub in &subs {
        base = base.checked_add(sub.index.offset.checked_mul(sub.stride)?)?;
        for &(d, c) in &sub.index.terms {
            let add = c.checked_mul(sub.stride)?;
            let slot = &mut dim_strides[d as usize];
            *slot = slot.checked_add(add)?;
        }
    }
    Some(Addr::Linear {
        slot,
        base,
        terms: dim_strides
            .into_iter()
            .enumerate()
            .filter(|&(_, s)| s != 0)
            .map(|(d, s)| (d as u32, s))
            .collect(),
    })
}

/// Reads through a direct row cursor (linear store access or a routed
/// read the source linearized).
#[inline]
fn direct_val(addr: &Addr, cur: &RowCursor, store: &Store, routes: &mut impl RouteSource) -> f64 {
    match addr {
        Addr::Linear { slot, .. } | Addr::Checked { slot, .. } => {
            store.slot_array(*slot as usize).data()[cur.flat as usize]
        }
        Addr::Routed { route, .. } => routes.read_flat(*route as usize, cur.flat),
        Addr::Miss => 0.0,
    }
}

/// The contiguous point interval `[lo, hi)` of a `count`-long row on
/// which the subscript value `s + p·d` stays inside `[0, extent)`.
#[inline]
fn inbounds_interval(s: i64, d: i64, extent: i64, count: i64) -> (i64, i64) {
    if d == 0 {
        return if s >= 0 && s < extent { (0, count) } else { (0, 0) };
    }
    // Normalize to a positive slope (negate the value and its bounds),
    // then `p ≥ ⌈(min_v - s)/d⌉` and `p ≤ ⌊(max_v - s)/d⌋`.
    let (s, d, min_v, max_v) = if d > 0 {
        (s, d, 0, extent - 1)
    } else {
        (-s, -d, 1 - extent, 0)
    };
    let lo = -(s - min_v).div_euclid(d);
    let hi = (max_v - s).div_euclid(d) + 1;
    (lo.max(0), hi.min(count))
}

/// Resolves a linear address at the row's start point and its per-point
/// delta along `dim` (`step × stride`).
#[inline]
fn row_cursor(base: i64, terms: &[(u32, i64)], point: &[i64], dim: usize, step: i64) -> (i64, i64) {
    let mut flat = base;
    let mut delta = 0i64;
    for &(d, c) in terms {
        flat += c * point[d as usize];
        if d as usize == dim {
            delta += c * step;
        }
    }
    (flat, delta)
}

#[inline]
fn read_addr(
    addr: &Addr,
    store: &Store,
    point: &[i64],
    routes: &mut impl RouteSource,
) -> f64 {
    match addr {
        Addr::Linear { slot, base, terms } => {
            let mut flat = *base;
            for &(d, c) in terms {
                flat += c * point[d as usize];
            }
            store.slot_array(*slot as usize).data()[flat as usize]
        }
        Addr::Checked { slot, subs } => match checked_flat(subs, point) {
            Some(flat) => store.slot_array(*slot as usize).data()[flat],
            None => 0.0,
        },
        Addr::Routed { route, subs } => {
            let mut idx = [0i64; MAX_RANK];
            for (slot, s) in idx.iter_mut().zip(subs) {
                *slot = s.eval(point);
            }
            routes.read(*route as usize, &idx[..subs.len()])
        }
        Addr::Miss => 0.0,
    }
}

#[inline]
fn checked_flat(subs: &[SubPlan], point: &[i64]) -> Option<usize> {
    let mut flat = 0i64;
    for sub in subs {
        let v = sub.index.eval(point);
        if v < 0 || v >= sub.extent {
            return None;
        }
        flat += v * sub.stride;
    }
    Some(flat as usize)
}

#[inline]
fn resolve_write(addr: &Addr, point: &[i64]) -> Option<(u32, usize)> {
    match addr {
        Addr::Linear { slot, base, terms } => {
            let mut flat = *base;
            for &(d, c) in terms {
                flat += c * point[d as usize];
            }
            Some((*slot, flat as usize))
        }
        Addr::Checked { slot, subs } => Some((*slot, checked_flat(subs, point)?)),
        Addr::Routed { .. } | Addr::Miss => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{compare_stores, reference, Array};
    use crate::parser::parse_program;
    use crate::ProblemSizes;

    fn run_both(src: &str, sizes: &[(&str, i64)], seed_arrays: &[(&str, Vec<i64>)]) {
        let p = parse_program(src).unwrap();
        let sizes = ProblemSizes::new(sizes.iter().map(|&(n, v)| (n, v)));
        let init = |store: &mut Store| {
            store.allocate_for(&p, &sizes).unwrap();
            for (name, extents) in seed_arrays {
                store.insert(
                    *name,
                    Array::from_fn(extents.clone(), |i| {
                        let mut h = 7i64;
                        for &v in i {
                            h = h.wrapping_mul(31).wrapping_add(v);
                        }
                        ((h % 7) - 3) as f64
                    }),
                );
            }
        };
        let mut fast = Store::new();
        init(&mut fast);
        crate::interp::run_program(&p, &sizes, &mut fast).unwrap();
        let mut slow = Store::new();
        init(&mut slow);
        reference::run_program(&p, &sizes, &mut slow).unwrap();
        let mismatches = compare_stores(&fast, &slow);
        assert!(mismatches.is_empty(), "plan != reference: {mismatches:?}");
    }

    #[test]
    fn plan_matches_reference_on_in_bounds_accesses() {
        run_both(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
            &[("M", 5), ("N", 6), ("P", 7)],
            &[("A", vec![5, 7]), ("B", vec![7, 6])],
        );
    }

    #[test]
    fn plan_matches_reference_on_halo_accesses() {
        // A is allocated with halo extents by `allocate_for`, so the
        // i-1/i+1 accesses are proven in bounds; B is seeded tight, so
        // the write is bounds-checked. Both modes must match reference.
        run_both(
            "kernel s(N) {
               for (i: N) B[i] = 0.5 * (A[i-1] + A[i+1]) - A[i] / 3.0;
             }",
            &[("N", 9)],
            &[("B", vec![9])],
        );
    }

    #[test]
    fn plan_matches_reference_on_scalars_and_missing_arrays() {
        run_both(
            "kernel ax(N) { for (i: N) y[i] = alpha * x[i] + ghost[i]; }",
            &[("N", 6)],
            &[("alpha", vec![1]), ("x", vec![6])],
        );
    }

    #[test]
    fn checked_access_reads_zero_and_drops_writes() {
        // Force out-of-bounds on both sides: the store arrays are
        // smaller than the domain.
        let p = parse_program("kernel w(N) { for (i: N) B[i] = A[i] + 1.0; }").unwrap();
        let sizes = ProblemSizes::new([("N", 8)]);
        let init = |store: &mut Store| {
            store.insert("A", Array::from_fn(vec![3], |i| i[0] as f64));
            store.insert("B", Array::zeros(vec![4]));
        };
        let mut fast = Store::new();
        init(&mut fast);
        crate::interp::run_program(&p, &sizes, &mut fast).unwrap();
        let mut slow = Store::new();
        init(&mut slow);
        reference::run_program(&p, &sizes, &mut slow).unwrap();
        assert!(compare_stores(&fast, &slow).is_empty());
        let b = fast.get("B").unwrap();
        assert_eq!(b.get(&[2]), 3.0);
        assert_eq!(b.get(&[3]), 1.0, "A[3] is OOB and reads zero");
    }

    #[test]
    fn routed_reads_reach_the_route_source() {
        struct Fixed(f64, Vec<(usize, Vec<i64>)>);
        impl RouteSource for Fixed {
            fn read(&mut self, route: usize, index: &[i64]) -> f64 {
                self.1.push((route, index.to_vec()));
                self.0
            }
        }
        let p = parse_program("kernel r(N) { for (i: N) B[i] = A[i+1] * 2.0; }").unwrap();
        let kernel = &p.kernels[0];
        let mut store = Store::new();
        store.insert("A", Array::zeros(vec![8]));
        store.insert("B", Array::zeros(vec![8]));
        let plan = ExecPlan::compile_routed(kernel, &[4], &store, |r| {
            (r.array == "A").then_some(3)
        })
        .unwrap();
        let mut routes = Fixed(5.0, Vec::new());
        plan.exec_point_routed(&mut store, &[2], &mut routes);
        assert_eq!(routes.1, vec![(3, vec![3])], "route id + evaluated index");
        assert_eq!(store.get("B").unwrap().get(&[2]), 10.0);
    }

    /// Serializes `set_simd_enabled` flips — the flag is global, and the
    /// comparisons below are only meaningful while it holds still.
    static SIMD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Runs the plan-backed interpreter with the chunked row loop forced
    /// on or off, returning the resulting store. Arrays are seeded with
    /// the same irregular values as [`run_both`]; the division in the
    /// sources below makes them inexact, so any reordering would show.
    fn run_fast(src: &str, n: i64, arrays: &[&str], simd: bool) -> Store {
        let p = parse_program(src).unwrap();
        let sizes = ProblemSizes::new([("N", n)]);
        let mut store = Store::new();
        store.allocate_for(&p, &sizes).unwrap();
        for name in arrays {
            store.insert(
                *name,
                Array::from_fn(vec![n], |i| {
                    ((i[0].wrapping_mul(31) % 7) - 3) as f64 / 3.0
                }),
            );
        }
        set_simd_enabled(simd);
        let result = crate::interp::run_program(&p, &sizes, &mut store);
        set_simd_enabled(true);
        result.unwrap();
        store
    }

    /// The chunked row loop is bitwise identical to the scalar loop on
    /// direct-assign and moving-cell accumulation rows, across every row
    /// length from a pure tail (shorter than a lane) through exact
    /// chunks to chunk-plus-tail.
    #[test]
    fn simd_rows_match_scalar_rows_including_short_tails() {
        let _guard = SIMD_LOCK.lock().unwrap();
        let src = "kernel s(N) { for (i: N) B[i] = 0.5 * A[i] - C[i] / 3.0; }
                   kernel m(N) { for (i: N) W[i] += A[i] * C[i]; }";
        for n in 1..=11 {
            let vector = run_fast(src, n, &["A", "C"], true);
            let scalar = run_fast(src, n, &["A", "C"], false);
            let mismatches = compare_stores(&vector, &scalar);
            assert!(mismatches.is_empty(), "N={n}: simd != scalar: {mismatches:?}");
        }
    }

    /// `A[i+1]` reads the cell written one point earlier: a chunked loop
    /// would read stale lanes, so eligibility must decline rows whose
    /// read slot is the written slot. The reference comparison (with the
    /// chunked loop at its default, enabled) pins the sequential
    /// propagation.
    #[test]
    fn aliased_rows_stay_scalar_and_propagate_sequentially() {
        run_both(
            "kernel chain(N) { for (i: N) A[i+1] = A[i] / 3.0 + 1.0; }",
            &[("N", 9)],
            &[("A", vec![10])],
        );
    }

    #[test]
    fn rank_overflow_bails_to_reference() {
        let mut src = String::from("kernel deep(N) { ");
        for d in 0..9 {
            src.push_str(&format!("for (i{d}: N) "));
        }
        src.push_str("A[i0][i1][i2][i3][i4][i5][i6][i7][i8] = 1.0; }");
        let p = parse_program(&src).unwrap();
        let store = Store::new();
        assert!(ExecPlan::compile(&p.kernels[0], &[2; 9], &store).is_none());
    }
}
