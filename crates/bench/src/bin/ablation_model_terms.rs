//! **Ablation study** (beyond the paper's figures): disable each
//! component of the §IV formulation in turn and measure what the
//! selected tiles lose on the GPU model. Quantifies the design choices
//! DESIGN.md calls out:
//!
//! * warp alignment (§IV-B),
//! * the register-per-SM constraint (§IV-G),
//! * the L1/shared capacity constraints (§IV-E/J),
//! * the spatial-locality objective term (§IV-K),
//! * the parallelism objective term (§IV-K),
//!
//! plus a comparison of the §IV-L linear maximization against the
//! binary-search extension.

use eatss::{Ablation, Eatss, EatssConfig, ModelGenerator};
use eatss_bench::table::fmt_f;
use eatss_bench::Table;
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;

fn main() {
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    let variants: [(&str, Ablation); 6] = [
        ("full model", Ablation::default()),
        (
            "- warp alignment",
            Ablation {
                no_warp_alignment: true,
                ..Ablation::default()
            },
        ),
        (
            "- register constraint",
            Ablation {
                no_register_constraint: true,
                ..Ablation::default()
            },
        ),
        (
            "- memory constraints",
            Ablation {
                no_memory_constraints: true,
                ..Ablation::default()
            },
        ),
        (
            "- spatial term",
            Ablation {
                no_spatial_term: true,
                ..Ablation::default()
            },
        ),
        (
            "- parallelism term",
            Ablation {
                no_parallel_term: true,
                ..Ablation::default()
            },
        ),
    ];
    println!("Ablation: contribution of each formulation component (GA100)\n");
    for name in ["gemm", "mttkrp", "jacobi-2d"] {
        let b = eatss_kernels::by_name(name).expect("registered");
        let program = b.program().expect("parses");
        let sizes = b.sizes(Dataset::ExtraLarge);
        let config = EatssConfig {
            warp_fraction: if program.max_depth() > 3 { 0.125 } else { 0.5 },
            ..EatssConfig::default()
        };
        let mut t = Table::new(vec![
            "variant",
            "tiles",
            "GFLOP/s",
            "energy (J)",
            "PPW",
            "vs full",
        ]);
        let mut full_ppw = None;
        for (label, ablation) in variants {
            let model = ModelGenerator::new(&arch, config.clone())
                .with_ablation(ablation)
                .build(&program, Some(&sizes))
                .expect("model builds");
            let row = match model.solve() {
                Ok(solution) => {
                    let report = eatss
                        .evaluate(&program, &solution.tiles, &sizes, &config)
                        .expect("selection compiles");
                    if label == "full model" {
                        full_ppw = Some(report.ppw);
                    }
                    let rel = full_ppw
                        .map(|f| report.ppw / f)
                        .unwrap_or(f64::NAN);
                    if report.valid {
                        vec![
                            label.into(),
                            solution.tiles.to_string(),
                            fmt_f(report.gflops),
                            fmt_f(report.energy_j),
                            fmt_f(report.ppw),
                            fmt_f(rel),
                        ]
                    } else {
                        vec![
                            label.into(),
                            solution.tiles.to_string(),
                            "unexecutable".into(),
                        ]
                    }
                }
                Err(e) => vec![label.into(), format!("infeasible: {e}")],
            };
            t.row(row);
        }
        println!("--- {name} ---");
        println!("{}", t.render());
    }

    // Linear (§IV-L) vs binary-search maximization.
    println!("Maximization strategy: §IV-L linear climb vs binary search\n");
    let mut t = Table::new(vec![
        "benchmark",
        "linear calls",
        "binary calls",
        "same optimum",
    ]);
    for name in ["gemm", "covariance", "conv-2d", "mttkrp"] {
        let b = eatss_kernels::by_name(name).expect("registered");
        let program = b.program().expect("parses");
        let sizes = b.sizes(Dataset::ExtraLarge);
        let config = EatssConfig {
            warp_fraction: if program.max_depth() > 3 { 0.125 } else { 0.5 },
            ..EatssConfig::default()
        };
        let linear = ModelGenerator::new(&arch, config.clone())
            .build(&program, Some(&sizes))
            .expect("builds")
            .solve();
        let binary = ModelGenerator::new(&arch, config.clone())
            .build(&program, Some(&sizes))
            .expect("builds")
            .solve_binary();
        match (linear, binary) {
            (Ok(l), Ok(bi)) => t.row(vec![
                name.into(),
                l.solver_calls.to_string(),
                bi.solver_calls.to_string(),
                (l.objective == bi.objective).to_string(),
            ]),
            _ => t.row(vec![name.into(), "infeasible".into()]),
        }
    }
    println!("{}", t.render());
}
