//! **Figure 11** — performance and energy distribution of the
//! non-Polybench tile spaces as histograms with Freedman–Diaconis bin
//! widths, marking the default PPCG (`P`), the median (`M`) and the best
//! EATSS variant (`U`).

use eatss::sweep::PAPER_WARP_FRACTIONS;
use eatss::Eatss;
use eatss_bench::table::fmt_f;
use eatss_bench::{explore::summarize, explore_space};
use eatss_gpusim::{stats, GpuArch};
use eatss_kernels::Dataset;
use eatss_ppcg::TileSpace;

fn ascii_hist(values: &[f64], marks: &[(char, f64)]) {
    let bins = stats::fd_histogram(values);
    let max = bins.iter().map(|b| b.count).max().unwrap_or(1).max(1);
    for bin in &bins {
        let bar_len = bin.count * 50 / max;
        let mut line = format!(
            "  [{:>9}, {:>9})  {:>4} {}",
            fmt_f(bin.lo),
            fmt_f(bin.hi),
            bin.count,
            "#".repeat(bar_len)
        );
        for &(c, v) in marks {
            if v >= bin.lo && (v < bin.hi || bin == bins.last().expect("non-empty")) {
                line.push_str(&format!("  <-- {c}"));
            }
        }
        println!("{line}");
    }
}

fn main() {
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    println!("Figure 11: non-Polybench tile-space histograms (GA100)\n");
    for b in eatss_kernels::case_study() {
        let program = b.program().expect("benchmark parses");
        let sizes = b.sizes(Dataset::ExtraLarge);
        let sweep = eatss
            .sweep(&program, &sizes, &[0.0, 0.5], &PAPER_WARP_FRACTIONS)
            .expect("some configuration feasible");
        let best = sweep.best_by_perf().expect("a valid EATSS point");
        let opts = best.config.compile_options(&arch);
        let space = TileSpace::evaluation_grid(program.max_depth());
        let variants = explore_space(&arch, &program, &sizes, &space, &opts);
        let s = summarize(&arch, &program, &sizes, &variants, &opts);
        let gflops: Vec<f64> = variants
            .iter()
            .filter(|v| v.report.valid)
            .map(|v| v.report.gflops)
            .collect();
        println!(
            "--- {} (n = {} of {} executable) ---",
            b.name,
            gflops.len(),
            s.total
        );
        println!("performance histogram (GFLOP/s):");
        ascii_hist(
            &gflops,
            &[
                ('P', s.default.gflops),
                ('M', stats::median(&gflops)),
                ('U', best.report.gflops),
            ],
        );
        let energy: Vec<f64> = variants
            .iter()
            .filter(|v| v.report.valid)
            .map(|v| v.report.energy_j)
            .collect();
        println!("energy histogram (J):");
        ascii_hist(
            &energy,
            &[
                ('P', s.default.energy_j),
                ('M', stats::median(&energy)),
                ('U', best.report.energy_j),
            ],
        );
        println!(
            "P = default PPCG, M = median of space, U = best EATSS; best \
             empirical variant: {} GFLOP/s\n",
            fmt_f(s.best_gflops)
        );
    }
    println!(
        "Shape check (paper): P and M sit in the poorly-performing mass of \
         the distribution; U lands near the high-performance / low-energy \
         corner at a small exploration cost."
    );
}
