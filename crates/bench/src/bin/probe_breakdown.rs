//! Internal diagnostic: per-phase timing/traffic breakdown for one
//! benchmark + tile configuration.

use eatss_affine::tiling::TileConfig;
use eatss_gpusim::{occupancy, timing, traffic, Gpu, GpuArch};
use eatss_kernels::Dataset;
use eatss_ppcg::{CompileOptions, Ppcg};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("gemm");
    let tiles: Vec<i64> = args
        .get(2)
        .map(|s| s.split(',').map(|t| t.parse().expect("tile int")).collect())
        .unwrap_or_else(|| vec![32, 32, 32]);
    let arch = if args.get(3).map(String::as_str) == Some("xavier") {
        GpuArch::xavier()
    } else {
        GpuArch::ga100()
    };
    let dataset = if arch.name == "Xavier" {
        Dataset::Standard
    } else {
        Dataset::ExtraLarge
    };
    let b = eatss_kernels::by_name(name).expect("benchmark");
    let program = b.program().expect("parses");
    let sizes = b.sizes(dataset);
    let ppcg = Ppcg::new(arch.clone());
    let opts = CompileOptions::with_split(&arch, 0.5, 8);
    let compiled = ppcg
        .compile(&program, &TileConfig::new(tiles), &sizes, &opts)
        .expect("compiles");
    let gpu = Gpu::new(arch.clone());
    for m in &compiled.mappings {
        let spec = m.to_exec_spec();
        let occ = occupancy::occupancy(&arch, &spec);
        let tr = traffic::model(&arch, &spec, &occ);
        let tm = timing::model(&arch, &spec, &occ, &tr);
        let rep = gpu.simulate(&spec).repeated(m.launch_count);
        println!(
            "kernel {}: grid={} ({}x) tpb={} pts={} steps={} launches={} regs={} spill={}",
            spec.name,
            spec.grid_blocks,
            spec.grid_x_blocks,
            spec.threads_per_block,
            spec.points_per_thread,
            spec.serial_steps_per_block,
            m.launch_count,
            occ.regs_per_thread,
            occ.register_spill
        );
        println!(
            "  occ: bps={} occ={:.2} waves={:.1} tail={:.2}",
            occ.blocks_per_sm, occ.occupancy, occ.waves, occ.tail_efficiency
        );
        println!(
            "  traffic: l2_rd={:.2e} l2_wr={:.2e} sect, dram={:.2} GB (time {:.2} GB) shared={:.1} GB l1hit={:.1} GB thrash={} l2hit={:.2}",
            tr.l2_sectors_read,
            tr.l2_sectors_written,
            tr.dram_bytes / 1e9,
            tr.dram_time_bytes / 1e9,
            tr.shared_bytes / 1e9,
            tr.l1_hit_bytes / 1e9,
            tr.l1_thrash,
            tr.l2_hit_fraction
        );
        for r in &tr.per_ref {
            println!(
                "    ref {}: l2_req={:.2e} sect={:.2e} dram={:.2}GB roweff={:.2} thrash={}",
                r.name,
                r.l2_request_elems,
                r.l2_sectors,
                r.dram_bytes / 1e9,
                r.row_efficiency,
                r.l1_thrashed
            );
        }
        println!(
            "  timing: compute={:.4} l2={:.4} dram={:.4} shared={:.4} sync={:.4} total={:.4} eff={:.2}",
            tm.compute_s, tm.l2_s, tm.dram_s, tm.shared_s, tm.sync_s, tm.total_s, tm.compute_efficiency
        );
        println!("  report: {rep}");
        println!(
            "  power: const={:.1} static={:.1} dyn={:.1} throttled={}",
            rep.constant_power_w, rep.static_power_w, rep.dynamic_power_w, rep.dvfs_throttled
        );
    }
}
