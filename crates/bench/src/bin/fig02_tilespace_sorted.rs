//! **Figure 2** — performance and energy distribution of the 3,375 tiled
//! 2mm variants on the GA100 at N = 4000, with the default-PPCG baseline
//! line. (a) sorted by performance; (b) sorted by energy. The text output
//! prints the sorted series as percentile samples plus the headline
//! statistic: only a small fraction of variants beats the default.

use eatss_affine::tiling::TileConfig;
use eatss_bench::table::fmt_f;
use eatss_bench::{explore::summarize, explore_space, Table};
use eatss_gpusim::GpuArch;
use eatss_ppcg::{CompileOptions, TileSpace};

fn main() {
    let arch = GpuArch::ga100();
    let b = eatss_kernels::by_name("2mm").expect("2mm registered");
    let program = b.program().expect("2mm parses");
    let sizes = b.sizes_uniform(4000);
    let opts = CompileOptions::with_split(&arch, 0.5, 8);
    // Tile dims of 2mm: both kernels are depth 3 → one shared triple.
    let space = TileSpace::motivation_grid(3);
    println!(
        "Figure 2: {} tiled 2mm variants on GA100, N=4000\n",
        space.len()
    );
    let variants = explore_space(&arch, &program, &sizes, &space, &opts);
    let summary = summarize(&arch, &program, &sizes, &variants, &opts);
    let default = &summary.default;

    let mut perf: Vec<(f64, f64, TileConfig)> = variants
        .iter()
        .filter(|v| v.report.valid)
        .map(|v| (v.report.gflops / 1000.0, v.report.energy_j, v.tiles.clone()))
        .collect();

    // (a) sorted by performance.
    perf.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let mut ta = Table::new(vec!["percentile", "TFLOP/s", "energy (J)", "tiles"]);
    for pct in [0, 10, 25, 50, 75, 90, 95, 99, 100] {
        let idx = (pct * (perf.len() - 1)) / 100;
        let (tf, e, tiles) = &perf[idx];
        ta.row(vec![
            format!("p{pct}"),
            fmt_f(*tf),
            fmt_f(*e),
            tiles.to_string(),
        ]);
    }
    println!("(a) variants sorted by performance:\n{}", ta.render());

    // (b) sorted by energy.
    perf.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let mut tb = Table::new(vec!["percentile", "energy (J)", "TFLOP/s", "tiles"]);
    for pct in [0, 10, 25, 50, 75, 90, 100] {
        let idx = (pct * (perf.len() - 1)) / 100;
        let (tf, e, tiles) = &perf[idx];
        tb.row(vec![
            format!("p{pct}"),
            fmt_f(*e),
            fmt_f(*tf),
            tiles.to_string(),
        ]);
    }
    println!("(b) variants sorted by energy:\n{}", tb.render());

    let beat_perf = perf.iter().filter(|v| v.0 * 1000.0 > default.gflops).count();
    let beat_energy = perf.iter().filter(|v| v.1 < default.energy_j).count();
    println!(
        "baseline (default PPCG 32^3): {} TFLOP/s, {} J",
        fmt_f(default.gflops / 1000.0),
        fmt_f(default.energy_j)
    );
    println!(
        "variants beating the default: {:.1}% by performance, {:.1}% by energy",
        100.0 * beat_perf as f64 / perf.len() as f64,
        100.0 * beat_energy as f64 / perf.len() as f64
    );
    println!(
        "({} of {} variants executable; paper observes only ~12% of 2mm \
         variants beat the default on a GA100)",
        summary.valid, summary.total
    );
    // Variants that match default performance but differ in energy
    // (the paper's key §II observation).
    let near_default: Vec<&(f64, f64, TileConfig)> = perf
        .iter()
        .filter(|v| (v.0 * 1000.0 - default.gflops).abs() / default.gflops < 0.05)
        .collect();
    if near_default.len() >= 2 {
        let e_min = near_default
            .iter()
            .map(|v| v.1)
            .fold(f64::INFINITY, f64::min);
        let e_max = near_default
            .iter()
            .map(|v| v.1)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "among {} variants within ±5% of default performance, energy \
             spans {} J to {} J ({}x) — equal-performance variants differ \
             in energy (§II insight)",
            near_default.len(),
            fmt_f(e_min),
            fmt_f(e_max),
            fmt_f(e_max / e_min)
        );
    }
}
