//! **Table I** — GPU-specific input parameters of the EATSS model
//! (GA100 example column), regenerated from the architecture
//! description.

use eatss_bench::Table;
use eatss_gpusim::GpuArch;

fn main() {
    let ga = GpuArch::ga100();
    let mut t = Table::new(vec!["Abbreviation", "Description", "Example (GA100)"]);
    t.row(vec![
        "T_P_B".into(),
        "Threads per Thread-Block".into(),
        ga.max_threads_per_block.to_string(),
    ]);
    t.row(vec![
        "T_P_W".into(),
        "Threads per Warp".into(),
        ga.threads_per_warp.to_string(),
    ]);
    t.row(vec![
        "R_P_S".into(),
        "Registers per SM".into(),
        format!("{}K", ga.regs_per_sm / 1024),
    ]);
    t.row(vec![
        "R_P_B".into(),
        "Registers per Thread-Block".into(),
        format!("{}K", ga.regs_per_sm / 1024),
    ]);
    t.row(vec![
        "R_P_T".into(),
        "Registers per Thread".into(),
        ga.regs_per_thread.to_string(),
    ]);
    t.row(vec![
        "L1_SH".into(),
        "L1 + Shared Memory".into(),
        format!("{}KB", ga.l1_shared_bytes / 1024),
    ]);
    t.row(vec![
        "L2".into(),
        "L2 Memory".into(),
        format!("{}MB", ga.l2_bytes / 1024 / 1024),
    ]);
    println!("Table I: GPU-specific (GA100) input parameters to model\n");
    println!("{}", t.render());
}
