//! **Table III** — GPU testbed specifications, regenerated from the two
//! architecture descriptions.

use eatss_bench::Table;
use eatss_gpusim::GpuArch;

fn main() {
    let ga = GpuArch::ga100();
    let xa = GpuArch::xavier();
    let mut t = Table::new(vec!["", "GA100", "AGX Xavier"]);
    let mut row = |label: &str, a: String, b: String| {
        t.row(vec![label.to_string(), a, b]);
    };
    row(
        "Multiprocessor count",
        ga.sm_count.to_string(),
        xa.sm_count.to_string(),
    );
    row(
        "L1 / L2 cache",
        format!("{} KB / {} MB", ga.l1_shared_bytes / 1024, ga.l2_bytes / 1024 / 1024),
        format!("{} KB / {} KB", xa.l1_shared_bytes / 1024, xa.l2_bytes / 1024),
    );
    row(
        "Shared-mem per block & SM",
        format!(
            "{} KB / {} KB",
            ga.max_shared_per_block / 1024,
            ga.l1_shared_bytes / 1024 - 28 // 164 KB usable of 192 on GA100
        ),
        format!(
            "{} KB / {} KB",
            xa.max_shared_per_block / 1024,
            96 // 96 KB of the 128 KB combined is shared-usable on Volta
        ),
    );
    row(
        "Registers per block",
        ga.regs_per_sm.to_string(),
        xa.regs_per_sm.to_string(),
    );
    row(
        "Global memory",
        format!("{} GB", ga.dram_bytes / (1 << 30)),
        format!("{} GB", xa.dram_bytes / (1 << 30)),
    );
    row(
        "Peak FP64 (GFLOPS)",
        format!("{:.0}", ga.peak_fp64_gflops),
        format!("{:.0}", xa.peak_fp64_gflops),
    );
    row(
        "Thermal design power",
        format!("{:.0}W", ga.tdp_w),
        format!("{:.0}W", xa.tdp_w),
    );
    println!("Table III: GPU Testbed Specifications\n");
    println!("{}", t.render());
}
