//! Runs every table/figure experiment in-process and writes each output
//! under `results/` — the one-command regeneration entry point.
//!
//! ```text
//! cargo run --release -p eatss-bench --bin run_all [out-dir]
//! ```

use std::path::PathBuf;
use std::process::Command;

const EXPERIMENTS: [&str; 18] = [
    "tab01_arch_params",
    "tab02_access_patterns",
    "tab03_testbed",
    "tab04_vendor_comparison",
    "fig01_power_vs_size",
    "fig02_tilespace_sorted",
    "fig03_tilespace_scatter",
    "fig07_polybench",
    "fig08_shmem_splits",
    "fig09_l2_power_correlation",
    "fig10_nonpolybench_speedup",
    "fig11_nonpolybench_hist",
    "fig12_size_sensitivity",
    "fig13_size_sensitivity_np",
    "fig14_vs_ytopt",
    "secVg_solver_overhead",
    "ablation_model_terms",
    "ext_precision_study",
];

fn main() -> std::process::ExitCode {
    let out_dir = PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "results".to_owned()),
    );
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return std::process::ExitCode::FAILURE;
    }
    // Each experiment binary lives next to this one.
    let self_path = std::env::current_exe().expect("current exe path");
    let bin_dir = self_path.parent().expect("exe has a parent directory");
    let mut failures = 0;
    for name in EXPERIMENTS {
        let bin = bin_dir.join(name);
        let out_file = out_dir.join(format!("{name}.txt"));
        print!("{name:<32} ");
        let output = Command::new(&bin).output();
        match output {
            Ok(output) if output.status.success() => {
                if let Err(e) = std::fs::write(&out_file, &output.stdout) {
                    println!("write failed: {e}");
                    failures += 1;
                } else {
                    println!("ok -> {}", out_file.display());
                }
            }
            Ok(output) => {
                println!("FAILED (status {})", output.status);
                failures += 1;
            }
            Err(e) => {
                println!("FAILED to launch ({e}); build with `cargo build --release -p eatss-bench` first");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("\nall {} experiments regenerated", EXPERIMENTS.len());
        std::process::ExitCode::SUCCESS
    } else {
        println!("\n{failures} experiment(s) failed");
        std::process::ExitCode::FAILURE
    }
}
