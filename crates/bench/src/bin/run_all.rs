//! Runs every table/figure experiment in-process and writes each output
//! under `results/` — the one-command regeneration entry point.
//!
//! ```text
//! cargo run --release -p eatss-bench --bin run_all -- [out-dir] \
//!     [--trace OUT.json] [--trace-format jsonl|chrome] \
//!     [--log-level off|error|info|debug]
//! ```

use eatss_trace::{Level, Provenance, TraceFormat};
use std::path::PathBuf;
use std::process::Command;

const EXPERIMENTS: [&str; 18] = [
    "tab01_arch_params",
    "tab02_access_patterns",
    "tab03_testbed",
    "tab04_vendor_comparison",
    "fig01_power_vs_size",
    "fig02_tilespace_sorted",
    "fig03_tilespace_scatter",
    "fig07_polybench",
    "fig08_shmem_splits",
    "fig09_l2_power_correlation",
    "fig10_nonpolybench_speedup",
    "fig11_nonpolybench_hist",
    "fig12_size_sensitivity",
    "fig13_size_sensitivity_np",
    "fig14_vs_ytopt",
    "secVg_solver_overhead",
    "ablation_model_terms",
    "ext_precision_study",
];

struct Options {
    out_dir: PathBuf,
    trace: Option<String>,
    trace_format: TraceFormat,
    log_level: Level,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out_dir: PathBuf::from("results"),
        trace: None,
        trace_format: TraceFormat::Chrome,
        log_level: Level::Info,
    };
    let mut positional = None;
    let mut args = std::env::args().skip(1);
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => opts.trace = Some(next_value(&mut args, "--trace")?),
            "--trace-format" => {
                let text = next_value(&mut args, "--trace-format")?;
                opts.trace_format = TraceFormat::parse(&text)
                    .ok_or_else(|| format!("unknown trace format `{text}`"))?;
            }
            "--log-level" => {
                let text = next_value(&mut args, "--log-level")?;
                opts.log_level = Level::parse(&text)
                    .ok_or_else(|| format!("unknown log level `{text}`"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            dir => {
                if positional.replace(dir.to_owned()).is_some() {
                    return Err("multiple output directories given".to_owned());
                }
            }
        }
    }
    if let Some(dir) = positional {
        opts.out_dir = PathBuf::from(dir);
    }
    Ok(opts)
}

fn run_experiments(opts: &Options) -> usize {
    // Each experiment binary lives next to this one.
    let self_path = std::env::current_exe().expect("current exe path");
    let bin_dir = self_path.parent().expect("exe has a parent directory");
    let mut failures = 0;
    for name in EXPERIMENTS {
        let bin = bin_dir.join(name);
        let out_file = opts.out_dir.join(format!("{name}.txt"));
        print!("{name:<32} ");
        let mut span = eatss_trace::span("bench", "experiment");
        if span.is_active() {
            span.arg("name", name);
        }
        let output = Command::new(&bin).output();
        match output {
            Ok(output) if output.status.success() => {
                span.arg("ok", true);
                if let Err(e) = std::fs::write(&out_file, &output.stdout) {
                    println!("write failed: {e}");
                    failures += 1;
                } else {
                    println!("ok -> {}", out_file.display());
                }
            }
            Ok(output) => {
                span.arg("ok", false);
                println!("FAILED (status {})", output.status);
                failures += 1;
            }
            Err(e) => {
                span.arg("ok", false);
                println!("FAILED to launch ({e}); build with `cargo build --release -p eatss-bench` first");
                failures += 1;
            }
        }
    }
    failures
}

fn main() -> std::process::ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eatss_trace::error!("{e}");
            return std::process::ExitCode::from(2);
        }
    };
    eatss_trace::set_log_level(opts.log_level);
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eatss_trace::error!("cannot create {}: {e}", opts.out_dir.display());
        return std::process::ExitCode::FAILURE;
    }
    if opts.trace.is_some() {
        eatss_trace::start_collecting();
    }
    let failures = run_experiments(&opts);
    if let Some(path) = &opts.trace {
        let trace = eatss_trace::drain(Provenance::collect(None));
        match trace.write(std::path::Path::new(path), opts.trace_format) {
            Ok(()) => eatss_trace::info!(
                "trace: {} event(s) written to {path} ({:?})",
                trace.events.len(),
                opts.trace_format
            ),
            Err(e) => eatss_trace::error!("cannot write trace `{path}`: {e}"),
        }
    }
    if failures == 0 {
        println!("\nall {} experiments regenerated", EXPERIMENTS.len());
        std::process::ExitCode::SUCCESS
    } else {
        println!("\n{failures} experiment(s) failed");
        std::process::ExitCode::FAILURE
    }
}
