//! Internal calibration probe: prints EATSS vs PPCG-default headline
//! numbers for a few representative benchmarks so the simulator's
//! constants can be tuned until the paper's trends hold. Not part of the
//! figure index, but kept as a diagnostic tool.

use eatss::sweep::{PAPER_SPLITS, PAPER_WARP_FRACTIONS};
use eatss::Eatss;
use eatss_affine::tiling::TileConfig;
use eatss_bench::table::fmt_f;
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;

fn main() {
    for (arch, dataset) in [
        (GpuArch::ga100(), Dataset::ExtraLarge),
        (GpuArch::xavier(), Dataset::Standard),
    ] {
        println!("=== {} ===", arch);
        let eatss = Eatss::new(arch.clone());
        for name in ["gemm", "2mm", "mvt", "jacobi-2d", "conv-2d", "heat-3d", "mttkrp"] {
            let b = eatss_kernels::by_name(name).expect("registered benchmark");
            let program = b.program().expect("benchmark parses");
            let sizes = b.sizes(dataset);
            let fractions: &[f64] = if b.polybench {
                &[0.5]
            } else {
                &PAPER_WARP_FRACTIONS
            };
            let sweep = match eatss.sweep(&program, &sizes, &PAPER_SPLITS, fractions) {
                Ok(s) => s,
                Err(e) => {
                    println!("{name:12} EATSS infeasible: {e}");
                    continue;
                }
            };
            let Some(best) = sweep.best_by_ppw() else {
                println!("{name:12} no valid EATSS point");
                continue;
            };
            // Default PPCG with the same shared-memory level as our best.
            let cfg = &best.config;
            let default = eatss
                .evaluate(
                    &program,
                    &TileConfig::ppcg_default(program.max_depth()),
                    &sizes,
                    cfg,
                )
                .expect("default compiles");
            println!(
                "{name:12} tiles={:16} def: {:>8} GF {:>6} W {:>8} J | eatss: {:>8} GF {:>6} W {:>8} J | speedup {:>5} ppw-ratio {:>5} (split {:.2}, wf {:.3}, {} pts, {} calls)",
                best.solution.tiles.to_string(),
                fmt_f(default.gflops),
                fmt_f(default.avg_power_w),
                fmt_f(default.energy_j),
                fmt_f(best.report.gflops),
                fmt_f(best.report.avg_power_w),
                fmt_f(best.report.energy_j),
                fmt_f(best.report.gflops / default.gflops),
                fmt_f(best.report.ppw / default.ppw),
                cfg.split_factor,
                cfg.warp_fraction,
                sweep.points.len(),
                best.solution.solver_calls,
            );
        }
    }
}
