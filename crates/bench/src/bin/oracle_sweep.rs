//! Seeded differential-oracle sweep over the whole benchmark suite.
//!
//! ```text
//! cargo run --release -p eatss-bench --bin oracle_sweep -- \
//!     [--seed N] [--random N] [--space-cap N] [--time-cap N] [--jobs N] [--batched]
//! ```
//!
//! For every PolyBench kernel, runs solve → map → emulate on shrunk
//! problem sizes and asserts bitwise agreement with the affine
//! interpreter across EATSS-selected tiles, the PPCG `32^d` default, the
//! pinned adversarial configurations, and `--random` seeded samples of
//! the tile space (non-divisible boundaries included by construction).
//! The seed is printed so any failure is reproducible; it can also be
//! set via `EATSS_ORACLE_SEED`. With `--jobs N` benchmarks are verified
//! by N worker threads; random samples come from per-benchmark seeded
//! RNGs, so the output is byte-identical to the sequential run (see
//! `eatss_bench::oracle`). `--batched` routes each benchmark through the
//! batched oracle (one reference interpretation, shared emulator plans)
//! with verdicts — and report bytes — identical to the per-config path.
//! Exits non-zero on a failure count > 0.

use eatss_bench::oracle::{run_oracle_sweep, OracleSweepOptions};
use std::process::ExitCode;

fn parse_args() -> Result<OracleSweepOptions, String> {
    let mut opts = OracleSweepOptions {
        seed: std::env::var("EATSS_ORACLE_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(OracleSweepOptions::default().seed),
        ..OracleSweepOptions::default()
    };
    let mut args = std::env::args().skip(1);
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        let parse = |flag: &str, text: String| -> Result<i64, String> {
            text.parse().map_err(|e| format!("{flag}: {e}"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = parse("--seed", next_value(&mut args, "--seed")?)? as u64,
            "--random" => {
                opts.random = parse("--random", next_value(&mut args, "--random")?)? as usize;
            }
            "--space-cap" => {
                opts.space_cap = parse("--space-cap", next_value(&mut args, "--space-cap")?)?;
            }
            "--time-cap" => {
                opts.time_cap = parse("--time-cap", next_value(&mut args, "--time-cap")?)?;
            }
            "--jobs" => {
                opts.jobs = parse("--jobs", next_value(&mut args, "--jobs")?)?.max(1) as usize;
            }
            "--batched" => opts.batched = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: oracle_sweep [--seed N] [--random N] [--space-cap N] [--time-cap N] [--jobs N] [--batched]"
            );
            return ExitCode::from(2);
        }
    };
    let summary = run_oracle_sweep(&opts);
    print!("{}", summary.report);
    if summary.failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
