//! Seeded differential-oracle sweep over the whole benchmark suite.
//!
//! ```text
//! cargo run --release -p eatss-bench --bin oracle_sweep -- \
//!     [--seed N] [--random N] [--space-cap N] [--time-cap N]
//! ```
//!
//! For every PolyBench kernel, runs solve → map → emulate on shrunk
//! problem sizes and asserts bitwise agreement with the affine
//! interpreter across EATSS-selected tiles, the PPCG `32^d` default, the
//! pinned adversarial configurations, and `--random` seeded samples of
//! the tile space (non-divisible boundaries included by construction).
//! The seed is printed so any failure is reproducible; it can also be
//! set via `EATSS_ORACLE_SEED`. Exits non-zero on the first mismatch
//! count > 0.

use eatss::{Eatss, EatssConfig, EatssError};
use eatss_affine::tiling::TileConfig;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use eatss_ppcg::oracle::{sample_tile_config, sweep_rng, verify_sizes};
use eatss_ppcg::{verify, OracleError, OracleOptions};
use std::process::ExitCode;

struct Options {
    seed: u64,
    random: usize,
    space_cap: i64,
    time_cap: i64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: std::env::var("EATSS_ORACLE_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xEA75_50AC),
        random: 8,
        space_cap: 17,
        time_cap: 3,
    };
    let mut args = std::env::args().skip(1);
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        let parse = |flag: &str, text: String| -> Result<i64, String> {
            text.parse().map_err(|e| format!("{flag}: {e}"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = parse("--seed", next_value(&mut args, "--seed")?)? as u64,
            "--random" => {
                opts.random = parse("--random", next_value(&mut args, "--random")?)? as usize;
            }
            "--space-cap" => {
                opts.space_cap = parse("--space-cap", next_value(&mut args, "--space-cap")?)?;
            }
            "--time-cap" => {
                opts.time_cap = parse("--time-cap", next_value(&mut args, "--time-cap")?)?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Max trip count per dim position across kernels — the sampling domain.
fn trips(program: &Program, sizes: &ProblemSizes) -> Vec<i64> {
    let mut out = vec![1i64; program.max_depth()];
    for k in &program.kernels {
        for (d, slot) in out.iter_mut().enumerate().take(k.depth()) {
            *slot = (*slot).max(k.trip_count(d, sizes).unwrap_or(1));
        }
    }
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: oracle_sweep [--seed N] [--random N] [--space-cap N] [--time-cap N]"
            );
            return ExitCode::from(2);
        }
    };
    println!(
        "oracle sweep: seed {} ({} random config(s)/benchmark, caps {}/{})",
        opts.seed, opts.random, opts.space_cap, opts.time_cap
    );
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    let oracle_opts = OracleOptions::default();
    let mut rng = sweep_rng(opts.seed);
    let mut configs = 0u64;
    let mut points = 0u64;
    let mut failures = 0u64;

    for bench in eatss_kernels::polybench() {
        let program = match bench.program() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: registry parse error: {e}", bench.name);
                failures += 1;
                continue;
            }
        };
        let std_sizes = bench.sizes(eatss_kernels::Dataset::Standard);
        let cap = if program.max_depth() >= 4 {
            opts.space_cap.min(9)
        } else {
            opts.space_cap
        };
        let sizes = verify_sizes(&program, &std_sizes, cap, opts.time_cap);
        let trips = trips(&program, &sizes);
        let depth = program.max_depth();

        let mut plan: Vec<(String, TileConfig)> = vec![
            ("32^d".into(), TileConfig::ppcg_default(depth)),
            ("1^d".into(), TileConfig::new(vec![1; depth])),
            (
                "trip+1".into(),
                TileConfig::new(trips.iter().map(|t| t + 1).collect()),
            ),
        ];
        match eatss.select_tiles(&program, &std_sizes, &EatssConfig::default()) {
            Ok(solution) => plan.push(("EATSS".into(), solution.tiles)),
            Err(EatssError::Unsatisfiable { .. }) => {
                println!("  {}: EATSS selection unsatisfiable (skipped)", bench.name);
            }
            Err(e) => {
                eprintln!("  {}: EATSS selection failed: {e}", bench.name);
                failures += 1;
            }
        }
        for i in 0..opts.random {
            plan.push((format!("random#{i}"), sample_tile_config(&mut rng, &trips)));
        }

        for (label, tiles) in &plan {
            match verify(&program, tiles, &arch, &sizes, &oracle_opts, opts.seed) {
                Ok(report) => {
                    configs += 1;
                    points += report.points;
                }
                Err(OracleError::Compile(e)) => {
                    // Mapping rejections (e.g. too few tile sizes) are not
                    // oracle findings; report and move on.
                    println!("  {} {label} {tiles}: not mappable: {e}", bench.name);
                }
                Err(e) => {
                    eprintln!("FAIL {} {label} {tiles}: {e}", bench.name);
                    failures += 1;
                }
            }
        }
        println!("  {}: {} config(s) checked", bench.name, plan.len());
    }

    println!(
        "oracle sweep: {configs} config(s), {points} point(s) executed, \
         {failures} failure(s) [seed {}]",
        opts.seed
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
