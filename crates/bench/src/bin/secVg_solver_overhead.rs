//! **§V-G** — compile-time overhead of the solver: end-to-end iterative
//! selection time and per-call statistics, grouped by maximum kernel loop
//! depth (2-D, 3-D, 4-D), across benchmarks, architectures and
//! configurations. The paper reports ~1.3 s end-to-end on average with
//! 4–7 solver calls of ~0.29 s each for Z3; the stand-in solver should be
//! in a comparable (or faster) regime.

use eatss::{EatssConfig, ModelGenerator};
use eatss_bench::table::fmt_f;
use eatss_bench::Table;
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;
use std::collections::BTreeMap;

/// One solved formulation's overhead sample.
struct Sample {
    time_s: f64,
    calls: u32,
    nodes: u64,
    bound_prunes: u64,
    propagation_s: f64,
    search_s: f64,
}

fn main() {
    println!("Section V-G: solver overhead by kernel dimensionality\n");
    let mut groups: BTreeMap<usize, Vec<Sample>> = BTreeMap::new();
    let mut configs_run = 0;
    for b in eatss_kernels::all() {
        let program = b.program().expect("benchmark parses");
        let depth = program.max_depth();
        for arch in [GpuArch::ga100(), GpuArch::xavier()] {
            for split in [0.0, 0.5, 0.67] {
                for frac in [0.25, 0.5] {
                    let config = EatssConfig {
                        split_factor: split,
                        warp_fraction: frac,
                        ..EatssConfig::default()
                    };
                    let sizes = b.sizes(Dataset::ExtraLarge);
                    let model = match ModelGenerator::new(&arch, config).build(&program, Some(&sizes)) {
                        Ok(m) => m,
                        Err(_) => continue,
                    };
                    configs_run += 1;
                    if let Ok(solution) = model.solve() {
                        groups.entry(depth).or_default().push(Sample {
                            time_s: solution.solve_time.as_secs_f64(),
                            calls: solution.solver_calls,
                            nodes: solution.stats.nodes,
                            bound_prunes: solution.stats.bound_prunes,
                            propagation_s: solution.stats.propagation_time.as_secs_f64(),
                            search_s: solution.stats.search_time.as_secs_f64(),
                        });
                    }
                }
            }
        }
    }
    let mut t = Table::new(vec![
        "loop depth",
        "formulations",
        "mean end-to-end (s)",
        "mean solver calls",
        "mean per-call (s)",
        "mean nodes",
        "mean bound prunes",
        "propagation (s)",
        "search (s)",
    ]);
    let mut all_times = Vec::new();
    let mut all_calls = Vec::new();
    for (depth, samples) in &groups {
        let n = samples.len() as f64;
        let times: Vec<f64> = samples.iter().map(|s| s.time_s).collect();
        let calls: Vec<f64> = samples.iter().map(|s| s.calls as f64).collect();
        let mean_t = times.iter().sum::<f64>() / n;
        let mean_c = calls.iter().sum::<f64>() / n;
        let mean_nodes = samples.iter().map(|s| s.nodes as f64).sum::<f64>() / n;
        let mean_prunes = samples.iter().map(|s| s.bound_prunes as f64).sum::<f64>() / n;
        let mean_prop = samples.iter().map(|s| s.propagation_s).sum::<f64>() / n;
        let mean_search = samples.iter().map(|s| s.search_s).sum::<f64>() / n;
        all_times.extend(times);
        all_calls.extend(calls);
        t.row(vec![
            format!("{depth}D"),
            samples.len().to_string(),
            fmt_f(mean_t),
            fmt_f(mean_c),
            fmt_f(mean_t / mean_c.max(1.0)),
            fmt_f(mean_nodes),
            fmt_f(mean_prunes),
            fmt_f(mean_prop),
            fmt_f(mean_search),
        ]);
    }
    println!("{}", t.render());
    let mean_t = all_times.iter().sum::<f64>() / all_times.len().max(1) as f64;
    let mean_c = all_calls.iter().sum::<f64>() / all_calls.len().max(1) as f64;
    println!(
        "{} configurations solved; overall mean end-to-end {} s, mean {} \
         solver calls, {} s per call",
        configs_run,
        fmt_f(mean_t),
        fmt_f(mean_c),
        fmt_f(mean_t / mean_c.max(1.0)),
    );
    println!(
        "\nShape check (paper, with Z3): 1.1 s (2D), 1.4 s (3D/4D), 2.2 s \
         (5D) end-to-end; 0.29 s per call; 4-7 calls per formulation."
    );
}
