//! Parser-throughput benchmark: the zero-copy arena front end against
//! the retained tokenize-everything engine (`parser::reference`) on a
//! seeded synthetic corpus plus the real benchmark registry, emitting
//! `BENCH_parse.json` with per-tier MB/s and the aggregate wall ratio.
//!
//! Both engines parse the *same* sources and every resulting `Program`
//! is cross-checked for equality before anything is timed — a mismatch
//! is a bug, not a benchmark artifact.
//!
//! Usage: `bench_parse [--mode full|smoke] [--out PATH]`
//!   --mode smoke   CI gate: small corpus, 3 reps, exit 1 if the
//!                  aggregate wall ratio drops below 1.0
//!   --out          output path (default: BENCH_parse.json)

use eatss_affine::parser::gen::{generate_program, GenConfig};
use eatss_affine::parser::{parse_named_program, reference};
use std::fmt::Write as _;
use std::time::Instant;

struct Tier {
    name: &'static str,
    programs: Vec<String>,
    bytes: usize,
}

struct TierResult {
    name: &'static str,
    programs: usize,
    bytes: usize,
    fast_wall_s: f64,
    ref_wall_s: f64,
}

impl TierResult {
    fn fast_mb_s(&self) -> f64 {
        self.bytes as f64 / self.fast_wall_s.max(1e-9) / 1e6
    }
    fn ref_mb_s(&self) -> f64 {
        self.bytes as f64 / self.ref_wall_s.max(1e-9) / 1e6
    }
    fn wall_ratio(&self) -> f64 {
        self.ref_wall_s / self.fast_wall_s.max(1e-9)
    }
}

fn synthetic_tier(name: &'static str, seeds: u64, cfg: &GenConfig) -> Tier {
    let programs: Vec<String> = (0..seeds).map(|s| generate_program(s, cfg)).collect();
    let bytes = programs.iter().map(String::len).sum();
    Tier {
        name,
        programs,
        bytes,
    }
}

/// The real 17+3 registry nests — small sources, but the shapes the
/// daemon actually sees; repeated so the tier is long enough to time.
fn registry_tier(reps: usize) -> Tier {
    let mut programs = Vec::new();
    for _ in 0..reps {
        for b in eatss_kernels::all() {
            programs.push(b.source.to_owned());
        }
    }
    let bytes = programs.iter().map(String::len).sum();
    Tier {
        name: "registry",
        programs,
        bytes,
    }
}

fn corpus(smoke: bool) -> Vec<Tier> {
    let scale = if smoke { 1 } else { 8 };
    vec![
        synthetic_tier(
            "tiny",
            40 * scale,
            &GenConfig {
                kernels: 1,
                max_depth: 2,
                max_stmts: 1,
                max_expr_terms: 2,
                trivia: false,
            },
        ),
        synthetic_tier(
            "small",
            30 * scale,
            &GenConfig {
                kernels: 2,
                max_depth: 3,
                max_stmts: 2,
                max_expr_terms: 4,
                trivia: true,
            },
        ),
        synthetic_tier(
            "medium",
            20 * scale,
            &GenConfig {
                kernels: 4,
                max_depth: 4,
                max_stmts: 4,
                max_expr_terms: 6,
                trivia: true,
            },
        ),
        // Machine-generated kernel suites: one program holding an entire
        // workload's nests (the directory-ingest / generated-benchmark
        // shape). This is where the engines structurally diverge: the
        // reference materializes the whole token stream (~40 bytes per
        // token, ~20x the source) before parsing, so large inputs churn
        // the allocator and fall out of cache, while the single-pass
        // engine's working set stays flat.
        synthetic_tier(
            "suite",
            2,
            &GenConfig {
                kernels: if smoke { 500 } else { 4000 },
                max_depth: 4,
                max_stmts: 3,
                max_expr_terms: 5,
                trivia: true,
            },
        ),
        synthetic_tier(
            "suite-xl",
            1,
            &GenConfig {
                kernels: if smoke { 1000 } else { 20000 },
                max_depth: 4,
                max_stmts: 3,
                max_expr_terms: 5,
                trivia: true,
            },
        ),
        registry_tier(if smoke { 4 } else { 32 }),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .map_or("full", String::as_str);
    let smoke = match mode {
        "smoke" => true,
        "full" => false,
        other => {
            eprintln!("unknown --mode `{other}` (expected full|smoke)");
            std::process::exit(2);
        }
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parse.json".to_owned());
    let reps = if smoke { 3 } else { 7 };

    let tiers = corpus(smoke);

    // Cross-check outside the timed region: identical IR on every source.
    for tier in &tiers {
        for (i, src) in tier.programs.iter().enumerate() {
            let fast = parse_named_program("bench", src);
            let base = reference::parse_named_program("bench", src);
            assert_eq!(fast, base, "engines diverge: tier {} #{i}", tier.name);
            assert!(fast.is_ok(), "corpus program failed: tier {} #{i}", tier.name);
        }
    }

    let mut results = Vec::new();
    for tier in &tiers {
        // Min-of-reps wall clock per engine; interleave engines per rep
        // so neither systematically benefits from cache warm-up.
        let mut fast_wall = f64::INFINITY;
        let mut ref_wall = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for src in &tier.programs {
                std::hint::black_box(parse_named_program("bench", src).unwrap());
            }
            fast_wall = fast_wall.min(t0.elapsed().as_secs_f64());

            let t0 = Instant::now();
            for src in &tier.programs {
                std::hint::black_box(reference::parse_named_program("bench", src).unwrap());
            }
            ref_wall = ref_wall.min(t0.elapsed().as_secs_f64());
        }
        let r = TierResult {
            name: tier.name,
            programs: tier.programs.len(),
            bytes: tier.bytes,
            fast_wall_s: fast_wall,
            ref_wall_s: ref_wall,
        };
        println!(
            "{:<9} {:>4} program(s) {:>9} B  fast {:>8.2} MB/s  reference {:>8.2} MB/s  x{:.2}",
            r.name,
            r.programs,
            r.bytes,
            r.fast_mb_s(),
            r.ref_mb_s(),
            r.wall_ratio()
        );
        results.push(r);
    }

    let total_bytes: usize = results.iter().map(|r| r.bytes).sum();
    let fast_wall: f64 = results.iter().map(|r| r.fast_wall_s).sum();
    let ref_wall: f64 = results.iter().map(|r| r.ref_wall_s).sum();
    let fast_mb_s = total_bytes as f64 / fast_wall.max(1e-9) / 1e6;
    let ref_mb_s = total_bytes as f64 / ref_wall.max(1e-9) / 1e6;
    let wall_ratio = ref_wall / fast_wall.max(1e-9);

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"parser_front_end\",\n  \"mode\": \"{}\",\n  \"reps\": {},\n  \"provenance\": {},\n  \"corpus\": [\n",
        mode,
        reps,
        eatss_trace::Provenance::collect(Some(1)).to_json()
    );
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"tier\": \"{}\", \"programs\": {}, \"bytes\": {}, \"fast_wall_s\": {:.6}, \"reference_wall_s\": {:.6}, \"fast_mb_s\": {:.2}, \"reference_mb_s\": {:.2}, \"wall_ratio\": {:.3}}}{}",
            r.name,
            r.programs,
            r.bytes,
            r.fast_wall_s,
            r.ref_wall_s,
            r.fast_mb_s(),
            r.ref_mb_s(),
            r.wall_ratio(),
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"aggregate\": {{\"tiers\": {}, \"bytes\": {}, \"fast_wall_s\": {:.6}, \"reference_wall_s\": {:.6}, \"fast_mb_s\": {:.2}, \"reference_mb_s\": {:.2}, \"wall_ratio\": {:.3}}}\n}}\n",
        results.len(),
        total_bytes,
        fast_wall,
        ref_wall,
        fast_mb_s,
        ref_mb_s,
        wall_ratio
    );
    std::fs::write(&out_path, &json).expect("write BENCH_parse.json");

    println!(
        "\naggregate: {total_bytes} B  fast {fast_mb_s:.2} MB/s  reference {ref_mb_s:.2} MB/s  x{wall_ratio:.2}  -> {out_path}"
    );
    if smoke && wall_ratio < 1.0 {
        eprintln!("FAIL: aggregate wall ratio {wall_ratio:.3} < 1.0 — the zero-copy engine regressed below the reference");
        std::process::exit(1);
    }
}
