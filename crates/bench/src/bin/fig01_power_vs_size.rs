//! **Figure 1** — power consumption of the GEMM kernel on the GA100
//! across increasing problem sizes, decomposed into constant, static and
//! dynamic components. At small sizes constant + static power dominates;
//! as the size grows, dynamic power takes over and the total saturates
//! towards the TDP.

use eatss::evaluate_program;
use eatss_affine::tiling::TileConfig;
use eatss_bench::table::fmt_f;
use eatss_bench::Table;
use eatss_gpusim::GpuArch;
use eatss_ppcg::CompileOptions;

fn main() {
    let arch = GpuArch::ga100();
    let b = eatss_kernels::by_name("gemm").expect("gemm registered");
    let program = b.program().expect("gemm parses");
    let opts = CompileOptions::with_split(&arch, 0.5, 8);
    let mut t = Table::new(vec![
        "M=N=K",
        "const (W)",
        "static (W)",
        "dynamic (W)",
        "total (W)",
        "GFLOP/s",
        "throttled",
    ]);
    println!("Figure 1: GEMM power vs problem size on GA100 (default 32^3 tiles)\n");
    for n in (1000..=7000).step_by(1000) {
        let sizes = b.sizes_uniform(n);
        let r = evaluate_program(&arch, &program, &TileConfig::ppcg_default(3), &sizes, &opts)
            .expect("gemm compiles");
        t.row(vec![
            n.to_string(),
            fmt_f(r.constant_power_w),
            fmt_f(r.static_power_w),
            fmt_f(r.dynamic_power_w),
            fmt_f(r.avg_power_w),
            fmt_f(r.gflops),
            r.dvfs_throttled.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: dynamic power should grow with size and the total\n\
         should approach (and be capped at) the {:.0} W TDP.",
        arch.tdp_w
    );
}
