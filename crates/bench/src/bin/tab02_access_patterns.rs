//! **Table II** — matmul array-reference properties: memory type, CMA
//! capability, and reuse types, regenerated from the access-pattern
//! analysis of §IV.

use eatss_affine::analysis::{AccessAnalysis, ReuseKind};
use eatss_affine::parser::parse_program;
use eatss_bench::Table;

fn main() {
    let program = parse_program(
        "kernel matmul(M, N, P) {
           for (i: M) for (j: N) for (k: P)
             Out[i][j] += In[i][k] * Ker[k][j];
         }",
    )
    .expect("embedded matmul parses");
    let kernel = &program.kernels[0];
    let names = kernel.dim_names();
    let analysis = AccessAnalysis::analyze(kernel);

    println!("Table II: matmul array properties (CMA, reuse type per loop dim)\n");
    println!(
        "CMA loop dimension l_s1 = loop-{} (stride-1 in most references)\n",
        analysis
            .cma_dim
            .map(|d| names[d].clone())
            .unwrap_or_else(|| "-".into())
    );
    let mut t = Table::new(vec!["Array Reference", "Memory Type", "CMA Capable", "Reuse Type (Loop Dim)"]);
    for g in &analysis.groups {
        let reuse: Vec<String> = g
            .reuse(analysis.depth)
            .into_iter()
            .map(|(d, kind)| {
                let tag = match kind {
                    ReuseKind::Temporal => "T-reuse",
                    ReuseKind::Spatial => "S-reuse",
                };
                format!("{tag} ({})", names[d])
            })
            .collect();
        t.row(vec![
            g.representative.display_with(&names),
            g.memory.to_string(),
            if g.cma_capable { "Yes" } else { "No" }.to_string(),
            reuse.join(", "),
        ]);
    }
    println!("{}", t.render());
    println!(
        "no.references (distinct cache lines, §IV-G): {}",
        analysis.distinct_line_refs()
    );
    println!(
        "H weights at WARP_ALIGNMENT_FACTOR=16 (§IV-K): {:?}",
        analysis.h_weights(16)
    );
}
