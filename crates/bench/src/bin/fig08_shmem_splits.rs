//! **Figure 8** — performance and energy achieved by EATSS under
//! different splits of shared memory and L1 cache (0%, 50%, 67%, 100%),
//! normalized to default PPCG under the same shared-memory quota.
//! Speedup > 1 is better; normalized energy < 1 is better.
//!
//! `--profiles a,b,...` replaces the GA100/Xavier pair with any builtin
//! or on-disk device profiles (datasets chosen by SM count).

use eatss::{Eatss, EatssConfig};
use eatss_affine::tiling::TileConfig;
use eatss_bench::table::fmt_f;
use eatss_bench::{profiles, Table};
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;

const SPLITS: [f64; 4] = [0.0, 0.5, 0.67, 1.0];
const BENCHMARKS: [&str; 4] = ["gemm", "2mm", "mvt", "jacobi-2d"];

fn main() {
    println!("Figure 8: EATSS under shared-memory/L1 splits (vs default PPCG, same quota)\n");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let targets: Vec<(GpuArch, Dataset)> = match profiles::from_args(&args, "--profiles") {
        Some(archs) => archs
            .into_iter()
            .map(|arch| {
                let dataset = profiles::dataset_for(&arch);
                (arch, dataset)
            })
            .collect(),
        None => vec![
            (GpuArch::ga100(), Dataset::ExtraLarge),
            (GpuArch::xavier(), Dataset::Standard),
        ],
    };
    for (arch, dataset) in targets {
        println!("--- {} ---", arch.name);
        let eatss = Eatss::new(arch.clone());
        let mut t = Table::new(vec![
            "benchmark",
            "SM split",
            "EATSS tiles",
            "speedup",
            "norm. energy",
        ]);
        for name in BENCHMARKS {
            let b = eatss_kernels::by_name(name).expect("registered benchmark");
            let program = b.program().expect("benchmark parses");
            let sizes = b.sizes(dataset);
            for split in SPLITS {
                // Solve under both §IV-F cap interpretations and keep the
                // faster measured one (the sweep's behaviour).
                let candidates = [eatss::ThreadBlockCap::Virtual, eatss::ThreadBlockCap::Strict]
                    .into_iter()
                    .filter_map(|cap| {
                        let config = EatssConfig {
                            cap,
                            ..EatssConfig::with_split(split)
                        };
                        let solution = eatss.select_tiles(&program, &sizes, &config).ok()?;
                        let report = eatss
                            .evaluate(&program, &solution.tiles, &sizes, &config)
                            .ok()?;
                        report.valid.then_some((config, solution, report))
                    })
                    .collect::<Vec<_>>();
                let Some((config, solution, ours)) = candidates
                    .into_iter()
                    .max_by(|a, b| a.2.gflops.partial_cmp(&b.2.gflops).expect("finite"))
                else {
                    t.row(vec![
                        name.into(),
                        format!("{:.0}%", split * 100.0),
                        "infeasible".into(),
                        String::new(),
                        String::new(),
                    ]);
                    continue;
                };
                let default = eatss
                    .evaluate(
                        &program,
                        &TileConfig::ppcg_default(program.max_depth()),
                        &sizes,
                        &config,
                    )
                    .expect("default tiles compile");
                let (speedup, energy) = if ours.valid && default.valid {
                    (
                        default.time_s / ours.time_s,
                        ours.energy_j / default.energy_j,
                    )
                } else {
                    (f64::NAN, f64::NAN)
                };
                t.row(vec![
                    name.into(),
                    format!("{:.0}%", split * 100.0),
                    solution.tiles.to_string(),
                    fmt_f(speedup),
                    fmt_f(energy),
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!(
        "Shape check (paper): 100% shared memory is not always best; BLAS3 \
         favors more shared memory, low-dimensional kernels (mvt) often \
         favor 0%/50%."
    );
}
