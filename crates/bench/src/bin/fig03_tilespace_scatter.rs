//! **Figure 3** — performance and energy distribution of the 2mm tile
//! space on both the GA100 and the Xavier, with the default-PPCG point
//! (`P`) marked. Printed as summary statistics plus a coarse ASCII
//! scatter (performance vs energy deciles).

use eatss_bench::table::fmt_f;
use eatss_bench::{explore::summarize, explore_space, Table};
use eatss_gpusim::{stats, GpuArch};
use eatss_kernels::Dataset;
use eatss_ppcg::{CompileOptions, TileSpace};

fn main() {
    println!("Figure 3: 2mm tile-space performance/energy on GA100 and Xavier\n");
    for (arch, dataset) in [
        (GpuArch::ga100(), Dataset::ExtraLarge),
        (GpuArch::xavier(), Dataset::Standard),
    ] {
        let b = eatss_kernels::by_name("2mm").expect("2mm registered");
        let program = b.program().expect("2mm parses");
        let sizes = b.sizes(dataset);
        let opts = CompileOptions::with_split(&arch, 0.5, 8);
        let space = TileSpace::evaluation_grid(3);
        let variants = explore_space(&arch, &program, &sizes, &space, &opts);
        let s = summarize(&arch, &program, &sizes, &variants, &opts);
        println!("--- {} ({} variants, {} valid) ---", arch.name, s.total, s.valid);
        let mut t = Table::new(vec!["metric", "min", "median", "max", "P (default)"]);
        let gf: Vec<f64> = variants
            .iter()
            .filter(|v| v.report.valid)
            .map(|v| v.report.gflops)
            .collect();
        let en: Vec<f64> = variants
            .iter()
            .filter(|v| v.report.valid)
            .map(|v| v.report.energy_j)
            .collect();
        t.row(vec![
            "GFLOP/s".into(),
            fmt_f(stats::percentile(&gf, 0.0)),
            fmt_f(stats::median(&gf)),
            fmt_f(stats::percentile(&gf, 100.0)),
            fmt_f(s.default.gflops),
        ]);
        t.row(vec![
            "energy (J)".into(),
            fmt_f(stats::percentile(&en, 0.0)),
            fmt_f(stats::median(&en)),
            fmt_f(stats::percentile(&en, 100.0)),
            fmt_f(s.default.energy_j),
        ]);
        println!("{}", t.render());

        // ASCII scatter: normalized performance (x) vs energy (y), 2D
        // histogram of deciles; 'P' marks the default's cell.
        let (gmin, gmax) = (stats::percentile(&gf, 0.0), stats::percentile(&gf, 100.0));
        let (emin, emax) = (stats::percentile(&en, 0.0), stats::percentile(&en, 100.0));
        let bucket = |v: f64, lo: f64, hi: f64| -> usize {
            if hi <= lo {
                0
            } else {
                (((v - lo) / (hi - lo) * 10.0) as usize).min(9)
            }
        };
        let mut grid = [[0usize; 10]; 10];
        for v in variants.iter().filter(|v| v.report.valid) {
            grid[bucket(v.report.energy_j, emin, emax)]
                [bucket(v.report.gflops, gmin, gmax)] += 1;
        }
        let p_cell = (
            bucket(s.default.energy_j, emin, emax),
            bucket(s.default.gflops, gmin, gmax),
        );
        println!("energy ↓ / performance → (counts; P = default PPCG)");
        for (r, row) in grid.iter().enumerate() {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, &n)| {
                    if (r, c) == p_cell {
                        format!("{:>4}P", n)
                    } else if n == 0 {
                        "    .".to_string()
                    } else {
                        format!("{n:>5}")
                    }
                })
                .collect();
            println!("  {}", cells.join(""));
        }
        println!();
    }
}
