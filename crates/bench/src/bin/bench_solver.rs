//! Engine-comparison benchmark: the trail/worklist/branch-and-bound
//! solver core against the retained naive reference engine
//! ([`eatss_smt::reference`]) on full PolyBench formulations, emitting
//! `BENCH_solver.json` with per-kernel wall-clock and node counts plus
//! aggregate ratios.
//!
//! Both engines maximize the *same* §IV formulation (built twice from the
//! same generator inputs), and the optima are cross-checked — a mismatch
//! is a bug, not a benchmark artifact.
//!
//! A third, **sweep-mode** section measures warm-started solving: each
//! feasible kernel's formulation is solved across several warp-fraction
//! variants cold (every solve from scratch) and warm (one [`WarmStart`]
//! threaded through the chain, seeding incumbents and replaying learned
//! cuts). Optima and tiles are asserted identical variant-by-variant —
//! warm starts are an accelerator, never an answer-changer.
//!
//! Usage: `bench_solver [--fast] [--out PATH]`
//!   --fast   run a 4-kernel subset (CI smoke)
//!   --out    output path (default: BENCH_solver.json)

use eatss::{EatssConfig, EatssModel, EatssSolution, ModelGenerator};
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;
use eatss_smt::{reference, WarmStart};
use std::fmt::Write as _;
use std::time::Instant;

struct EngineSample {
    wall_s: f64,
    nodes: u64,
    solver_calls: u32,
    best: Option<i64>,
}

struct KernelRow {
    name: String,
    fast: EngineSample,
    reference: EngineSample,
}

impl KernelRow {
    /// The formulation has no model at all (e.g. `fdtd-apml`, whose
    /// constraints are unsatisfiable on GA100). Both engines agree
    /// (cross-checked below), so the fast engine's verdict suffices.
    fn infeasible(&self) -> bool {
        self.fast.best.is_none()
    }
}

fn build_model(b: &eatss_kernels::Benchmark) -> Option<EatssModel> {
    build_model_with(b, &EatssConfig::default())
}

fn build_model_with(b: &eatss_kernels::Benchmark, cfg: &EatssConfig) -> Option<EatssModel> {
    let program = b.program().ok()?;
    let sizes = b.sizes(Dataset::ExtraLarge);
    ModelGenerator::new(&GpuArch::ga100(), cfg.clone())
        .build(&program, Some(&sizes))
        .ok()
}

/// The sweep-mode formulation variants: one §IV model per warp fraction,
/// descending — the same shape `eatss-core`'s sweep chains use, so hints
/// transfer from the tightest formulation outward.
const SWEEP_WARP_FRACTIONS: [f64; 4] = [0.5, 0.4, 0.3, 0.25];

struct SweepRow {
    name: String,
    variants: usize,
    cold_wall_s: f64,
    warm_wall_s: f64,
    cold_nodes: u64,
    warm_nodes: u64,
    warm_seeds: u64,
    warm_cut_hits: u64,
}

/// Solves one kernel's formulation variants cold and warm (shared
/// [`WarmStart`]), asserting identical optima and tiles per variant.
/// Model building stays outside the timed regions; the minimum wall per
/// mode across repetitions is reported.
fn run_sweep(b: &eatss_kernels::Benchmark) -> Option<SweepRow> {
    let cfgs: Vec<EatssConfig> = SWEEP_WARP_FRACTIONS
        .iter()
        .map(|&wf| EatssConfig {
            warp_fraction: wf,
            ..EatssConfig::default()
        })
        .collect();
    // Every variant must build and solve feasibly to enter the sweep
    // comparison (an infeasible variant measures refutation, not reuse).
    let cold_solutions: Vec<EatssSolution> = cfgs
        .iter()
        .map(|cfg| build_model_with(b, cfg)?.solve().ok())
        .collect::<Option<Vec<_>>>()?;

    let mut best_cold = f64::INFINITY;
    let mut best_warm = f64::INFINITY;
    let mut row = None;
    for _ in 0..REPS {
        let cold_models: Vec<EatssModel> = cfgs
            .iter()
            .map(|cfg| build_model_with(b, cfg).expect("model rebuilds"))
            .collect();
        let started = Instant::now();
        let cold: Vec<EatssSolution> = cold_models
            .into_iter()
            .map(|m| m.solve().expect("cold solve"))
            .collect();
        let cold_wall_s = started.elapsed().as_secs_f64();

        let warm_models: Vec<EatssModel> = cfgs
            .iter()
            .map(|cfg| build_model_with(b, cfg).expect("model rebuilds"))
            .collect();
        let mut hints = WarmStart::new();
        let started = Instant::now();
        let warm: Vec<EatssSolution> = warm_models
            .into_iter()
            .map(|m| m.solve_warm(&mut hints).expect("warm solve"))
            .collect();
        let warm_wall_s = started.elapsed().as_secs_f64();

        for ((c, w), baseline) in cold.iter().zip(&warm).zip(&cold_solutions) {
            assert_eq!(
                (c.objective, c.tiles.sizes()),
                (w.objective, w.tiles.sizes()),
                "{}: warm solve changed the answer",
                b.name
            );
            assert_eq!(
                (c.objective, c.tiles.sizes()),
                (baseline.objective, baseline.tiles.sizes()),
                "{}: cold solve not reproducible",
                b.name
            );
        }

        if cold_wall_s < best_cold {
            best_cold = cold_wall_s;
        }
        if warm_wall_s < best_warm {
            best_warm = warm_wall_s;
            row = Some(SweepRow {
                name: b.name.to_owned(),
                variants: cfgs.len(),
                cold_wall_s: 0.0,
                warm_wall_s,
                cold_nodes: cold.iter().map(|s| s.stats.nodes).sum(),
                warm_nodes: warm.iter().map(|s| s.stats.nodes).sum(),
                warm_seeds: warm.iter().map(|s| s.stats.warm_seeds).sum(),
                warm_cut_hits: warm.iter().map(|s| s.stats.warm_cut_hits).sum(),
            });
        }
    }
    let mut row = row.expect("at least one rep");
    row.cold_wall_s = best_cold;
    Some(row)
}

/// Wall-clock repetitions per engine per kernel; the minimum is reported
/// (single-shot solves are microsecond-scale and allocator-noise bound).
const REPS: usize = 7;

fn run_fast(b: &eatss_kernels::Benchmark) -> EngineSample {
    let mut best_wall = f64::INFINITY;
    let mut sample = None;
    for _ in 0..REPS {
        let (mut solver, objective) = build_model(b).expect("model rebuilds").into_parts();
        let started = Instant::now();
        let outcome = solver.maximize(&objective).expect("fast maximize");
        let wall_s = started.elapsed().as_secs_f64();
        if wall_s < best_wall {
            best_wall = wall_s;
            sample = Some(EngineSample {
                wall_s,
                nodes: solver.stats().nodes,
                solver_calls: outcome.solver_calls,
                best: outcome.best,
            });
        }
    }
    sample.expect("at least one rep")
}

fn run_reference(b: &eatss_kernels::Benchmark) -> EngineSample {
    let mut best_wall = f64::INFINITY;
    let mut sample = None;
    for _ in 0..REPS {
        let (solver, objective) = build_model(b).expect("model rebuilds").into_parts();
        let started = Instant::now();
        let outcome = reference::maximize(&solver, &objective).expect("reference maximize");
        let wall_s = started.elapsed().as_secs_f64();
        if wall_s < best_wall {
            best_wall = wall_s;
            sample = Some(EngineSample {
                wall_s,
                nodes: outcome.nodes,
                solver_calls: outcome.solver_calls,
                best: outcome.best,
            });
        }
    }
    sample.expect("at least one rep")
}

fn json_opt(v: Option<i64>) -> String {
    v.map_or_else(|| "null".to_owned(), |x| x.to_string())
}

fn engine_json(s: &EngineSample) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"nodes\": {}, \"solver_calls\": {}, \"best\": {}}}",
        s.wall_s,
        s.nodes,
        s.solver_calls,
        json_opt(s.best)
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast_mode = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_solver.json".to_owned());

    let mut kernels: Vec<_> = eatss_kernels::all()
        .into_iter()
        .filter(|b| b.polybench)
        .collect();
    if fast_mode {
        kernels.truncate(4);
    }

    println!(
        "solver-core engine comparison over {} PolyBench formulations (GA100, XL)\n",
        kernels.len()
    );

    let mut rows = Vec::new();
    for b in &kernels {
        if build_model(b).is_none() {
            println!("{:<12} skipped (model build failed)", b.name);
            continue;
        }
        let fast = run_fast(b);
        let reference = run_reference(b);
        assert_eq!(
            fast.best, reference.best,
            "engines disagree on the optimum for {}",
            b.name
        );
        println!(
            "{:<12} fast: {:>8} nodes {:>9.4} s | reference: {:>8} nodes {:>9.4} s | x{:.1} nodes, x{:.1} wall",
            b.name,
            fast.nodes,
            fast.wall_s,
            reference.nodes,
            reference.wall_s,
            reference.nodes as f64 / fast.nodes.max(1) as f64,
            reference.wall_s / fast.wall_s.max(1e-9),
        );
        rows.push(KernelRow {
            name: b.name.to_owned(),
            fast,
            reference,
        });
    }

    println!();
    let mut sweep_rows = Vec::new();
    for b in &kernels {
        let Some(row) = run_sweep(b) else {
            println!("{:<12} sweep skipped (variant infeasible or unbuildable)", b.name);
            continue;
        };
        println!(
            "{:<12} sweep cold: {:>9.4} s {:>8} nodes | warm: {:>9.4} s {:>8} nodes | x{:.2} wall, {} seed(s), {} cut hit(s)",
            row.name,
            row.cold_wall_s,
            row.cold_nodes,
            row.warm_wall_s,
            row.warm_nodes,
            row.cold_wall_s / row.warm_wall_s.max(1e-9),
            row.warm_seeds,
            row.warm_cut_hits,
        );
        sweep_rows.push(row);
    }

    // Aggregate ratios cover feasible kernels only: an infeasible
    // formulation (e.g. fdtd-apml) measures refutation speed, not
    // optimization speed, and would skew the engine comparison.
    let feasible: Vec<&KernelRow> = rows.iter().filter(|r| !r.infeasible()).collect();
    let total = |f: &dyn Fn(&KernelRow) -> f64| feasible.iter().map(|r| f(r)).sum::<f64>();
    let fast_nodes = total(&|r| r.fast.nodes as f64);
    let ref_nodes = total(&|r| r.reference.nodes as f64);
    let fast_wall = total(&|r| r.fast.wall_s);
    let ref_wall = total(&|r| r.reference.wall_s);
    let node_ratio = ref_nodes / fast_nodes.max(1.0);
    let wall_ratio = ref_wall / fast_wall.max(1e-9);

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"solver_core\",\n  \"mode\": ");
    let _ = write!(
        json,
        "\"{}\",\n  \"provenance\": {},\n  \"kernels\": [\n",
        if fast_mode { "fast" } else { "full" },
        eatss_trace::Provenance::collect(Some(1)).to_json()
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"infeasible\": {}, \"fast\": {}, \"reference\": {}, \"node_ratio\": {:.3}, \"wall_ratio\": {:.3}}}{}",
            r.name,
            r.infeasible(),
            engine_json(&r.fast),
            engine_json(&r.reference),
            r.reference.nodes as f64 / r.fast.nodes.max(1) as f64,
            r.reference.wall_s / r.fast.wall_s.max(1e-9),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"sweep\": {\n    \"variants_per_kernel\": ");
    let sweep_cold: f64 = sweep_rows.iter().map(|r| r.cold_wall_s).sum();
    let sweep_warm: f64 = sweep_rows.iter().map(|r| r.warm_wall_s).sum();
    let _ = write!(json, "{},\n    \"kernels\": [\n", SWEEP_WARP_FRACTIONS.len());
    for (i, r) in sweep_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"name\": \"{}\", \"variants\": {}, \"cold_wall_s\": {:.6}, \"warm_wall_s\": {:.6}, \"wall_ratio\": {:.3}, \"cold_nodes\": {}, \"warm_nodes\": {}, \"warm_seeds\": {}, \"warm_cut_hits\": {}}}{}",
            r.name,
            r.variants,
            r.cold_wall_s,
            r.warm_wall_s,
            r.cold_wall_s / r.warm_wall_s.max(1e-9),
            r.cold_nodes,
            r.warm_nodes,
            r.warm_seeds,
            r.warm_cut_hits,
            if i + 1 == sweep_rows.len() { "" } else { "," }
        );
    }
    let _ = write!(
        json,
        "    ],\n    \"aggregate\": {{\"kernels\": {}, \"cold_wall_s\": {:.6}, \"warm_wall_s\": {:.6}, \"wall_ratio\": {:.3}, \"warm_seeds\": {}, \"warm_cut_hits\": {}}}\n  }},\n",
        sweep_rows.len(),
        sweep_cold,
        sweep_warm,
        sweep_cold / sweep_warm.max(1e-9),
        sweep_rows.iter().map(|r| r.warm_seeds).sum::<u64>(),
        sweep_rows.iter().map(|r| r.warm_cut_hits).sum::<u64>(),
    );
    let _ = write!(
        json,
        "  \"aggregate\": {{\"feasible_kernels\": {}, \"fast_nodes\": {}, \"reference_nodes\": {}, \"node_ratio\": {:.3}, \"fast_wall_s\": {:.6}, \"reference_wall_s\": {:.6}, \"wall_ratio\": {:.3}}}\n}}\n",
        feasible.len(),
        fast_nodes as u64,
        ref_nodes as u64,
        node_ratio,
        fast_wall,
        ref_wall,
        wall_ratio
    );

    std::fs::write(&out_path, &json).expect("write BENCH_solver.json");
    println!(
        "\naggregate: {} vs {} nodes (x{:.1}), {:.4} s vs {:.4} s wall (x{:.1})",
        fast_nodes as u64, ref_nodes as u64, node_ratio, fast_wall, ref_wall, wall_ratio
    );
    println!(
        "sweep aggregate: cold {:.4} s vs warm {:.4} s (x{:.2}) over {} kernel(s)",
        sweep_cold,
        sweep_warm,
        sweep_cold / sweep_warm.max(1e-9),
        sweep_rows.len()
    );
    println!("wrote {out_path}");
}
