//! **Extension study (§IV-I)** — the paper's model "enables one to
//! easily switch between single and double precision" via the
//! `FP_factor` scaling. This experiment selects tiles under both
//! precisions and shows how the selections and their measurements
//! diverge: FP32 halves the element width (doubling the capacity
//! constraints' element budgets) and halves the register pressure, so
//! FP32 selections use larger tiles and reach higher throughput.

use eatss::{Eatss, EatssConfig, Precision};
use eatss_bench::table::fmt_f;
use eatss_bench::Table;
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;

fn main() {
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    println!("Extension (§IV-I): FP32 vs FP64 tile selection on GA100\n");
    let mut t = Table::new(vec![
        "benchmark",
        "precision",
        "tiles",
        "GFLOP/s",
        "W",
        "J",
        "PPW",
    ]);
    for name in ["gemm", "covariance", "jacobi-2d", "mttkrp"] {
        let b = eatss_kernels::by_name(name).expect("registered benchmark");
        let program = b.program().expect("benchmark parses");
        let sizes = b.sizes(Dataset::ExtraLarge);
        for precision in [Precision::F64, Precision::F32] {
            let config = EatssConfig {
                precision,
                warp_fraction: if program.max_depth() > 3 { 0.125 } else { 0.5 },
                ..EatssConfig::default()
            };
            match eatss.select_tiles(&program, &sizes, &config) {
                Ok(solution) => {
                    let report = eatss
                        .evaluate(&program, &solution.tiles, &sizes, &config)
                        .expect("selection compiles");
                    t.row(vec![
                        name.into(),
                        format!("{precision:?}"),
                        solution.tiles.to_string(),
                        fmt_f(report.gflops),
                        fmt_f(report.avg_power_w),
                        fmt_f(report.energy_j),
                        fmt_f(report.ppw),
                    ]);
                }
                Err(e) => t.row(vec![
                    name.into(),
                    format!("{precision:?}"),
                    format!("infeasible: {e}"),
                ]),
            }
        }
    }
    println!("{}", t.render());
    println!(
        "Shape check: FP32 halves the per-element capacity and register \
         costs (FP_factor 1 vs 2), so its selections admit larger data \
         tiles and land at higher GFLOP/s and PPW (the FP32 peak is also \
         2x the FP64 peak)."
    );
}
