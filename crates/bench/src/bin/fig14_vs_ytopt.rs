//! **Figure 14** — EATSS against the *ytopt* Bayesian autotuner baseline
//! on the A100 (GA100): speedup (> 1 better) and normalized energy
//! (< 1 better) of EATSS relative to the ytopt-selected variant, plus the
//! tuning-time comparison of §V-H (ytopt: ~17 minutes for 3-deep nests;
//! EATSS+PPCG: seconds).

use eatss::sweep::{PAPER_SPLITS, PAPER_WARP_FRACTIONS};
use eatss::Eatss;
use eatss_autotune::{Autotuner, TuneOptions, OPENMP_OFFLOAD_PENALTY};
use eatss_bench::table::fmt_f;
use eatss_bench::Table;
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;
use eatss_ppcg::TileSpace;

fn main() {
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    println!("Figure 14: EATSS vs ytopt (Bayesian autotuner over OpenMP offload) on A100\n");
    let mut t = Table::new(vec![
        "benchmark",
        "ytopt tiles",
        "ytopt GF (OpenMP)",
        "EATSS GF",
        "speedup",
        "norm. energy",
        "ytopt tuning (min)",
        "EATSS solve (s)",
    ]);
    for name in ["2mm", "gemm", "heat-3d", "mttkrp"] {
        let b = eatss_kernels::by_name(name).expect("registered benchmark");
        let program = b.program().expect("benchmark parses");
        let sizes = b.sizes(Dataset::ExtraLarge);

        // --- EATSS ----------------------------------------------------
        let fractions: &[f64] = if b.polybench { &[0.5] } else { &PAPER_WARP_FRACTIONS };
        let sweep = eatss
            .sweep(&program, &sizes, &PAPER_SPLITS, fractions)
            .expect("a feasible configuration");
        let best = sweep.best_by_ppw().expect("a valid EATSS point");
        let solve_s: f64 = sweep
            .points
            .iter()
            .map(|p| p.solution.solve_time.as_secs_f64())
            .sum();

        // --- ytopt ----------------------------------------------------
        // The tuner maximizes measured GFLOP/s over the tile space; its
        // kernels run through OpenMP offload, which costs a constant
        // throughput factor relative to PPCG CUDA (§V-H).
        let config = best.config.clone();
        let space = TileSpace::evaluation_grid(program.max_depth());
        let mut tuner = Autotuner::new(TuneOptions {
            budget: 50,
            seed: 2024,
            seconds_per_eval: 20.0,
            ..TuneOptions::default()
        });
        let tuned = tuner.tune(&space, |tiles| {
            eatss
                .evaluate(&program, tiles, &sizes, &config)
                .ok()
                .filter(|r| r.valid)
                .map(|r| r.gflops)
        });
        let Some(ytiles) = tuned.best_tiles.clone() else {
            t.row(vec![name.into(), "no valid variant".into()]);
            continue;
        };
        let yreport = eatss
            .evaluate(&program, &ytiles, &sizes, &config)
            .expect("tuned tiles compile");
        let ytopt_gflops = yreport.gflops * OPENMP_OFFLOAD_PENALTY;
        let ytopt_time = yreport.time_s / OPENMP_OFFLOAD_PENALTY;
        let ytopt_energy = yreport.avg_power_w * ytopt_time;

        t.row(vec![
            name.into(),
            ytiles.to_string(),
            fmt_f(ytopt_gflops),
            fmt_f(best.report.gflops),
            fmt_f(ytopt_time / best.report.time_s),
            fmt_f(best.report.energy_j / ytopt_energy),
            fmt_f(tuned.tuning_seconds / 60.0),
            fmt_f(solve_s),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check (paper): EATSS beats the OpenMP-offload ytopt variants \
         in both speedup and energy, and the tuning time drops from ~17 \
         minutes to seconds."
    );
}
