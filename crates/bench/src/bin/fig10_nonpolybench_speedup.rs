//! **Figure 10** — speedup and normalized energy of EATSS on the
//! non-Polybench kernels (conv-2d, heat-3d, mttkrp) on the GA100,
//! relative to default PPCG with the same shared-memory quota, across
//! warp fractions {0.125, 0.25, 0.5, 1.0} and shared-memory levels
//! {0%, 50%}. Missing configurations are infeasible (all tile sizes
//! would need to be multiples of the full alignment factor). The paper
//! reports up to 4.8x (conv-2d), 6.3x (heat-3d) and 2.0x (mttkrp).
//!
//! `--profile NAME|PATH` retargets the study from the GA100 to any
//! builtin or on-disk device profile (dataset chosen by SM count).

use eatss::{Eatss, EatssConfig};
use eatss_affine::tiling::TileConfig;
use eatss_bench::table::fmt_f;
use eatss_bench::{profiles, Table};
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (arch, dataset) = match profiles::from_args(&args, "--profile") {
        Some(mut archs) => {
            if archs.len() != 1 {
                eprintln!("--profile takes exactly one device");
                std::process::exit(2);
            }
            let arch = archs.remove(0);
            let dataset = profiles::dataset_for(&arch);
            (arch, dataset)
        }
        None => (GpuArch::ga100(), Dataset::ExtraLarge),
    };
    let eatss = Eatss::new(arch.clone());
    println!(
        "Figure 10: non-Polybench kernels on {} (vs default PPCG, same quota)\n",
        arch.name
    );
    println!(
        "note: PPCG ignores the innermost tile when depth > 3 (that \
         dimension runs untiled, the paper's overline)\n"
    );
    for b in eatss_kernels::case_study() {
        let program = b.program().expect("benchmark parses");
        let sizes = b.sizes(dataset);
        let mut t = Table::new(vec![
            "warp frac",
            "SM split",
            "tiles",
            "speedup",
            "norm. energy",
        ]);
        let mut best: Option<(f64, f64, TileConfig)> = None;
        let mut evaluated = 0;
        for split in [0.0, 0.5] {
            for frac in [0.125, 0.25, 0.5, 1.0] {
              for cap in [eatss::ThreadBlockCap::Virtual, eatss::ThreadBlockCap::Strict] {
                let config = EatssConfig {
                    split_factor: split,
                    warp_fraction: frac,
                    cap,
                    ..EatssConfig::default()
                };
                match eatss.select_tiles(&program, &sizes, &config) {
                    Ok(solution) => {
                        let ours = eatss
                            .evaluate(&program, &solution.tiles, &sizes, &config)
                            .expect("EATSS tiles compile");
                        let default = eatss
                            .evaluate(
                                &program,
                                &TileConfig::ppcg_default(program.max_depth()),
                                &sizes,
                                &config,
                            )
                            .expect("default compiles");
                        if !ours.valid || !default.valid {
                            t.row(vec![
                                format!("{frac}"),
                                format!("{:.0}%", split * 100.0),
                                solution.tiles.to_string(),
                                "unexecutable".into(),
                                String::new(),
                            ]);
                            continue;
                        }
                        evaluated += 1;
                        let speedup = default.time_s / ours.time_s;
                        let energy = ours.energy_j / default.energy_j;
                        if best.as_ref().map(|b| speedup > b.0).unwrap_or(true) {
                            best = Some((speedup, energy, solution.tiles.clone()));
                        }
                        t.row(vec![
                            format!("{frac} ({cap:?})"),
                            format!("{:.0}%", split * 100.0),
                            solution.tiles.to_string(),
                            fmt_f(speedup),
                            fmt_f(energy),
                        ]);
                    }
                    Err(_) => {
                        t.row(vec![
                            format!("{frac} ({cap:?})"),
                            format!("{:.0}%", split * 100.0),
                            "infeasible".into(),
                            String::new(),
                            String::new(),
                        ]);
                    }
                }
              }
            }
        }
        println!("--- {} ({} feasible configurations) ---", b.name, evaluated);
        println!("{}", t.render());
        if let Some((speedup, energy, tiles)) = best {
            println!(
                "best: {}x speedup, {} normalized energy, tiles {}\n",
                fmt_f(speedup),
                fmt_f(energy),
                tiles
            );
        }
    }
    println!(
        "Shape check (paper): overall speedups of 4.8x (conv-2d), 6.3x \
         (heat-3d), 2.0x (mttkrp), with matching energy improvements."
    );
}
