//! **Figure 13** — performance and average power as a function of input
//! size for the non-Polybench kernels on the GA100, comparing EATSS with
//! the PPCG baseline; PPW highlighted.

use eatss::sweep::PAPER_WARP_FRACTIONS;
use eatss::Eatss;
use eatss_affine::tiling::TileConfig;
use eatss_bench::table::fmt_f;
use eatss_bench::Table;
use eatss_gpusim::GpuArch;

fn main() {
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    println!("Figure 13: non-Polybench performance & power vs input size (GA100)\n");
    for (name, param, ns) in [
        ("conv-2d", "spatial", vec![96, 128, 192, 256, 384]),
        ("heat-3d", "N", vec![96, 128, 160, 200, 256]),
        ("mttkrp", "order", vec![128, 192, 256, 320]),
    ] {
        let b = eatss_kernels::by_name(name).expect("registered benchmark");
        let program = b.program().expect("benchmark parses");
        let ref_sizes = b.sizes(eatss_kernels::Dataset::ExtraLarge);
        let sweep = eatss
            .sweep(&program, &ref_sizes, &[0.0, 0.5], &PAPER_WARP_FRACTIONS)
            .expect("a feasible configuration");
        let best = sweep.best_by_ppw().expect("a valid EATSS point");
        let config = best.config.clone();
        let tiles = best.solution.tiles.clone();
        let default = TileConfig::ppcg_default(program.max_depth());

        let mut t = Table::new(vec![
            param,
            "def GF",
            "def W",
            "def PPW",
            "eatss GF",
            "eatss W",
            "eatss PPW",
        ]);
        for n in ns {
            // Scale only the spatial/problem-order parameters; filter
            // sizes and time steps stay at their reference values.
            let mut sizes = ref_sizes.clone();
            match name {
                "conv-2d" => {
                    sizes.set("H", n);
                    sizes.set("W", n);
                }
                "heat-3d" => sizes.set("N", n),
                _ => {
                    for p in ["I", "J", "K", "L"] {
                        sizes.set(p, n);
                    }
                }
            }
            let d = eatss
                .evaluate(&program, &default, &sizes, &config)
                .expect("default compiles");
            let u = eatss
                .evaluate(&program, &tiles, &sizes, &config)
                .expect("EATSS tiles compile");
            let fmt_or = |r: &eatss_gpusim::SimReport, f: fn(&eatss_gpusim::SimReport) -> f64| {
                if r.valid {
                    fmt_f(f(r))
                } else {
                    "n/a".into()
                }
            };
            t.row(vec![
                n.to_string(),
                fmt_or(&d, |r| r.gflops),
                fmt_or(&d, |r| r.avg_power_w),
                fmt_or(&d, |r| r.ppw),
                fmt_or(&u, |r| r.gflops),
                fmt_or(&u, |r| r.avg_power_w),
                fmt_or(&u, |r| r.ppw),
            ]);
        }
        println!("--- {name} (EATSS tiles {tiles}) ---");
        println!("{}", t.render());
    }
    println!(
        "Shape check (paper): for conv-2d the EATSS PPW stays above the \
         PPCG baseline across input sizes."
    );
}
