//! **Table IV** — comparison against the vendor libraries: cuBLAS gemm
//! (GA100 and Xavier) and cuDNN conv-2d (GA100). Vendor numbers come from
//! the roofline models in `eatss-vendor` (tensor cores enabled); PPCG
//! median and EATSS numbers come from the simulated tile spaces.

use eatss::sweep::{PAPER_SPLITS, PAPER_WARP_FRACTIONS};
use eatss::Eatss;
use eatss_bench::table::fmt_f;
use eatss_bench::Table;
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;
use eatss_ppcg::TileSpace;
use eatss_vendor::{measure, VendorOp};

struct Column {
    label: String,
    vendor_ppw: f64,
    ppcg_median_ppw: f64,
    our_ppw: f64,
    vendor_energy: f64,
    ppcg_median_energy: f64,
    our_energy: f64,
    vendor_gflops: f64,
    ppcg_median_gflops: f64,
    our_gflops: f64,
}

fn column(
    label: &str,
    arch: GpuArch,
    dataset: Dataset,
    bench: &str,
    op: VendorOp,
    fractions: &[f64],
) -> Column {
    let b = eatss_kernels::by_name(bench).expect("registered benchmark");
    let program = b.program().expect("benchmark parses");
    let sizes = b.sizes(dataset);
    let eatss = Eatss::new(arch.clone());
    let sweep = eatss
        .sweep(&program, &sizes, &PAPER_SPLITS, fractions)
        .expect("a feasible configuration");
    let best = sweep.best_by_ppw().expect("a valid EATSS point");
    let opts = best.config.compile_options(&arch);
    // Table IV measurements follow the paper's methodology: every variant
    // is looped 100 times, so power is sampled at steady state (the
    // vendor model assumes the same looped benchmark).
    let ours = eatss::evaluate_program_repeated(&arch, &program, &best.solution.tiles, &sizes, &opts, 100)
        .expect("EATSS tiles compile");
    let space = TileSpace::evaluation_grid(program.max_depth());
    let measured: Vec<_> = space
        .iter()
        .filter_map(|tiles| {
            eatss::evaluate_program_repeated(&arch, &program, &tiles, &sizes, &opts, 100)
                .ok()
                .filter(|r| r.valid)
        })
        .collect();
    let median = |f: &dyn Fn(&eatss_gpusim::SimReport) -> f64| -> f64 {
        let vals: Vec<f64> = measured.iter().map(f).collect();
        eatss_gpusim::stats::median(&vals)
    };
    let vendor = measure(&arch, &op, 8);
    Column {
        label: label.to_string(),
        vendor_ppw: vendor.ppw,
        ppcg_median_ppw: median(&|r| r.ppw),
        our_ppw: ours.ppw,
        vendor_energy: vendor.energy_j,
        ppcg_median_energy: median(&|r| r.energy_j),
        our_energy: ours.energy_j,
        vendor_gflops: vendor.gflops,
        ppcg_median_gflops: median(&|r| r.gflops),
        our_gflops: ours.gflops,
    }
}

fn main() {
    println!("Table IV: comparison against cuBLAS / cuDNN (vendor roofline models)\n");
    let cols = vec![
        column(
            "cuBLAS gemm GA100",
            GpuArch::ga100(),
            Dataset::ExtraLarge,
            "gemm",
            VendorOp::Gemm { n: 4000 },
            &[0.5],
        ),
        column(
            "cuBLAS gemm Xavier",
            GpuArch::xavier(),
            Dataset::Standard,
            "gemm",
            VendorOp::Gemm { n: 1024 },
            &[0.5],
        ),
        column(
            "cuDNN conv-2d GA100",
            GpuArch::ga100(),
            Dataset::ExtraLarge,
            "conv-2d",
            VendorOp::Conv2d {
                h: 192,
                w: 192,
                r: 32,
                s: 32,
            },
            &PAPER_WARP_FRACTIONS,
        ),
    ];
    let mut t = Table::new(
        std::iter::once("Description".to_string())
            .chain(cols.iter().map(|c| c.label.clone()))
            .collect::<Vec<_>>(),
    );
    let row = |label: &str, f: &dyn Fn(&Column) -> f64| {
        std::iter::once(label.to_string())
            .chain(cols.iter().map(|c| fmt_f(f(c))))
            .collect::<Vec<_>>()
    };
    t.row(row("cuXXX Perf/Watt", &|c| c.vendor_ppw));
    t.row(row("PPCG Median Perf/Watt", &|c| c.ppcg_median_ppw));
    t.row(row("Our Perf/Watt", &|c| c.our_ppw));
    t.row(row("cuXXX Energy (J)", &|c| c.vendor_energy));
    t.row(row("PPCG Median Energy (J)", &|c| c.ppcg_median_energy));
    t.row(row("Our Energy (J)", &|c| c.our_energy));
    t.row(row("cuXXX GFLOP/s", &|c| c.vendor_gflops));
    t.row(row("PPCG Median GFLOP/s", &|c| c.ppcg_median_gflops));
    t.row(row("Our GFLOP/s", &|c| c.our_gflops));
    println!("{}", t.render());
    println!(
        "Shape check (paper): on the GA100, EATSS reaches a large fraction \
         of the tensor-core cuBLAS PPW (paper: 75%) and clearly beats the \
         PPCG median; on the Xavier EATSS exceeds the cuBLAS PPW \
         (paper: >2.1x)."
    );
    for c in &cols {
        println!(
            "  {}: our/vendor PPW = {}",
            c.label,
            fmt_f(c.our_ppw / c.vendor_ppw)
        );
    }
}
