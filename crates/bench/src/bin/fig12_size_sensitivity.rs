//! **Figure 12** — relationship of performance and average power with
//! input size for Polybench kernels (2mm, gemm, mvt, fdtd-2d) on the
//! GA100: EATSS best tiles vs default PPCG, with PPW highlighted.

use eatss::sweep::PAPER_SPLITS;
use eatss::Eatss;
use eatss_affine::tiling::TileConfig;
use eatss_bench::table::fmt_f;
use eatss_bench::Table;
use eatss_gpusim::GpuArch;

fn main() {
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    println!("Figure 12: performance & average power vs input size (GA100)\n");
    for (name, ns) in [
        ("2mm", vec![1000, 2000, 3000, 4000, 5000, 6000]),
        ("gemm", vec![1000, 2000, 3000, 4000, 5000, 6000, 7000]),
        ("mvt", vec![4000, 8000, 12000, 16000, 20000]),
        ("fdtd-2d", vec![1000, 1500, 2000, 2500, 3000]),
    ] {
        let b = eatss_kernels::by_name(name).expect("registered benchmark");
        let program = b.program().expect("benchmark parses");
        // EATSS tiles selected once at the reference (EXTRALARGE) size,
        // then reused across the sweep (the paper does not re-tune per
        // size; default PPCG likewise uses 32^d everywhere).
        let ref_sizes = b.sizes(eatss_kernels::Dataset::ExtraLarge);
        let sweep = eatss
            .sweep(&program, &ref_sizes, &PAPER_SPLITS, &[0.5])
            .expect("a feasible configuration");
        let best = sweep.best_by_ppw().expect("a valid EATSS point");
        let config = best.config.clone();
        let tiles = best.solution.tiles.clone();
        let default = TileConfig::ppcg_default(program.max_depth());

        let mut t = Table::new(vec![
            "N",
            "def GF",
            "def W",
            "def PPW",
            "eatss GF",
            "eatss W",
            "eatss PPW",
        ]);
        for n in ns {
            let sizes = b.sizes_uniform(n);
            let d = eatss
                .evaluate(&program, &default, &sizes, &config)
                .expect("default compiles");
            let u = eatss
                .evaluate(&program, &tiles, &sizes, &config)
                .expect("EATSS tiles compile");
            t.row(vec![
                n.to_string(),
                fmt_f(d.gflops),
                fmt_f(d.avg_power_w),
                fmt_f(d.ppw),
                fmt_f(u.gflops),
                fmt_f(u.avg_power_w),
                fmt_f(u.ppw),
            ]);
        }
        println!("--- {name} (EATSS tiles {tiles}) ---");
        println!("{}", t.render());
    }
    println!(
        "Shape check (paper): 2mm/gemm power saturates as the GPU fills; \
         mvt and fdtd-2d do not computationally saturate the GPU and stay \
         dominated by static power."
    );
}
