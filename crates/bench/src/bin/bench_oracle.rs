//! Execution-engine benchmark over the PolyBench oracle sweep, emitting
//! `BENCH_oracle.json` with per-kernel wall-clock and points/sec plus
//! aggregate ratios.
//!
//! Two comparisons, over the same oracle-sweep configurations:
//!
//! * **interp** (the headline aggregate): the compiled-plan interpreter
//!   fast path ([`eatss_affine::interp::run_program`]) against the
//!   retained tree-walker ([`eatss_affine::interp::reference`]), one
//!   whole-program interpretation per configuration — exactly the
//!   interpreter side of the differential oracle.
//! * **emulator**: the GPU emulator's plan engine
//!   ([`eatss_ppcg::ExecEngine::Plan`]) against its reference engine,
//!   one emulated launch sequence per configuration.
//!
//! Each comparison also runs a **batched** arm: the interpreter through
//! [`eatss_affine::interp::run_program_batch`] (one compile + one
//! execution shared across the sweep's identically seeded stores) and
//! the emulator through [`eatss_ppcg::execute_compiled_batch`] (compiled
//! plans shared across configurations by route signature). Batched arms
//! are timed against the same references and report both the ratio over
//! the reference and the speedup over the unbatched fast path.
//!
//! All sides of every comparison execute from identically seeded stores
//! and every run is cross-checked bitwise — a divergence is a bug, not a
//! benchmark artifact.
//!
//! Usage: `bench_oracle [--mode smoke|full] [--out PATH]`
//!   --mode smoke   4-kernel subset, tighter caps, 1 rep (CI smoke)
//!   --mode full    whole suite at the oracle-sweep caps (default)
//!   --out PATH     output path (default: BENCH_oracle.json)

use eatss::{Eatss, EatssConfig};
use eatss_affine::interp::{self, compare_stores, Store};
use eatss_affine::tiling::TileConfig;
use eatss_affine::{ProblemSizes, Program};
use eatss_bench::oracle::{bench_seed, pinned_configs, sweep_sizes, trips, OracleSweepOptions};
use eatss_gpusim::GpuArch;
use eatss_ppcg::oracle::{sample_tile_config, sweep_rng};
use eatss_ppcg::{
    execute_compiled, execute_compiled_batch, seed_store, CompileOptions, ExecEngine, ExecOptions,
    ExecStats, GpuMapping, Ppcg,
};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 0xEA75_50AC;

/// Wall-clock repetitions per engine per kernel; the minimum is reported.
fn reps(smoke: bool) -> usize {
    if smoke {
        1
    } else {
        5
    }
}

#[derive(Clone, Copy)]
struct EngineSample {
    wall_s: f64,
    /// Iteration points executed in the timed region.
    points: u64,
}

impl EngineSample {
    fn points_per_s(&self) -> f64 {
        self.points as f64 / self.wall_s.max(1e-9)
    }
}

#[derive(Clone, Copy)]
struct EnginePair {
    fast: EngineSample,
    reference: EngineSample,
}

impl EnginePair {
    fn wall_ratio(&self) -> f64 {
        self.reference.wall_s / self.fast.wall_s.max(1e-9)
    }
}

struct KernelRow {
    name: String,
    configs: usize,
    interp: EnginePair,
    emulator: EnginePair,
    /// Batched interpreter arm: fast = one `run_program_batch` over the
    /// sweep's stores, reference = the tree-walker per config.
    interp_batched: EnginePair,
    /// Batched emulator arm: fast = one `execute_compiled_batch`,
    /// reference = the reference engine per config.
    emulator_batched: EnginePair,
    /// What [`ExecEngine::Auto`] resolves to for this kernel's domain.
    auto_engine: &'static str,
}

/// A kernel whose compiled path is *slower* than its reference
/// (wall_ratio < 1.0) on one side of the comparison. These are exactly
/// the cases [`ExecEngine::Auto`] exists to avoid; the bench surfaces
/// them instead of letting them hide in the aggregate.
struct Regression {
    name: String,
    side: &'static str,
    wall_ratio: f64,
}

/// One mappable configuration, compiled once outside any timed region.
struct ConfigPlan {
    mappings: Vec<GpuMapping>,
}

/// What the emulator produced from one configuration (for cross-checking).
struct ConfigOutcome {
    store: Store,
    stats: ExecStats,
}

fn config_plans(
    program: &Program,
    sizes: &ProblemSizes,
    bench: &eatss_kernels::Benchmark,
    eatss: &Eatss,
    arch: &GpuArch,
    random: usize,
) -> Vec<ConfigPlan> {
    let trips = trips(program, sizes);
    let depth = program.max_depth();
    let mut tiles = pinned_configs(depth, &trips);
    let primes = [3i64, 5, 7, 11, 13];
    tiles.push((
        "primes".into(),
        TileConfig::new((0..depth).map(|d| primes[d % primes.len()]).collect()),
    ));
    if let Ok(solution) = eatss.select_tiles(
        program,
        &bench.sizes(eatss_kernels::Dataset::Standard),
        &EatssConfig::default(),
    ) {
        tiles.push(("EATSS".into(), solution.tiles));
    }
    let mut rng = sweep_rng(bench_seed(SEED, bench.name));
    for i in 0..random {
        tiles.push((format!("random#{i}"), sample_tile_config(&mut rng, &trips)));
    }

    let ppcg = Ppcg::new(arch.clone());
    tiles
        .into_iter()
        // Mapping rejections (too few tile sizes for a deeper kernel)
        // are not execution findings; both engines skip them alike.
        .filter_map(|(_, t)| {
            ppcg.compile(program, &t, sizes, &CompileOptions::default())
                .ok()
        })
        .map(|c| ConfigPlan {
            mappings: c.mappings,
        })
        .collect()
}

/// Runs every configuration through one emulator engine. Store seeding
/// stays outside the timed region.
fn run_emulator(
    program: &Program,
    sizes: &ProblemSizes,
    plans: &[ConfigPlan],
    engine: ExecEngine,
) -> (EngineSample, Vec<ConfigOutcome>) {
    let opts = ExecOptions {
        engine,
        ..ExecOptions::default()
    };
    let mut wall_s = 0.0;
    let mut points = 0u64;
    let mut outcomes = Vec::with_capacity(plans.len());
    for plan in plans {
        let mut store = seed_store(program, sizes, SEED).expect("store seeds");
        let started = Instant::now();
        let stats = execute_compiled(program, &plan.mappings, sizes, &mut store, &opts)
            .expect("emulated execution");
        wall_s += started.elapsed().as_secs_f64();
        points += stats.points;
        outcomes.push(ConfigOutcome { store, stats });
    }
    (EngineSample { wall_s, points }, outcomes)
}

/// Runs one whole-program interpretation per configuration — the
/// interpreter side of the differential oracle — through the compiled
/// fast path (`fast = true`) or the tree-walking reference.
fn run_interp(
    program: &Program,
    sizes: &ProblemSizes,
    configs: usize,
    points_per_config: u64,
    fast: bool,
) -> (EngineSample, Store) {
    let mut wall_s = 0.0;
    let mut last = None;
    for _ in 0..configs {
        let mut store = seed_store(program, sizes, SEED).expect("store seeds");
        let started = Instant::now();
        if fast {
            interp::run_program(program, sizes, &mut store)
        } else {
            interp::reference::run_program(program, sizes, &mut store)
        }
        .expect("interpretation");
        wall_s += started.elapsed().as_secs_f64();
        last = Some(store);
    }
    (
        EngineSample {
            wall_s,
            points: points_per_config * configs as u64,
        },
        last.expect("configs >= 1"),
    )
}

/// Runs every configuration through [`execute_compiled_batch`]: plans are
/// compiled once per distinct route signature and shared across the
/// batch. Store seeding stays outside the timed region.
fn run_emulator_batched(
    program: &Program,
    sizes: &ProblemSizes,
    plans: &[ConfigPlan],
) -> (EngineSample, Vec<ConfigOutcome>) {
    let opts = ExecOptions {
        engine: ExecEngine::Plan,
        ..ExecOptions::default()
    };
    let configs: Vec<Vec<GpuMapping>> = plans.iter().map(|p| p.mappings.clone()).collect();
    let mut stores: Vec<Store> = plans
        .iter()
        .map(|_| seed_store(program, sizes, SEED).expect("store seeds"))
        .collect();
    let started = Instant::now();
    let results = execute_compiled_batch(program, &configs, sizes, &mut stores, &opts);
    let wall_s = started.elapsed().as_secs_f64();
    let mut points = 0u64;
    let outcomes = stores
        .into_iter()
        .zip(results)
        .map(|(store, stats)| {
            let stats = stats.expect("emulated execution");
            points += stats.points;
            ConfigOutcome { store, stats }
        })
        .collect();
    (EngineSample { wall_s, points }, outcomes)
}

/// Runs the sweep's interpretations through one
/// [`interp::run_program_batch`] call: the execution plan compiles once
/// and stores whose inputs are bitwise-identical share one execution.
/// Store seeding stays outside the timed region.
fn run_interp_batched(
    program: &Program,
    sizes: &ProblemSizes,
    configs: usize,
    points_per_config: u64,
) -> (EngineSample, Vec<Store>) {
    let mut stores: Vec<Store> = (0..configs)
        .map(|_| seed_store(program, sizes, SEED).expect("store seeds"))
        .collect();
    let started = Instant::now();
    interp::run_program_batch(program, sizes, &mut stores).expect("interpretation");
    let wall_s = started.elapsed().as_secs_f64();
    (
        EngineSample {
            wall_s,
            points: points_per_config * configs as u64,
        },
        stores,
    )
}

/// Bitwise cross-check: the fast paths must reproduce the references
/// exactly — same stores, same counters.
fn cross_check(
    name: &str,
    emul_fast: &[ConfigOutcome],
    emul_ref: &[ConfigOutcome],
    emul_batched: &[ConfigOutcome],
    interp_fast: &Store,
    interp_ref: &Store,
    interp_batched: &[Store],
) {
    assert_eq!(
        emul_fast.len(),
        emul_ref.len(),
        "{name}: config count differs"
    );
    assert_eq!(
        emul_batched.len(),
        emul_ref.len(),
        "{name}: batched config count differs"
    );
    for (i, (f, r)) in emul_fast.iter().zip(emul_ref).enumerate() {
        assert_eq!(
            f.stats, r.stats,
            "{name} config {i}: execution counters diverge"
        );
        let emul = compare_stores(&f.store, &r.store);
        assert!(
            emul.is_empty(),
            "{name} config {i}: emulated stores diverge: {}",
            emul[0]
        );
    }
    for (i, (b, r)) in emul_batched.iter().zip(emul_ref).enumerate() {
        assert_eq!(
            b.stats, r.stats,
            "{name} config {i}: batched execution counters diverge"
        );
        let emul = compare_stores(&b.store, &r.store);
        assert!(
            emul.is_empty(),
            "{name} config {i}: batched emulated stores diverge: {}",
            emul[0]
        );
    }
    let itp = compare_stores(interp_fast, interp_ref);
    assert!(
        itp.is_empty(),
        "{name}: interpreted stores diverge: {}",
        itp[0]
    );
    for (i, b) in interp_batched.iter().enumerate() {
        let itp = compare_stores(b, interp_ref);
        assert!(
            itp.is_empty(),
            "{name} store {i}: batched interpretation diverges: {}",
            itp[0]
        );
    }
}

fn engine_json(s: &EngineSample) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"points_per_s\": {:.0}}}",
        s.wall_s,
        s.points_per_s()
    )
}

fn pair_json(p: &EnginePair) -> String {
    format!(
        "{{\"fast\": {}, \"reference\": {}, \"wall_ratio\": {:.3}}}",
        engine_json(&p.fast),
        engine_json(&p.reference),
        p.wall_ratio()
    )
}

/// Keeps the minimum-wall sample per side across repetitions.
fn keep_min(best: &mut Option<EnginePair>, sample: EnginePair) {
    match best {
        None => *best = Some(sample),
        Some(b) => {
            if sample.fast.wall_s < b.fast.wall_s {
                b.fast = sample.fast;
            }
            if sample.reference.wall_s < b.reference.wall_s {
                b.reference = sample.reference;
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "full".to_owned());
    let smoke = match mode.as_str() {
        "smoke" => true,
        "full" => false,
        other => {
            eprintln!("unknown mode `{other}` (expected smoke|full)");
            eprintln!("usage: bench_oracle [--mode smoke|full] [--out PATH]");
            std::process::exit(2);
        }
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_oracle.json".to_owned());

    let sweep_opts = if smoke {
        OracleSweepOptions {
            space_cap: 9,
            time_cap: 2,
            random: 2,
            ..OracleSweepOptions::default()
        }
    } else {
        OracleSweepOptions::default()
    };
    let mut kernels = eatss_kernels::polybench();
    if smoke {
        kernels.truncate(4);
    }

    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    println!(
        "execution-engine comparison over {} PolyBench kernels (oracle-sweep configurations)\n",
        kernels.len()
    );

    let mut rows = Vec::new();
    for b in &kernels {
        let program = b.program().expect("registry parses");
        let sizes = sweep_sizes(&program, &b.sizes(eatss_kernels::Dataset::Standard), &sweep_opts);
        let plans = config_plans(&program, &sizes, b, &eatss, &arch, sweep_opts.random);
        if plans.is_empty() {
            println!("{:<12} skipped (no mappable configuration)", b.name);
            continue;
        }

        let mut emulator: Option<EnginePair> = None;
        let mut interp_best: Option<EnginePair> = None;
        let mut emulator_batched: Option<EnginePair> = None;
        let mut interp_batched_best: Option<EnginePair> = None;
        let mut checked = false;
        for _ in 0..reps(smoke) {
            let (ef, emul_fast) = run_emulator(&program, &sizes, &plans, ExecEngine::Plan);
            let (er, emul_ref) = run_emulator(&program, &sizes, &plans, ExecEngine::Reference);
            let (eb, emul_batched) = run_emulator_batched(&program, &sizes, &plans);
            // The emulated domain is tile-independent, so every config
            // executes the same number of points.
            let per_config = emul_fast[0].stats.points;
            let (inf, interp_fast) = run_interp(&program, &sizes, plans.len(), per_config, true);
            let (inr, interp_ref) = run_interp(&program, &sizes, plans.len(), per_config, false);
            let (inb, interp_batch) =
                run_interp_batched(&program, &sizes, plans.len(), per_config);
            if !checked {
                cross_check(
                    b.name,
                    &emul_fast,
                    &emul_ref,
                    &emul_batched,
                    &interp_fast,
                    &interp_ref,
                    &interp_batch,
                );
                checked = true;
            }
            keep_min(
                &mut emulator,
                EnginePair {
                    fast: ef,
                    reference: er,
                },
            );
            keep_min(
                &mut interp_best,
                EnginePair {
                    fast: inf,
                    reference: inr,
                },
            );
            keep_min(
                &mut emulator_batched,
                EnginePair {
                    fast: eb,
                    reference: er,
                },
            );
            keep_min(
                &mut interp_batched_best,
                EnginePair {
                    fast: inb,
                    reference: inr,
                },
            );
        }
        let (emulator, interp, emulator_batched, interp_batched) = (
            emulator.expect("reps >= 1"),
            interp_best.expect("reps >= 1"),
            emulator_batched.expect("reps >= 1"),
            interp_batched_best.expect("reps >= 1"),
        );

        println!(
            "{:<12} interp x{:<4.1} ({:>8.4} s vs {:>8.4} s, batched {:>8.4} s x{:<5.1}) | emulator x{:<4.1} ({:>8.4} s vs {:>8.4} s, batched {:>8.4} s x{:<4.1})",
            b.name,
            interp.wall_ratio(),
            interp.fast.wall_s,
            interp.reference.wall_s,
            interp_batched.fast.wall_s,
            interp_batched.wall_ratio(),
            emulator.wall_ratio(),
            emulator.fast.wall_s,
            emulator.reference.wall_s,
            emulator_batched.fast.wall_s,
            emulator_batched.wall_ratio(),
        );
        rows.push(KernelRow {
            name: b.name.to_owned(),
            configs: plans.len(),
            interp,
            emulator,
            interp_batched,
            emulator_batched,
            auto_engine: if trips(&program, &sizes).iter().product::<i64>()
                >= eatss_ppcg::AUTO_PLAN_THRESHOLD_EMULATOR_POINTS
            {
                "plan"
            } else {
                "reference"
            },
        });
    }

    // Flag sub-1.0 wall_ratios the suite actually pays: the interp fast
    // path and the batched arms are unconditional, so any loss there is a
    // finding. The emulator's forced-`Plan` arm only reaches production
    // through `ExecEngine::Auto`, which routes domains below
    // `AUTO_PLAN_THRESHOLD_EMULATOR_POINTS` to the reference walker — a
    // forced-plan loss on such a domain is exactly the case Auto avoids,
    // so it is reported in the table but not flagged as a regression.
    let mut regressions = Vec::new();
    for r in &rows {
        for (side, pair, flagged) in [
            ("interp", &r.interp, true),
            ("emulator", &r.emulator, r.auto_engine == "plan"),
            ("interp_batched", &r.interp_batched, true),
            (
                "emulator_batched",
                &r.emulator_batched,
                r.auto_engine == "plan",
            ),
        ] {
            if flagged && pair.wall_ratio() < 1.0 {
                regressions.push(Regression {
                    name: r.name.clone(),
                    side,
                    wall_ratio: pair.wall_ratio(),
                });
            }
        }
    }
    for reg in &regressions {
        println!(
            "WARNING: {} {} wall_ratio {:.3} < 1.0 — compiled path slower than reference \
             (ExecEngine::Auto routes this domain to `{}`)",
            reg.name,
            reg.side,
            reg.wall_ratio,
            rows.iter()
                .find(|r| r.name == reg.name)
                .map_or("?", |r| r.auto_engine),
        );
    }

    let sum = |f: &dyn Fn(&KernelRow) -> f64| -> f64 { rows.iter().map(f).sum() };
    let interp_fast = sum(&|r| r.interp.fast.wall_s);
    let interp_ref = sum(&|r| r.interp.reference.wall_s);
    let emul_fast = sum(&|r| r.emulator.fast.wall_s);
    let emul_ref = sum(&|r| r.emulator.reference.wall_s);
    let interp_batched = sum(&|r| r.interp_batched.fast.wall_s);
    let emul_batched = sum(&|r| r.emulator_batched.fast.wall_s);
    let points: u64 = rows.iter().map(|r| r.interp.fast.points).sum();
    let configs: usize = rows.iter().map(|r| r.configs).sum();
    // The acceptance headline: compiled path over `interp::reference`.
    let wall_ratio = interp_ref / interp_fast.max(1e-9);

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"oracle_exec\",\n  \"mode\": ");
    let _ = write!(
        json,
        "\"{}\",\n  \"seed\": {},\n  \"provenance\": {},\n  \"kernels\": [\n",
        mode,
        SEED,
        eatss_trace::Provenance::collect(Some(1)).to_json()
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"configs\": {}, \"points\": {}, \"auto_engine\": \"{}\", \"interp\": {}, \"emulator\": {}, \"interp_batched\": {}, \"emulator_batched\": {}}}{}",
            r.name,
            r.configs,
            r.interp.fast.points,
            r.auto_engine,
            pair_json(&r.interp),
            pair_json(&r.emulator),
            pair_json(&r.interp_batched),
            pair_json(&r.emulator_batched),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"regressions\": [");
    for (i, reg) in regressions.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"name\": \"{}\", \"side\": \"{}\", \"wall_ratio\": {:.3}}}",
            if i == 0 { "" } else { ", " },
            reg.name,
            reg.side,
            reg.wall_ratio
        );
    }
    let _ = write!(
        json,
        "],\n  \"aggregate\": {{\"kernels\": {}, \"configs\": {}, \"points\": {}, \
         \"interp\": {{\"fast_wall_s\": {:.6}, \"reference_wall_s\": {:.6}, \"wall_ratio\": {:.3}}}, \
         \"emulator\": {{\"fast_wall_s\": {:.6}, \"reference_wall_s\": {:.6}, \"wall_ratio\": {:.3}}}, \
         \"interp_batched\": {{\"fast_wall_s\": {:.6}, \"reference_wall_s\": {:.6}, \"wall_ratio\": {:.3}, \"vs_fast_ratio\": {:.3}}}, \
         \"emulator_batched\": {{\"fast_wall_s\": {:.6}, \"reference_wall_s\": {:.6}, \"wall_ratio\": {:.3}, \"vs_fast_ratio\": {:.3}}}, \
         \"wall_ratio\": {:.3}}}\n}}\n",
        rows.len(),
        configs,
        points,
        interp_fast,
        interp_ref,
        wall_ratio,
        emul_fast,
        emul_ref,
        emul_ref / emul_fast.max(1e-9),
        interp_batched,
        interp_ref,
        interp_ref / interp_batched.max(1e-9),
        interp_fast / interp_batched.max(1e-9),
        emul_batched,
        emul_ref,
        emul_ref / emul_batched.max(1e-9),
        emul_fast / emul_batched.max(1e-9),
        wall_ratio
    );

    std::fs::write(&out_path, &json).expect("write BENCH_oracle.json");
    println!(
        "\naggregate interp: {:.4} s vs {:.4} s (x{:.2}) | emulator: {:.4} s vs {:.4} s (x{:.2})",
        interp_fast,
        interp_ref,
        wall_ratio,
        emul_fast,
        emul_ref,
        emul_ref / emul_fast.max(1e-9)
    );
    println!(
        "aggregate batched interp: {:.4} s (x{:.2} vs reference, x{:.2} vs fast) | batched emulator: {:.4} s (x{:.2} vs reference, x{:.2} vs fast)",
        interp_batched,
        interp_ref / interp_batched.max(1e-9),
        interp_fast / interp_batched.max(1e-9),
        emul_batched,
        emul_ref / emul_batched.max(1e-9),
        emul_fast / emul_batched.max(1e-9)
    );
    println!(
        "{} kernel(s), {} config(s), {} interpreted point(s)",
        rows.len(),
        configs,
        points
    );
    println!("wrote {out_path}");
}
