//! **bench_pareto** — device-portfolio fleet benchmark: the paper's
//! configuration sweep on every committed [`DeviceProfile`], reduced to
//! per-device energy-vs-performance Pareto fronts, with three acceptance
//! gates wired to the exit code:
//!
//! 1. *Dominance* — every front point is re-checked against a brute-force
//!    dominance oracle over the whole sweep, and the front's deterministic
//!    ordering (ascending energy, strictly increasing throughput) is
//!    asserted, including across a recomputation.
//! 2. *Correctness* — every front point's tiles are verified bitwise
//!    against the reference interpreter through the batched differential
//!    oracle at shrunk sizes.
//! 3. *Transfer* — the RBF surrogate fitted on the GA100's tuning history
//!    must reduce evals-to-best on each other device compared to a cold
//!    search with the same budget and seed.
//!
//! Any gate failing prints a `REGRESSION` line and exits non-zero, so CI
//! can run `--mode smoke` as a tripwire.
//!
//! Usage: `bench_pareto [--mode smoke|full] [--out PATH]`
//!   --mode smoke   2 kernels, uniform sizes, single warp fraction (CI)
//!   --mode full    4 kernels at per-device datasets, two warp fractions
//!   --out PATH     JSON report path (default BENCH_pareto.json)

use eatss::sweep::{SweepOutcome, SweepPoint, PAPER_SPLITS};
use eatss::{Eatss, EatssConfig, ThreadBlockCap};
use eatss_autotune::{Autotuner, SurrogatePrior, TuneOptions, TuneResult};
use eatss_bench::table::fmt_f;
use eatss_bench::Table;
use eatss_gpusim::{DeviceProfile, GpuArch};
use eatss_kernels::Dataset;
use eatss_ppcg::oracle::verify_sizes;
use eatss_ppcg::{OracleOptions, TileSpace};
use eatss_trace::json::number;
use std::fmt::Write as _;

/// Shrink caps for the differential-oracle pass (the daemon's
/// `verify: true` rule).
const VERIFY_SPACE_CAP: i64 = 17;
const VERIFY_TIME_CAP: i64 = 3;
const VERIFY_SEED: u64 = 0xEA75_50AC;

/// Transfer-experiment seeds: the prior is fitted under one seed and the
/// cold/warm comparison runs under another, so the reduction cannot come
/// from replaying the source trajectory.
const SOURCE_SEED: u64 = 7;
const TARGET_SEED: u64 = 9;
const TRANSFER_BUDGET: usize = 40;

struct FrontRow {
    tiles: Vec<i64>,
    split: f64,
    warp_fraction: f64,
    strict_cap: bool,
    provenance: String,
    energy_j: f64,
    gflops: f64,
    ppw: f64,
}

struct DeviceRun {
    device: String,
    kernel: String,
    points: usize,
    infeasible: usize,
    front: Vec<FrontRow>,
    verified_configs: u64,
    verified_points: u64,
}

struct TransferRow {
    source: String,
    target: String,
    prior_samples: usize,
    cold_evals_to_best: usize,
    warm_evals_to_best: usize,
    cold_best: f64,
    warm_best: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "full".to_owned());
    let smoke = match mode.as_str() {
        "smoke" => true,
        "full" => false,
        other => {
            eprintln!("unknown mode `{other}` (expected smoke|full)");
            eprintln!("usage: bench_pareto [--mode smoke|full] [--out PATH]");
            std::process::exit(2);
        }
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pareto.json".to_owned());

    let kernels: &[&str] = if smoke {
        &["gemm", "mvt"]
    } else {
        &["gemm", "2mm", "mvt", "jacobi-2d"]
    };
    let fractions: &[f64] = if smoke { &[0.5] } else { &[0.5, 0.25] };
    let devices = DeviceProfile::builtin_names();
    println!(
        "device-portfolio Pareto fronts: {} devices x {} kernels ({mode} mode)\n",
        devices.len(),
        kernels.len()
    );

    let mut regressions: Vec<String> = Vec::new();
    let mut runs: Vec<DeviceRun> = Vec::new();
    let mut t = Table::new(vec![
        "device",
        "kernel",
        "points",
        "front",
        "min E (J)",
        "max GF",
        "verified pts",
    ]);

    for device in &devices {
        let arch = DeviceProfile::builtin(device)
            .expect("builtin profile")
            .into_arch();
        let eatss = Eatss::new(arch.clone());
        for name in kernels {
            let b = eatss_kernels::by_name(name).expect("registered benchmark");
            let program = b.program().expect("benchmark parses");
            // Dataset heuristic: datacenter-class parts (>= 32 SMs) run
            // the EXTRALARGE sets, embedded parts the STANDARD ones —
            // the Fig 7 GA100/Xavier pairing generalized to the fleet.
            let sizes = if smoke {
                b.sizes_uniform(1024)
            } else if arch.sm_count >= 32 {
                b.sizes(Dataset::ExtraLarge)
            } else {
                b.sizes(Dataset::Standard)
            };
            let outcome = match eatss.sweep(&program, &sizes, &PAPER_SPLITS, fractions) {
                Ok(o) => o,
                Err(e) => {
                    regressions.push(format!("{device}/{name}: sweep failed: {e}"));
                    continue;
                }
            };
            let front = outcome.pareto_front();
            check_front(device, name, &outcome, &front, &mut regressions);

            let (vc, vp) = match verify_front(&arch, &program, &sizes, &front) {
                Ok(pair) => pair,
                Err(e) => {
                    regressions.push(format!("{device}/{name}: oracle: {e}"));
                    (0, 0)
                }
            };
            t.row(vec![
                (*device).into(),
                (*name).into(),
                outcome.points.len().to_string(),
                front.len().to_string(),
                fmt_f(front.first().map_or(f64::NAN, |p| p.report.energy_j)),
                fmt_f(front.last().map_or(f64::NAN, |p| p.report.gflops)),
                vp.to_string(),
            ]);
            runs.push(DeviceRun {
                device: (*device).to_string(),
                kernel: (*name).to_string(),
                points: outcome.points.len(),
                infeasible: outcome.infeasible.len(),
                front: front
                    .iter()
                    .map(|p| FrontRow {
                        tiles: p.solution.tiles.sizes().to_vec(),
                        split: p.config.split_factor,
                        warp_fraction: p.config.warp_fraction,
                        strict_cap: p.config.cap == ThreadBlockCap::Strict,
                        provenance: p.solution.provenance.to_string(),
                        energy_j: p.report.energy_j,
                        gflops: p.report.gflops,
                        ppw: p.report.ppw,
                    })
                    .collect(),
                verified_configs: vc,
                verified_points: vp,
            });
        }
    }
    println!("{}", t.render());

    // --- surrogate transfer: GA100 history seeds every other device ---
    let transfer_targets: &[&str] = if smoke {
        &["xavier"]
    } else {
        &["xavier", "h100", "orin", "nano"]
    };
    let transfers = run_transfer(transfer_targets, &mut regressions);
    let mut tt = Table::new(vec![
        "source",
        "target",
        "prior n",
        "cold evals-to-best",
        "warm evals-to-best",
        "cold best GF",
        "warm best GF",
    ]);
    for r in &transfers {
        tt.row(vec![
            r.source.clone(),
            r.target.clone(),
            r.prior_samples.to_string(),
            r.cold_evals_to_best.to_string(),
            r.warm_evals_to_best.to_string(),
            fmt_f(r.cold_best),
            fmt_f(r.warm_best),
        ]);
    }
    println!("{}", tt.render());

    write_report(&out_path, &mode, &runs, &transfers, &regressions);
    println!("wrote {out_path}");

    if regressions.is_empty() {
        println!("all fronts non-dominated, oracle-verified; transfer reduces evals-to-best");
    } else {
        for r in &regressions {
            eprintln!("REGRESSION: {r}");
        }
        std::process::exit(1);
    }
}

/// The dominance gate: ordering, brute-force non-domination, and
/// recomputation determinism.
fn check_front(
    device: &str,
    kernel: &str,
    outcome: &SweepOutcome,
    front: &[&SweepPoint],
    regressions: &mut Vec<String>,
) {
    if front.is_empty() {
        regressions.push(format!("{device}/{kernel}: empty Pareto front"));
        return;
    }
    for pair in front.windows(2) {
        if pair[0].report.energy_j > pair[1].report.energy_j
            || pair[0].report.gflops >= pair[1].report.gflops
        {
            regressions.push(format!(
                "{device}/{kernel}: front ordering violated at E={} GF={}",
                pair[1].report.energy_j, pair[1].report.gflops
            ));
        }
    }
    for f in front {
        for p in &outcome.points {
            if !(p.report.valid && p.report.energy_j.is_finite() && p.report.gflops.is_finite()) {
                continue;
            }
            let dominates = p.report.energy_j <= f.report.energy_j
                && p.report.gflops >= f.report.gflops
                && (p.report.energy_j < f.report.energy_j || p.report.gflops > f.report.gflops);
            if dominates {
                regressions.push(format!(
                    "{device}/{kernel}: front point E={} GF={} is dominated",
                    f.report.energy_j, f.report.gflops
                ));
            }
        }
    }
    // Determinism: recomputing the front from the same outcome yields the
    // same bits in the same order.
    let again = outcome.pareto_front();
    let same = again.len() == front.len()
        && again.iter().zip(front).all(|(a, b)| {
            a.report.energy_j.to_bits() == b.report.energy_j.to_bits()
                && a.report.gflops.to_bits() == b.report.gflops.to_bits()
        });
    if !same {
        regressions.push(format!("{device}/{kernel}: front recomputation differs"));
    }
}

/// The correctness gate: every front point's tiles agree bitwise with the
/// reference interpreter (one batched oracle call per front).
fn verify_front(
    arch: &GpuArch,
    program: &eatss_affine::Program,
    sizes: &eatss_affine::ProblemSizes,
    front: &[&SweepPoint],
) -> Result<(u64, u64), String> {
    let shrunk = verify_sizes(program, sizes, VERIFY_SPACE_CAP, VERIFY_TIME_CAP);
    let configs: Vec<_> = front.iter().map(|p| p.solution.tiles.clone()).collect();
    let verdicts = eatss_ppcg::verify_batch(
        program,
        &configs,
        arch,
        &shrunk,
        &OracleOptions::default(),
        VERIFY_SEED,
    );
    let (mut vc, mut vp) = (0u64, 0u64);
    for (i, verdict) in verdicts.into_iter().enumerate() {
        match verdict {
            Ok(report) => {
                vc += 1;
                vp += report.points;
            }
            Err(e) => return Err(format!("front point {i} ({}): {e}", configs[i])),
        }
    }
    Ok((vc, vp))
}

/// The transfer gate: tune gemm on the GA100, fit the surrogate prior
/// from that history, and require the prior-seeded search to reach its
/// best in strictly fewer evaluations than the cold search on more
/// targets than it slows down. Per-target outcomes (including honest
/// negatives — a datacenter prior can mislead an embedded part and vice
/// versa) are recorded in the JSON rather than failing individually.
fn run_transfer(targets: &[&str], regressions: &mut Vec<String>) -> Vec<TransferRow> {
    let b = eatss_kernels::by_name("gemm").expect("gemm registered");
    let program = b.program().expect("gemm parses");
    let sizes = b.sizes_uniform(1024);
    let space = TileSpace::evaluation_grid(program.max_depth());
    let cfg = EatssConfig::default();

    let objective = |eatss: &Eatss| {
        let program = program.clone();
        let sizes = sizes.clone();
        let cfg = cfg.clone();
        let eatss = eatss.clone();
        move |tiles: &eatss_affine::tiling::TileConfig| {
            eatss
                .evaluate(&program, tiles, &sizes, &cfg)
                .ok()
                .filter(|r| r.valid && r.gflops.is_finite())
                .map(|r| r.gflops)
        }
    };

    let source_arch = DeviceProfile::builtin("ga100").expect("ga100").into_arch();
    let source = Eatss::new(source_arch);
    let fitted: TuneResult = Autotuner::new(TuneOptions {
        budget: TRANSFER_BUDGET,
        seed: SOURCE_SEED,
        ..TuneOptions::default()
    })
    .tune(&space, objective(&source));
    let prior = SurrogatePrior::from_result(&fitted);
    if prior.is_empty() {
        regressions.push("transfer: empty GA100 prior (no successful evaluations)".into());
        return Vec::new();
    }

    let mut rows = Vec::new();
    for target in targets {
        let arch = DeviceProfile::builtin(target).expect("builtin profile").into_arch();
        let eatss = Eatss::new(arch);
        let opts = TuneOptions {
            budget: TRANSFER_BUDGET,
            seed: TARGET_SEED,
            ..TuneOptions::default()
        };
        let cold = Autotuner::new(opts.clone()).tune(&space, objective(&eatss));
        let warm =
            Autotuner::new(opts).tune_with_prior(&space, objective(&eatss), Some(&prior));
        let (Some(cold_evals), Some(warm_evals)) = (cold.evals_to_best(), warm.evals_to_best())
        else {
            regressions.push(format!("transfer ga100->{target}: no successful evaluations"));
            continue;
        };
        rows.push(TransferRow {
            source: "ga100".to_string(),
            target: (*target).to_string(),
            prior_samples: prior.len(),
            cold_evals_to_best: cold_evals,
            warm_evals_to_best: warm_evals,
            cold_best: cold.best_value,
            warm_best: warm.best_value,
        });
    }
    let faster = rows.iter().filter(|r| r.warm_evals_to_best < r.cold_evals_to_best).count();
    let slower = rows.iter().filter(|r| r.warm_evals_to_best > r.cold_evals_to_best).count();
    if !rows.is_empty() && faster <= slower {
        regressions.push(format!(
            "transfer: warm start reduced evals-to-best on {faster} target(s) but slowed {slower}"
        ));
    }
    rows
}

fn write_report(
    out_path: &str,
    mode: &str,
    runs: &[DeviceRun],
    transfers: &[TransferRow],
    regressions: &[String],
) {
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"pareto\",\n  \"mode\": \"{mode}\",\n  \"provenance\": {},\n  \"devices\": [\n",
        eatss_trace::Provenance::collect(Some(1)).to_json()
    );
    for (i, r) in runs.iter().enumerate() {
        let front: Vec<String> = r
            .front
            .iter()
            .map(|p| {
                format!(
                    "{{\"tiles\": [{}], \"split\": {}, \"warp_frac\": {}, \"strict_cap\": {}, \"provenance\": \"{}\", \"energy_j\": {}, \"gflops\": {}, \"ppw\": {}}}",
                    p.tiles
                        .iter()
                        .map(i64::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                    number(p.split),
                    number(p.warp_fraction),
                    p.strict_cap,
                    p.provenance,
                    number(p.energy_j),
                    number(p.gflops),
                    number(p.ppw)
                )
            })
            .collect();
        let _ = writeln!(
            json,
            "    {{\"device\": \"{}\", \"kernel\": \"{}\", \"points\": {}, \"infeasible\": {}, \"verified_configs\": {}, \"verified_points\": {}, \"front\": [{}]}}{}",
            r.device,
            r.kernel,
            r.points,
            r.infeasible,
            r.verified_configs,
            r.verified_points,
            front.join(", "),
            if i + 1 == runs.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"transfer\": [\n");
    for (i, r) in transfers.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"source\": \"{}\", \"target\": \"{}\", \"prior_samples\": {}, \"cold_evals_to_best\": {}, \"warm_evals_to_best\": {}, \"cold_best_gflops\": {}, \"warm_best_gflops\": {}}}{}",
            r.source,
            r.target,
            r.prior_samples,
            r.cold_evals_to_best,
            r.warm_evals_to_best,
            number(r.cold_best),
            number(r.warm_best),
            if i + 1 == transfers.len() { "" } else { "," }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"regressions\": [{}]\n}}\n",
        regressions
            .iter()
            .map(|r| format!("\"{}\"", eatss_trace::json::escape(r)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::fs::write(out_path, &json).expect("write pareto report");
}
