//! **Figure 7 (a/b)** — Polybench results on the GA100 (EXTRALARGE) and
//! Jetson AGX Xavier (STANDARD): for each benchmark, the explored
//! tile-space statistics (median / default / best PPCG) and the EATSS
//! point (`U`), in performance, energy and performance-per-watt; plus the
//! paper's headline median PPW improvement.
//!
//! `--profiles a,b,...` replaces the GA100/Xavier pair with any builtin
//! or on-disk device profiles (datasets chosen by SM count).

use eatss::sweep::PAPER_SPLITS;
use eatss::Eatss;
use eatss_bench::table::fmt_f;
use eatss_bench::{explore::summarize, explore_space, profiles, Table};
use eatss_gpusim::{stats, GpuArch};
use eatss_kernels::Dataset;
use eatss_ppcg::TileSpace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let targets: Vec<(GpuArch, Dataset, String)> = match profiles::from_args(&args, "--profiles")
    {
        Some(archs) => archs
            .into_iter()
            .map(|arch| {
                let dataset = profiles::dataset_for(&arch);
                let label = format!("7: {} / {dataset:?}", arch.name);
                (arch, dataset, label)
            })
            .collect(),
        None => vec![
            (
                GpuArch::ga100(),
                Dataset::ExtraLarge,
                "7a: GA100 / EXTRALARGE".to_owned(),
            ),
            (
                GpuArch::xavier(),
                Dataset::Standard,
                "7b: Xavier / STANDARD".to_owned(),
            ),
        ],
    };
    for (arch, dataset, label) in targets {
        println!("=== Figure {label} ===\n");
        let eatss = Eatss::new(arch.clone());
        let mut t = Table::new(vec![
            "benchmark",
            "class",
            "Med PPCG GF",
            "Def PPCG GF",
            "Best PPCG GF",
            "EATSS GF",
            "Def PPW",
            "EATSS PPW",
            "PPW ratio",
            "space",
            "prov",
        ]);
        let mut ppw_ratios: Vec<f64> = Vec::new();
        for b in eatss_kernels::polybench() {
            let program = b.program().expect("benchmark parses");
            let sizes = b.sizes(dataset);
            // Half-warp alignment by default; the quarter-warp fallback
            // recovers kernels whose extents are too small on the Xavier
            // (§IV-B: "this constraint can be adapted to smaller values").
            let sweep = match eatss.sweep(&program, &sizes, &PAPER_SPLITS, &[0.5, 0.25]) {
                Ok(s) => s,
                Err(e) => {
                    t.row(vec![b.name.into(), b.class.to_string(), format!("infeasible: {e}")]);
                    continue;
                }
            };
            let Some(best) = sweep.best_by_ppw() else { continue };
            let opts = best.config.compile_options(&arch);
            // Depth of the space excludes nothing: time dims get tile 1 via
            // EATSS; for the baseline space we keep the shared triple shape.
            let space = TileSpace::evaluation_grid(program.max_depth());
            let variants = explore_space(&arch, &program, &sizes, &space, &opts);
            let s = summarize(&arch, &program, &sizes, &variants, &opts);
            let def_ppw = s.default.ppw;
            let ratio = if def_ppw > 0.0 {
                best.report.ppw / def_ppw
            } else {
                f64::NAN
            };
            if ratio.is_finite() {
                ppw_ratios.push(ratio);
            }
            t.row(vec![
                b.name.into(),
                b.class.to_string(),
                fmt_f(s.median_gflops),
                fmt_f(s.default.gflops),
                fmt_f(s.best_gflops),
                fmt_f(best.report.gflops),
                fmt_f(def_ppw),
                fmt_f(best.report.ppw),
                fmt_f(ratio),
                format!("{}/{}", s.valid, s.total),
                best.solution.provenance.to_string(),
            ]);
        }
        println!("{}", t.render());
        println!(
            "median EATSS PPW improvement over default PPCG: {}x  (paper: \
             1.5x on GA100, 1.2x on Xavier)\n",
            fmt_f(stats::median(&ppw_ratios))
        );
    }
}
