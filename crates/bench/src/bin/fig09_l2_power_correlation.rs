//! **Figure 9** — correlation between the number of L2 cache sectors
//! read by each tiled variant and its average power. BLAS3 kernels (2mm,
//! gemm) show a strong positive correlation; O(1)-reuse kernels
//! (jacobi-2d, mvt) do not. The paper reports Pearson's r of 0.85 and
//! 0.75 for 2mm and gemm.

use eatss_bench::table::fmt_f;
use eatss_bench::{explore_space, Table};
use eatss_gpusim::{stats, GpuArch};
use eatss_kernels::Dataset;
use eatss_ppcg::{CompileOptions, TileSpace};

fn main() {
    let arch = GpuArch::ga100();
    let opts = CompileOptions::with_split(&arch, 0.5, 8);
    println!("Figure 9: L2 sectors read vs average power across the tile space (GA100)\n");
    let mut t = Table::new(vec![
        "benchmark",
        "variants",
        "Pearson r (sectors, power)",
        "sectors p10",
        "sectors p90",
        "power p10 (W)",
        "power p90 (W)",
    ]);
    for name in ["2mm", "gemm", "jacobi-2d", "mvt"] {
        let b = eatss_kernels::by_name(name).expect("registered benchmark");
        let program = b.program().expect("benchmark parses");
        let sizes = b.sizes(Dataset::ExtraLarge);
        let space = TileSpace::evaluation_grid(program.max_depth());
        let variants = explore_space(&arch, &program, &sizes, &space, &opts);
        let pairs: Vec<(f64, f64)> = variants
            .iter()
            .filter(|v| v.report.valid)
            .map(|v| (v.report.l2_sectors_read as f64, v.report.avg_power_w))
            .collect();
        let sectors: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let power: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = stats::pearson(&sectors, &power);
        t.row(vec![
            name.into(),
            pairs.len().to_string(),
            fmt_f(r),
            format!("{:.2e}", stats::percentile(&sectors, 10.0)),
            format!("{:.2e}", stats::percentile(&sectors, 90.0)),
            fmt_f(stats::percentile(&power, 10.0)),
            fmt_f(stats::percentile(&power, 90.0)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check (paper): r(2mm) ≈ 0.85 and r(gemm) ≈ 0.75 (strong), \
         while jacobi-2d and mvt show substantially weaker correlation."
    );
}
