//! Minimal plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use eatss_bench::Table;
///
/// let mut t = Table::new(vec!["kernel", "GFLOP/s"]);
/// t.row(vec!["gemm".into(), "3721.0".into()]);
/// let s = t.render();
/// assert!(s.contains("gemm"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator line.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}", w = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a float with engineering-friendly precision.
pub fn fmt_f(v: f64) -> String {
    if !v.is_finite() {
        return "n/a".to_owned();
    }
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]); // short row padded
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("xxxxxxx"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_f_ranges() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(42.25), "42.2");
        assert_eq!(fmt_f(1.5), "1.500");
        assert_eq!(fmt_f(0.0001), "1.00e-4");
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(f64::INFINITY), "n/a");
    }
}
