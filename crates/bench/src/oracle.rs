//! The seeded differential-oracle sweep as a library: every PolyBench
//! kernel × {pinned adversarial tiles, EATSS-selected tiles, seeded
//! random samples}, verified bitwise against the affine interpreter —
//! with a deterministic parallel executor.
//!
//! The sweep is embarrassingly parallel across benchmarks, so
//! [`run_oracle_sweep`] uses the same scoped worker-pool shape as the
//! core crate's parallel sweep (PR 2): an atomic work index hands
//! benchmark indices to `jobs` workers, each worker produces a fully
//! buffered per-benchmark report, and the merge concatenates them in
//! canonical benchmark order. Random tile samples are drawn from a
//! per-benchmark RNG seeded by mixing the sweep seed with the benchmark
//! name, so the configurations a benchmark sees do not depend on worker
//! count or scheduling. The resulting [`OracleSweepSummary::report`] is
//! byte-identical for `jobs = 1` and `jobs = N`.

use eatss::{Eatss, EatssConfig, EatssError};
use eatss_affine::tiling::TileConfig;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use eatss_ppcg::oracle::{sample_tile_config, sweep_rng, verify_sizes};
use eatss_ppcg::{verify, verify_batch, OracleError, OracleOptions};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sweep knobs (see the `oracle_sweep` binary for the CLI surface).
#[derive(Debug, Clone)]
pub struct OracleSweepOptions {
    /// Base seed: store seeding and the per-benchmark sample RNGs all
    /// derive from it.
    pub seed: u64,
    /// Random tile configurations per benchmark.
    pub random: usize,
    /// Problem-size cap for spatial parameters.
    pub space_cap: i64,
    /// Problem-size cap for time-loop parameters.
    pub time_cap: i64,
    /// Worker threads (1 = sequential; the report is identical either way).
    pub jobs: usize,
    /// Verify each benchmark's configurations through the batched oracle
    /// ([`verify_batch`]): one reference interpretation per benchmark and
    /// shared emulator plans, with verdicts identical to the per-config
    /// [`verify`] path.
    pub batched: bool,
}

impl Default for OracleSweepOptions {
    fn default() -> Self {
        OracleSweepOptions {
            seed: 0xEA75_50AC,
            random: 8,
            space_cap: 17,
            time_cap: 3,
            jobs: 1,
            batched: false,
        }
    }
}

/// What a sweep run covered, plus the canonical printable report.
#[derive(Debug, Clone)]
pub struct OracleSweepSummary {
    /// Configurations verified clean.
    pub configs: u64,
    /// Iteration points executed (per execution side).
    pub points: u64,
    /// Failures (mismatches, emulation faults, selection errors).
    pub failures: u64,
    /// The full report text (header, per-benchmark lines in canonical
    /// order, summary line) — byte-identical across `jobs` values.
    pub report: String,
}

/// Derives the per-benchmark sample seed: FNV-1a over the benchmark name,
/// keyed by the sweep seed. Independent of benchmark order and worker
/// scheduling.
pub fn bench_seed(seed: u64, name: &str) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Max trip count per dim position across kernels — the sampling domain.
pub fn trips(program: &Program, sizes: &ProblemSizes) -> Vec<i64> {
    let mut out = vec![1i64; program.max_depth()];
    for k in &program.kernels {
        for (d, slot) in out.iter_mut().enumerate().take(k.depth()) {
            *slot = (*slot).max(k.trip_count(d, sizes).unwrap_or(1));
        }
    }
    out
}

/// The shrunk verification sizes for one benchmark: deep nests (depth ≥ 4)
/// get their spatial cap tightened so point counts stay bounded.
pub fn sweep_sizes(program: &Program, std_sizes: &ProblemSizes, opts: &OracleSweepOptions) -> ProblemSizes {
    let cap = if program.max_depth() >= 4 {
        opts.space_cap.min(9)
    } else {
        opts.space_cap
    };
    verify_sizes(program, std_sizes, cap, opts.time_cap)
}

/// The pinned adversarial tile configurations every benchmark is checked
/// with: the PPCG `32^d` default, single-element tiles, and tiles one
/// past the trip count.
pub fn pinned_configs(depth: usize, trips: &[i64]) -> Vec<(String, TileConfig)> {
    vec![
        ("32^d".into(), TileConfig::ppcg_default(depth)),
        ("1^d".into(), TileConfig::new(vec![1; depth])),
        (
            "trip+1".into(),
            TileConfig::new(trips.iter().map(|t| t + 1).collect()),
        ),
    ]
}

/// One benchmark's buffered contribution.
struct BenchReport {
    text: String,
    configs: u64,
    points: u64,
    failures: u64,
}

fn sweep_benchmark(
    bench: &eatss_kernels::Benchmark,
    eatss: &Eatss,
    arch: &GpuArch,
    oracle_opts: &OracleOptions,
    opts: &OracleSweepOptions,
) -> BenchReport {
    let mut out = BenchReport {
        text: String::new(),
        configs: 0,
        points: 0,
        failures: 0,
    };
    let program = match bench.program() {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(out.text, "  {}: registry parse error: {e}", bench.name);
            out.failures += 1;
            return out;
        }
    };
    let std_sizes = bench.sizes(eatss_kernels::Dataset::Standard);
    let sizes = sweep_sizes(&program, &std_sizes, opts);
    let trips = trips(&program, &sizes);
    let depth = program.max_depth();

    let mut plan = pinned_configs(depth, &trips);
    match eatss.select_tiles(&program, &std_sizes, &EatssConfig::default()) {
        Ok(solution) => plan.push(("EATSS".into(), solution.tiles)),
        Err(EatssError::Unsatisfiable { .. }) => {
            let _ = writeln!(
                out.text,
                "  {}: EATSS selection unsatisfiable (skipped)",
                bench.name
            );
        }
        Err(e) => {
            let _ = writeln!(out.text, "  {}: EATSS selection failed: {e}", bench.name);
            out.failures += 1;
        }
    }
    let mut rng = sweep_rng(bench_seed(opts.seed, bench.name));
    for i in 0..opts.random {
        plan.push((format!("random#{i}"), sample_tile_config(&mut rng, &trips)));
    }

    let verdicts: Vec<Result<eatss_ppcg::OracleReport, OracleError>> = if opts.batched {
        let configs: Vec<TileConfig> = plan.iter().map(|(_, t)| t.clone()).collect();
        verify_batch(&program, &configs, arch, &sizes, oracle_opts, opts.seed)
    } else {
        plan.iter()
            .map(|(_, tiles)| verify(&program, tiles, arch, &sizes, oracle_opts, opts.seed))
            .collect()
    };
    for ((label, tiles), verdict) in plan.iter().zip(verdicts) {
        match verdict {
            Ok(report) => {
                out.configs += 1;
                out.points += report.points;
            }
            Err(OracleError::Compile(e)) => {
                // Mapping rejections (e.g. too few tile sizes) are not
                // oracle findings; report and move on.
                let _ = writeln!(
                    out.text,
                    "  {} {label} {tiles}: not mappable: {e}",
                    bench.name
                );
            }
            Err(e) => {
                let _ = writeln!(out.text, "FAIL {} {label} {tiles}: {e}", bench.name);
                out.failures += 1;
            }
        }
    }
    let _ = writeln!(out.text, "  {}: {} config(s) checked", bench.name, plan.len());
    out
}

/// Runs the whole sweep, parallel over benchmarks. The returned report is
/// byte-identical for any `jobs` value (see the module docs).
pub fn run_oracle_sweep(opts: &OracleSweepOptions) -> OracleSweepSummary {
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    let oracle_opts = OracleOptions::default();
    let benches = eatss_kernels::polybench();

    let reports: Vec<BenchReport> = if opts.jobs <= 1 {
        benches
            .iter()
            .map(|b| sweep_benchmark(b, &eatss, &arch, &oracle_opts, opts))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<BenchReport>>> =
            benches.iter().map(|_| Mutex::new(None)).collect();
        let workers = opts.jobs.min(benches.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(bench) = benches.get(i) else { break };
                    let report = sweep_benchmark(bench, &eatss, &arch, &oracle_opts, opts);
                    *slots[i].lock().expect("slot poisoned") = Some(report);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot poisoned")
                    .expect("every benchmark processed by a worker")
            })
            .collect()
    };

    let mut summary = OracleSweepSummary {
        configs: 0,
        points: 0,
        failures: 0,
        report: format!(
            "oracle sweep: seed {} ({} random config(s)/benchmark, caps {}/{})\n",
            opts.seed, opts.random, opts.space_cap, opts.time_cap
        ),
    };
    for r in reports {
        summary.configs += r.configs;
        summary.points += r.points;
        summary.failures += r.failures;
        summary.report.push_str(&r.text);
    }
    let _ = writeln!(
        summary.report,
        "oracle sweep: {} config(s), {} point(s) executed, {} failure(s) [seed {}]",
        summary.configs, summary.points, summary.failures, opts.seed
    );
    summary
}
