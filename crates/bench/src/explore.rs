//! Tile-space exploration shared by the figure experiments.

use eatss_affine::tiling::TileConfig;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::{stats, GpuArch, SimReport};
use eatss_ppcg::{CompileOptions, TileSpace};

/// One measured variant of the exploration space.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Its tile configuration.
    pub tiles: TileConfig,
    /// Its simulated measurement.
    pub report: SimReport,
}

/// Summary statistics of a space relative to the default configuration
/// (the "Med PPCG / Def PPCG / Best PPCG" rows of Fig. 7).
#[derive(Debug, Clone)]
pub struct BaselineSummary {
    /// Measurement of the default `32^d` tiling.
    pub default: SimReport,
    /// Median GFLOP/s across valid variants.
    pub median_gflops: f64,
    /// Median energy (J) across valid variants.
    pub median_energy: f64,
    /// Median PPW across valid variants.
    pub median_ppw: f64,
    /// Best GFLOP/s in the space.
    pub best_gflops: f64,
    /// Lowest energy in the space.
    pub best_energy: f64,
    /// Best PPW in the space.
    pub best_ppw: f64,
    /// Number of valid variants.
    pub valid: usize,
    /// Number of enumerated variants.
    pub total: usize,
}

/// Measures every variant of `space`; invalid/unmappable variants are
/// kept with `report.valid == false` so exploration counts match the
/// paper's space sizes.
pub fn explore_space(
    arch: &GpuArch,
    program: &Program,
    sizes: &ProblemSizes,
    space: &TileSpace,
    options: &CompileOptions,
) -> Vec<Variant> {
    space
        .iter()
        .map(|tiles| {
            let report =
                eatss::evaluate_program(arch, program, &tiles, sizes, options)
                    .unwrap_or_else(|_| SimReport::invalid(&program.name));
            Variant { tiles, report }
        })
        .collect()
}

/// Summarizes a measured space against the `32^d` default.
pub fn summarize(
    arch: &GpuArch,
    program: &Program,
    sizes: &ProblemSizes,
    variants: &[Variant],
    options: &CompileOptions,
) -> BaselineSummary {
    let default = eatss::evaluate_program(
        arch,
        program,
        &TileConfig::ppcg_default(program.max_depth()),
        sizes,
        options,
    )
    .unwrap_or_else(|_| SimReport::invalid(&program.name));
    let valid: Vec<&SimReport> = variants
        .iter()
        .map(|v| &v.report)
        .filter(|r| r.valid)
        .collect();
    let gflops: Vec<f64> = valid.iter().map(|r| r.gflops).collect();
    let energy: Vec<f64> = valid.iter().map(|r| r.energy_j).collect();
    let ppw: Vec<f64> = valid.iter().map(|r| r.ppw).collect();
    BaselineSummary {
        default,
        median_gflops: stats::median(&gflops),
        median_energy: stats::median(&energy),
        median_ppw: stats::median(&ppw),
        best_gflops: gflops.iter().cloned().fold(0.0, f64::max),
        best_energy: energy.iter().cloned().fold(f64::INFINITY, f64::min),
        best_ppw: ppw.iter().cloned().fold(0.0, f64::max),
        valid: valid.len(),
        total: variants.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eatss_affine::parser::parse_program;

    fn mm() -> Program {
        parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap()
    }

    #[test]
    fn explore_and_summarize_small_space() {
        let arch = GpuArch::ga100();
        let sizes = ProblemSizes::new([("M", 512), ("N", 512), ("P", 512)]);
        let space = TileSpace::new(3, vec![16, 32, 64]);
        let opts = CompileOptions::default();
        let variants = explore_space(&arch, &mm(), &sizes, &space, &opts);
        assert_eq!(variants.len(), 27);
        let summary = summarize(&arch, &mm(), &sizes, &variants, &opts);
        assert!(summary.valid > 0);
        assert!(summary.default.valid);
        assert!(summary.best_gflops >= summary.median_gflops);
        assert!(summary.best_energy <= summary.median_energy);
        assert!(summary.best_ppw >= summary.median_ppw);
        // The default 32^3 is inside the space, so best >= default.
        assert!(summary.best_gflops * 1.03 >= summary.default.gflops);
    }
}
