//! Shared harness code for the experiment binaries that regenerate every
//! table and figure of the EATSS paper (see DESIGN.md §5 for the index).
//!
//! Each figure/table has a dedicated binary under `src/bin/`; this
//! library holds the common machinery: space exploration with caching of
//! per-variant measurements, baseline extraction (default / median / best
//! PPCG), and plain-text table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod oracle;
pub mod profiles;
pub mod table;

pub use explore::{explore_space, BaselineSummary, Variant};
pub use table::Table;
