//! Device-portfolio argument handling shared by the figure binaries:
//! every sweep-style figure accepts `--profiles a,b,...` (or `--profile`
//! for the single-device ones) where each entry is either a builtin
//! [`DeviceProfile`] name or a path to a profile file. Without the flag
//! the binaries keep their historical hard-wired device list, so default
//! output is unchanged.

use eatss_gpusim::{DeviceProfile, GpuArch};
use eatss_kernels::Dataset;

/// Resolves one `--profiles` entry: a builtin name (`"ga100"`,
/// case-insensitive) or a path to a JSON/TOML profile file.
///
/// # Errors
///
/// A human-readable message naming the entry when it is neither a
/// builtin nor a loadable, valid profile file.
pub fn resolve(spec: &str) -> Result<GpuArch, String> {
    if let Some(profile) = DeviceProfile::builtin(spec) {
        return Ok(profile.into_arch());
    }
    if std::path::Path::new(spec).exists() {
        return DeviceProfile::load(spec)
            .map(DeviceProfile::into_arch)
            .map_err(|e| format!("profile file {spec}: {e}"));
    }
    Err(format!(
        "unknown device `{spec}` (expected a builtin profile {:?} or a profile file path)",
        DeviceProfile::builtin_names()
    ))
}

/// The Fig 7 dataset pairing generalized to the fleet: datacenter-class
/// parts (≥ 32 SMs) run the EXTRALARGE sets, embedded parts STANDARD.
pub fn dataset_for(arch: &GpuArch) -> Dataset {
    if arch.sm_count >= 32 {
        Dataset::ExtraLarge
    } else {
        Dataset::Standard
    }
}

/// Parses `flag` (e.g. `"--profiles"`) as a comma-separated device list
/// from already-collected argv. Returns `None` when the flag is absent
/// (caller keeps its default device list); exits with code 2 on an
/// unresolvable entry, like the other bad-usage paths in the bench bins.
pub fn from_args(args: &[String], flag: &str) -> Option<Vec<GpuArch>> {
    let list = args
        .iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))?;
    let archs = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|spec| match resolve(spec) {
            Ok(arch) => arch,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        })
        .collect::<Vec<_>>();
    if archs.is_empty() {
        eprintln!("{flag} needs at least one device");
        std::process::exit(2);
    }
    Some(archs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_accepts_builtins_case_insensitively() {
        assert_eq!(resolve("GA100").unwrap().name, "GA100");
        assert_eq!(resolve("orin").unwrap().name, resolve("Orin").unwrap().name);
        assert!(resolve("tpu9").unwrap_err().contains("tpu9"));
    }

    #[test]
    fn dataset_heuristic_splits_datacenter_from_embedded() {
        assert_eq!(dataset_for(&resolve("ga100").unwrap()), Dataset::ExtraLarge);
        assert_eq!(dataset_for(&resolve("h100").unwrap()), Dataset::ExtraLarge);
        assert_eq!(dataset_for(&resolve("nano").unwrap()), Dataset::Standard);
    }

    #[test]
    fn from_args_parses_comma_lists_and_ignores_missing_flag() {
        let args = vec!["--profiles".to_owned(), "ga100, xavier".to_owned()];
        let archs = from_args(&args, "--profiles").unwrap();
        assert_eq!(archs.len(), 2);
        assert!(from_args(&args, "--profile").is_none());
    }
}
