//! Criterion bench of tile-space exploration throughput: how fast the
//! harness can evaluate variants (the paper explores 200–3,375 per
//! benchmark).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;
use eatss_ppcg::{CompileOptions, TileSpace};
use std::hint::black_box;

fn bench_space_exploration(c: &mut Criterion) {
    let arch = GpuArch::ga100();
    let b = eatss_kernels::by_name("gemm").expect("registered");
    let program = b.program().expect("parses");
    let sizes = b.sizes(Dataset::ExtraLarge);
    let opts = CompileOptions::with_split(&arch, 0.5, 8);
    let space = TileSpace::new(3, vec![8, 16, 32, 64, 128]);
    let mut group = c.benchmark_group("tile_space");
    group.sample_size(10);
    group.throughput(Throughput::Elements(space.len() as u64));
    group.bench_function("explore_gemm_125_variants", |bench| {
        bench.iter(|| {
            let mut best = 0.0f64;
            for tiles in space.iter() {
                if let Ok(r) = eatss::evaluate_program(
                    black_box(&arch),
                    &program,
                    &tiles,
                    &sizes,
                    &opts,
                ) {
                    if r.valid {
                        best = best.max(r.gflops);
                    }
                }
            }
            best
        });
    });
    group.finish();
}

fn bench_enumeration_only(c: &mut Criterion) {
    let space = TileSpace::motivation_grid(3);
    c.bench_function("enumerate_3375_configs", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for cfg in space.iter() {
                acc += cfg.sizes().iter().sum::<i64>();
            }
            black_box(acc)
        });
    });
}

criterion_group!(benches, bench_space_exploration, bench_enumeration_only);
criterion_main!(benches);
