//! Criterion bench of the validation-scale LRU cache simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eatss_gpusim::CacheSim;
use std::hint::black_box;

fn bench_access_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("cachesim");
    let n: u64 = 100_000;
    group.throughput(Throughput::Elements(n));
    for (label, stride) in [("sequential", 8u64), ("strided-512", 512), ("pathological", 4096)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &stride, |b, &stride| {
            b.iter(|| {
                let mut sim = CacheSim::new(128 * 1024, 128, 8);
                for i in 0..n {
                    sim.access(black_box(i * stride % (1 << 24)));
                }
                sim.stats()
            });
        });
    }
    group.finish();
}

fn bench_tiled_sweep(c: &mut Criterion) {
    // The ground-truth experiment behind the analytic residency rules:
    // a tiled B[k][j] sweep.
    c.bench_function("cachesim_tiled_matmul_sweep", |b| {
        b.iter(|| {
            let n: u64 = 64;
            let tile = 8u64;
            let mut sim = CacheSim::fully_associative(16 * 1024, 64);
            for jj in (0..n).step_by(tile as usize) {
                for _i in 0..n {
                    for j in jj..(jj + tile).min(n) {
                        for k in 0..n {
                            sim.access((k * n + j) * 8);
                        }
                    }
                }
            }
            black_box(sim.stats())
        });
    });
}

criterion_group!(benches, bench_access_patterns, bench_tiled_sweep);
criterion_main!(benches);
