//! Criterion bench for §V-G: per-formulation solve cost by kernel
//! dimensionality, the stand-in for the paper's Z3 timing study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eatss::{EatssConfig, ModelGenerator};
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;
use std::hint::black_box;

fn bench_solve_by_depth(c: &mut Criterion) {
    let arch = GpuArch::ga100();
    let mut group = c.benchmark_group("eatss_solve");
    group.sample_size(10);
    for name in ["mvt", "gemm", "conv-2d"] {
        let b = eatss_kernels::by_name(name).expect("registered");
        let program = b.program().expect("parses");
        let sizes = b.sizes(Dataset::ExtraLarge);
        let depth = program.max_depth();
        let config = EatssConfig {
            warp_fraction: if depth > 3 { 0.125 } else { 0.5 },
            ..EatssConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("iterative_maximize", format!("{name}-{depth}D")),
            &program,
            |bench, program| {
                bench.iter(|| {
                    let model = ModelGenerator::new(&arch, config.clone())
                        .build(black_box(program), Some(&sizes))
                        .expect("builds");
                    black_box(model.solve().ok())
                });
            },
        );
    }
    group.finish();
}

fn bench_model_build(c: &mut Criterion) {
    let arch = GpuArch::ga100();
    let b = eatss_kernels::by_name("2mm").expect("registered");
    let program = b.program().expect("parses");
    let sizes = b.sizes(Dataset::ExtraLarge);
    c.bench_function("eatss_model_build_2mm", |bench| {
        bench.iter(|| {
            ModelGenerator::new(&arch, EatssConfig::default())
                .build(black_box(&program), Some(&sizes))
                .expect("builds")
        });
    });
}

criterion_group!(benches, bench_solve_by_depth, bench_model_build);
criterion_main!(benches);
