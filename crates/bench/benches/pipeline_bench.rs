//! Criterion bench of the full EATSS pipeline (model → solve → compile →
//! simulate), per kernel class — the end-to-end cost §V-G compares
//! against autotuning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eatss::{Eatss, EatssConfig};
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let eatss = Eatss::new(GpuArch::ga100());
    let mut group = c.benchmark_group("pipeline_end_to_end");
    group.sample_size(10);
    for name in ["gemm", "mvt", "jacobi-2d", "mttkrp"] {
        let b = eatss_kernels::by_name(name).expect("registered");
        let program = b.program().expect("parses");
        let sizes = b.sizes(Dataset::ExtraLarge);
        let config = EatssConfig {
            warp_fraction: if program.max_depth() > 3 { 0.125 } else { 0.5 },
            ..EatssConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |bench, p| {
            bench.iter(|| {
                let solution = eatss
                    .select_tiles(black_box(p), &sizes, &config)
                    .expect("feasible");
                eatss
                    .evaluate(p, &solution.tiles, &sizes, &config)
                    .expect("compiles")
            });
        });
    }
    group.finish();
}

fn bench_evaluate_only(c: &mut Criterion) {
    let eatss = Eatss::new(GpuArch::ga100());
    let b = eatss_kernels::by_name("2mm").expect("registered");
    let program = b.program().expect("parses");
    let sizes = b.sizes(Dataset::ExtraLarge);
    let config = EatssConfig::default();
    let tiles = eatss_affine::tiling::TileConfig::ppcg_default(3);
    c.bench_function("evaluate_variant_2mm", |bench| {
        bench.iter(|| {
            eatss
                .evaluate(black_box(&program), &tiles, &sizes, &config)
                .expect("compiles")
        });
    });
}

criterion_group!(benches, bench_end_to_end, bench_evaluate_only);
criterion_main!(benches);
