//! Criterion bench of the GPU-model simulation throughput (the paper's
//! exploratory studies run hundreds of variants per benchmark, so each
//! simulation must be cheap).

use criterion::{criterion_group, criterion_main, Criterion};
use eatss_gpusim::{Gpu, GpuArch, KernelExecSpec, RefAccess};
use std::hint::black_box;

fn gemm_spec() -> KernelExecSpec {
    let n: i64 = 4000;
    KernelExecSpec {
        name: "bench-gemm".into(),
        grid_blocks: 15_625,
        grid_x_blocks: 125,
        threads_per_block: 512,
        points_per_thread: 2,
        serial_steps_per_block: 125,
        flops_total: 2.0 * (n as f64).powi(3),
        elem_bytes: 8,
        shared_bytes_per_block: 8 * 1024,
        l1_avail_bytes: 96 * 1024,
        num_refs: 3,
        refs: vec![
            RefAccess {
                name: "C".into(),
                staged_shared: false,
                tile_footprint_elems: 1024,
                block_footprint_elems: 1024,
                total_footprint_elems: n * n,
                accesses_per_block: 1024 * 125,
                coalesced: true,
                contiguous_x_elems: n,
                varies_block_x: true,
                varies_block_y: true,
                is_write: true,
            },
            RefAccess {
                name: "A".into(),
                staged_shared: true,
                tile_footprint_elems: 1024,
                block_footprint_elems: 32 * n,
                total_footprint_elems: n * n,
                accesses_per_block: 1024 * n,
                coalesced: true,
                contiguous_x_elems: n,
                varies_block_x: false,
                varies_block_y: true,
                is_write: false,
            },
            RefAccess {
                name: "B".into(),
                staged_shared: false,
                tile_footprint_elems: 1024,
                block_footprint_elems: 32 * n,
                total_footprint_elems: n * n,
                accesses_per_block: 1024 * n,
                coalesced: true,
                contiguous_x_elems: n,
                varies_block_x: true,
                varies_block_y: false,
                is_write: false,
            },
        ],
    }
}

fn bench_simulate(c: &mut Criterion) {
    let gpu = Gpu::new(GpuArch::ga100());
    let spec = gemm_spec();
    c.bench_function("simulate_single_launch", |b| {
        b.iter(|| gpu.simulate(black_box(&spec)))
    });
}

fn bench_simulate_program(c: &mut Criterion) {
    let gpu = Gpu::new(GpuArch::ga100());
    let specs = vec![gemm_spec(); 8];
    c.bench_function("simulate_program_of_8_kernels", |b| {
        b.iter(|| gpu.simulate_program(black_box(&specs)))
    });
}

criterion_group!(benches, bench_simulate, bench_simulate_program);
criterion_main!(benches);
