//! The parallel oracle sweep is deterministic: `--jobs N` must produce a
//! report byte-identical to the sequential run — same per-benchmark
//! seeds, same config/point/failure counts, same text. Random samples
//! come from per-benchmark seeded RNGs, so worker scheduling cannot
//! reorder or reseed anything observable.

use eatss_bench::oracle::{run_oracle_sweep, OracleSweepOptions};

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let base = OracleSweepOptions {
        space_cap: 5,
        time_cap: 2,
        random: 1,
        jobs: 1,
        ..OracleSweepOptions::default()
    };
    let sequential = run_oracle_sweep(&base);
    assert_eq!(sequential.failures, 0, "sequential sweep must be clean");
    assert!(sequential.configs > 0 && sequential.points > 0);
    for jobs in [2, 4] {
        let parallel = run_oracle_sweep(&OracleSweepOptions { jobs, ..base.clone() });
        assert_eq!(
            sequential.report, parallel.report,
            "jobs={jobs}: report differs from the sequential run"
        );
        assert_eq!(sequential.configs, parallel.configs, "jobs={jobs}");
        assert_eq!(sequential.points, parallel.points, "jobs={jobs}");
        assert_eq!(sequential.failures, parallel.failures, "jobs={jobs}");
    }
}

#[test]
fn batched_sweep_is_byte_identical_to_per_config() {
    // The batched oracle shares one reference interpretation and one
    // emulator plan cache per benchmark, but its verdicts — and hence the
    // report bytes — must be indistinguishable from the per-config path,
    // sequential or parallel.
    let base = OracleSweepOptions {
        space_cap: 5,
        time_cap: 2,
        random: 1,
        jobs: 1,
        ..OracleSweepOptions::default()
    };
    let per_config = run_oracle_sweep(&base);
    assert_eq!(per_config.failures, 0, "per-config sweep must be clean");
    for jobs in [1, 4] {
        let batched = run_oracle_sweep(&OracleSweepOptions {
            batched: true,
            jobs,
            ..base.clone()
        });
        assert_eq!(
            per_config.report, batched.report,
            "batched jobs={jobs}: report differs from the per-config run"
        );
        assert_eq!(per_config.configs, batched.configs, "jobs={jobs}");
        assert_eq!(per_config.points, batched.points, "jobs={jobs}");
        assert_eq!(per_config.failures, batched.failures, "jobs={jobs}");
    }
}
