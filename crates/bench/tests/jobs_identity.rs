//! The parallel oracle sweep is deterministic: `--jobs N` must produce a
//! report byte-identical to the sequential run — same per-benchmark
//! seeds, same config/point/failure counts, same text. Random samples
//! come from per-benchmark seeded RNGs, so worker scheduling cannot
//! reorder or reseed anything observable.

use eatss_bench::oracle::{run_oracle_sweep, OracleSweepOptions};

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let base = OracleSweepOptions {
        space_cap: 5,
        time_cap: 2,
        random: 1,
        jobs: 1,
        ..OracleSweepOptions::default()
    };
    let sequential = run_oracle_sweep(&base);
    assert_eq!(sequential.failures, 0, "sequential sweep must be clean");
    assert!(sequential.configs > 0 && sequential.points > 0);
    for jobs in [2, 4] {
        let parallel = run_oracle_sweep(&OracleSweepOptions { jobs, ..base.clone() });
        assert_eq!(
            sequential.report, parallel.report,
            "jobs={jobs}: report differs from the sequential run"
        );
        assert_eq!(sequential.configs, parallel.configs, "jobs={jobs}");
        assert_eq!(sequential.points, parallel.points, "jobs={jobs}");
        assert_eq!(sequential.failures, parallel.failures, "jobs={jobs}");
    }
}
