//! `eatss` — command-line front end for the tile-size selector.
//!
//! ```text
//! eatss <kernel.eatss | benchmark-name> [options]
//! eatss serve [daemon flags]     run the tuning service (delegates to
//!                                the sibling `eatss-serve` binary)
//!
//! options:
//!   --kernel NAME              alias for the positional input
//!   --kernel-dir DIR           parse every *.eatss file in DIR (in
//!                              parallel with --jobs) and report per-file
//!                              results instead of running the selector
//!   --arch NAME|PATH           target GPU: a builtin device profile
//!                              (ga100, xavier, h100, orin, nano) or a
//!                              JSON/TOML profile file (default: ga100)
//!   --split <0..1>             shared-memory split factor (default: 0.5)
//!   --warp-frac <f>            warp fraction (default: 0.5)
//!   --fp32                     single precision (default: FP64)
//!   --strict-cap               literal B_size <= T_P_B (default: virtual)
//!   --size NAME=VALUE          bind a problem-size parameter (repeatable)
//!   --dataset standard|xl      use a registered benchmark's dataset
//!   --sweep                    run the split x warp-fraction sweep
//!   --jobs <N>                 sweep worker threads (0 = all cores; default 1)
//!   --deadline-ms <N>          wall-clock solve budget per point (anytime)
//!   --emit-smt                 print the SMT-LIB formulation
//!   --emit-cuda                print the generated CUDA for the selection
//!   --evaluate                 measure the selection on the GPU model
//!   --verify                   check the selection with the execution oracle
//!   --verify-seed <N>          oracle input seed (default: 0xEA755)
//!   --trace <out.json>         record a pipeline trace (implies --evaluate)
//!   --trace-format jsonl|chrome  trace serialization (default: chrome)
//!   --log-level off|error|info|debug  stderr verbosity (default: info)
//! ```

use eatss::{Eatss, EatssConfig, ModelGenerator, Precision, SweepOptions, ThreadBlockCap};
use eatss_affine::parser::parse_program;
use eatss_affine::tiling::TileConfig;
use eatss_affine::{Kernel, ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use eatss_ppcg::Ppcg;
use eatss_smt::SolverConfig;
use eatss_trace::{Level, Provenance, TraceFormat};
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    input: String,
    kernel_dir: Option<String>,
    arch: GpuArch,
    config: EatssConfig,
    sizes: Vec<(String, i64)>,
    dataset: Option<eatss_kernels::Dataset>,
    sweep: bool,
    jobs: usize,
    deadline: Option<Duration>,
    emit_smt: bool,
    emit_cuda: bool,
    evaluate: bool,
    verify: bool,
    verify_seed: u64,
    trace: Option<String>,
    trace_format: TraceFormat,
    log_level: Level,
}

fn usage() -> ExitCode {
    eatss_trace::error!(
        "usage: eatss <kernel.eatss | benchmark-name> [--kernel NAME] [--kernel-dir DIR] \
         [--arch NAME|PROFILE.json] [--split F] [--warp-frac F] [--fp32] [--strict-cap] \
         [--size NAME=VALUE]... [--dataset standard|xl] [--sweep] [--jobs N] \
         [--deadline-ms N] [--emit-smt] [--emit-cuda] [--evaluate] \
         [--verify] [--verify-seed N] \
         [--trace OUT.json] [--trace-format jsonl|chrome] \
         [--log-level off|error|info|debug]\n       \
         eatss serve [daemon flags]   run the tuning service (see `eatss-serve --help`)"
    );
    ExitCode::from(2)
}

/// Spawns the `eatss-serve` daemon: the binary next to this one if it
/// exists (the cargo layout), else whatever `PATH` resolves.
fn run_serve(args: Vec<String>) -> ExitCode {
    let program = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("eatss-serve")))
        .filter(|sibling| sibling.exists())
        .unwrap_or_else(|| std::path::PathBuf::from("eatss-serve"));
    match std::process::Command::new(&program).args(&args).status() {
        Ok(status) => ExitCode::from(status.code().unwrap_or(1).clamp(0, 255) as u8),
        Err(e) => {
            eatss_trace::error!(
                "cannot launch `{}`: {e} (build it with `cargo build -p eatss-serve`)",
                program.display()
            );
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        kernel_dir: None,
        arch: GpuArch::ga100(),
        config: EatssConfig::default(),
        sizes: Vec::new(),
        dataset: None,
        sweep: false,
        jobs: 1,
        deadline: None,
        emit_smt: false,
        emit_cuda: false,
        evaluate: false,
        verify: false,
        verify_seed: 0xEA755,
        trace: None,
        trace_format: TraceFormat::Chrome,
        log_level: Level::Info,
    };
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--arch" => {
                let spec = next_value(&mut args, "--arch")?;
                // A builtin profile name, or a path to a JSON/TOML
                // device-profile file.
                opts.arch = match eatss_gpusim::DeviceProfile::builtin(&spec) {
                    Some(profile) => profile.into_arch(),
                    None if std::path::Path::new(&spec).exists() => {
                        eatss_gpusim::DeviceProfile::load(&spec)
                            .map_err(|e| format!("--arch {spec}: {e}"))?
                            .into_arch()
                    }
                    None => {
                        return Err(format!(
                            "unknown arch `{spec}` (expected one of {:?} or a profile file)",
                            eatss_gpusim::DeviceProfile::builtin_names()
                        ))
                    }
                };
            }
            "--split" => {
                opts.config.split_factor = next_value(&mut args, "--split")?
                    .parse()
                    .map_err(|e| format!("--split: {e}"))?;
            }
            "--warp-frac" => {
                opts.config.warp_fraction = next_value(&mut args, "--warp-frac")?
                    .parse()
                    .map_err(|e| format!("--warp-frac: {e}"))?;
            }
            "--fp32" => opts.config.precision = Precision::F32,
            "--strict-cap" => opts.config.cap = ThreadBlockCap::Strict,
            "--size" => {
                let kv = next_value(&mut args, "--size")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--size expects NAME=VALUE, got `{kv}`"))?;
                let v: i64 = v.parse().map_err(|e| format!("--size {k}: {e}"))?;
                opts.sizes.push((k.to_owned(), v));
            }
            "--dataset" => {
                opts.dataset = Some(match next_value(&mut args, "--dataset")?.as_str() {
                    "standard" => eatss_kernels::Dataset::Standard,
                    "xl" | "extralarge" => eatss_kernels::Dataset::ExtraLarge,
                    other => return Err(format!("unknown dataset `{other}`")),
                });
            }
            "--sweep" => opts.sweep = true,
            "--jobs" => {
                opts.jobs = next_value(&mut args, "--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--deadline-ms" => {
                let ms: u64 = next_value(&mut args, "--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                opts.deadline = Some(Duration::from_millis(ms));
            }
            "--emit-smt" => opts.emit_smt = true,
            "--emit-cuda" => opts.emit_cuda = true,
            "--evaluate" => opts.evaluate = true,
            "--verify" => opts.verify = true,
            "--verify-seed" => {
                opts.verify_seed = next_value(&mut args, "--verify-seed")?
                    .parse()
                    .map_err(|e| format!("--verify-seed: {e}"))?;
            }
            "--kernel" => {
                let name = next_value(&mut args, "--kernel")?;
                if !opts.input.is_empty() {
                    return Err("multiple inputs given".to_owned());
                }
                opts.input = name;
            }
            "--kernel-dir" => {
                opts.kernel_dir = Some(next_value(&mut args, "--kernel-dir")?);
            }
            "--trace" => opts.trace = Some(next_value(&mut args, "--trace")?),
            "--trace-format" => {
                let text = next_value(&mut args, "--trace-format")?;
                opts.trace_format = TraceFormat::parse(&text)
                    .ok_or_else(|| format!("unknown trace format `{text}`"))?;
            }
            "--log-level" => {
                let text = next_value(&mut args, "--log-level")?;
                opts.log_level = Level::parse(&text)
                    .ok_or_else(|| format!("unknown log level `{text}`"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            positional => {
                if !opts.input.is_empty() {
                    return Err("multiple inputs given".to_owned());
                }
                opts.input = positional.to_owned();
            }
        }
    }
    if opts.kernel_dir.is_some() {
        if !opts.input.is_empty() {
            return Err("--kernel-dir cannot be combined with an input kernel".to_owned());
        }
    } else if opts.input.is_empty() {
        return Err("no input kernel".to_owned());
    }
    // A trace should cover the whole solve -> codegen -> simulate
    // pipeline, so tracing a plain selection implies --evaluate.
    if opts.trace.is_some() && !opts.sweep {
        opts.evaluate = true;
    }
    Ok(opts)
}

fn load_program(opts: &Options) -> Result<(Program, ProblemSizes), String> {
    // A registered benchmark name wins; otherwise treat the input as a
    // path to a kernel file.
    if let Some(bench) = eatss_kernels::by_name(&opts.input) {
        let program = bench.program().map_err(|e| e.to_string())?;
        let mut sizes =
            bench.sizes(opts.dataset.unwrap_or(eatss_kernels::Dataset::ExtraLarge));
        for (k, v) in &opts.sizes {
            sizes.set(k.clone(), *v);
        }
        return Ok((program, sizes));
    }
    let source = std::fs::read_to_string(&opts.input)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.input))?;
    let program = parse_program(&source).map_err(|e| e.to_string())?;
    let sizes = ProblemSizes::new(opts.sizes.iter().map(|(k, v)| (k.clone(), *v)));
    Ok((program, sizes))
}

/// `--kernel-dir`: batch-parse every `*.eatss` file in a directory on
/// the scoped pool and print a deterministic per-file report to stdout.
///
/// Files are sorted by name and results merge in input order, so the
/// output is byte-identical for any `--jobs` value — CI pins this with
/// a literal `cmp` between `--jobs 1` and `--jobs 4` runs.
fn run_kernel_dir(dir: &str, opts: &Options) -> Result<(), String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory `{dir}`: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "eatss"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .eatss files in `{dir}`"));
    }
    let sources: Vec<(String, String)> = paths
        .iter()
        .map(|p| {
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            std::fs::read_to_string(p)
                .map(|src| (name, src))
                .map_err(|e| format!("cannot read `{}`: {e}", p.display()))
        })
        .collect::<Result<_, _>>()?;
    let results = eatss_affine::parser::parse_files(&sources, opts.jobs);
    let mut failed = 0usize;
    for ((name, src), result) in sources.iter().zip(&results) {
        match result {
            Ok(program) => {
                let stmts: usize = program.kernels.iter().map(|k| k.stmts.len()).sum();
                println!(
                    "{name}: ok ({} kernel(s), max depth {}, {stmts} stmt(s), {} byte(s))",
                    program.kernels.len(),
                    program.kernels.iter().map(Kernel::depth).max().unwrap_or(0),
                    src.len()
                );
            }
            Err(e) => {
                failed += 1;
                println!("{name}: FAILED");
                println!("{}", eatss_affine::parser::render_snippet(src, e));
            }
        }
    }
    println!("parsed {}/{} file(s)", results.len() - failed, results.len());
    if failed > 0 {
        return Err(format!("{failed} file(s) failed to parse"));
    }
    Ok(())
}

fn run(opts: &Options) -> Result<(), String> {
    if let Some(dir) = &opts.kernel_dir {
        return run_kernel_dir(dir, opts);
    }
    let (program, sizes) = load_program(opts)?;
    let eatss = Eatss::new(opts.arch.clone());
    eatss_trace::debug!(
        "input `{}`: {} kernel(s), arch {}",
        program.name,
        program.kernels.len(),
        opts.arch.name
    );

    if opts.sweep {
        let mut sweep_opts = SweepOptions {
            jobs: opts.jobs,
            ..SweepOptions::default()
        };
        if let Some(deadline) = opts.deadline {
            for attempt in &mut sweep_opts.attempts {
                attempt.deadline = Some(deadline);
            }
        }
        let sweep = eatss
            .sweep_with(
                &program,
                &sizes,
                &eatss::sweep::PAPER_SPLITS,
                &[0.5, 0.25, 0.125],
                &sweep_opts,
            )
            .map_err(|e| e.to_string())?;
        println!(
            "{:<8} {:<8} {:<9} {:<12} {:<18} {:>9} {:>8} {:>9}",
            "split", "wfrac", "cap", "provenance", "tiles", "GFLOP/s", "W", "PPW"
        );
        for p in &sweep.points {
            println!(
                "{:<8.2} {:<8.3} {:<9} {:<12} {:<18} {:>9.1} {:>8.1} {:>9.2}",
                p.config.split_factor,
                p.config.warp_fraction,
                format!("{:?}", p.config.cap),
                p.solution.provenance.to_string(),
                p.solution.tiles.to_string(),
                p.report.gflops,
                p.report.avg_power_w,
                p.report.ppw
            );
        }
        if !sweep.infeasible.is_empty() {
            println!(
                "\n{} configuration(s) degraded to default tiling:",
                sweep.infeasible.len()
            );
            for (config, reason) in &sweep.infeasible {
                println!(
                    "  split={:.2} wfrac={:.3} {:?}: {reason}",
                    config.split_factor, config.warp_fraction, config.cap
                );
            }
        }
        if !sweep.failures.is_empty() {
            println!("\n{} configuration(s) unmeasurable:", sweep.failures.len());
            for (config, error) in &sweep.failures {
                println!(
                    "  split={:.2} wfrac={:.3} {:?}: {error}",
                    config.split_factor, config.warp_fraction, config.cap
                );
            }
        }
        if let Some(best) = sweep.best_by_ppw() {
            println!("\nbest by PPW: {}", best.solution.tiles);
        }
        return Ok(());
    }

    if opts.emit_smt {
        let model = ModelGenerator::new(&opts.arch, opts.config.clone())
            .build(&program, Some(&sizes))
            .map_err(|e| e.to_string())?;
        println!("{}", model.to_smtlib());
    }

    let solution = if let Some(deadline) = opts.deadline {
        ModelGenerator::new(&opts.arch, opts.config.clone())
            .with_solver_config(SolverConfig {
                deadline: Some(deadline),
                ..SolverConfig::default()
            })
            .build(&program, Some(&sizes))
            .and_then(|m| m.solve())
            .map_err(|e| e.to_string())?
    } else {
        eatss
            .select_tiles(&program, &sizes, &opts.config)
            .map_err(|e| e.to_string())?
    };
    println!("tiles     : {}", solution.tiles);
    println!("objective : {}", solution.objective);
    println!(
        "solver    : {} calls, {:.4} s, {}",
        solution.solver_calls,
        solution.solve_time.as_secs_f64(),
        if solution.optimal {
            "optimal".to_owned()
        } else {
            format!("anytime ({})", solution.provenance)
        }
    );
    println!(
        "overhead  : {} nodes, {} bound prunes, {} warm seeds, {} warm cut hits, \
         propagation {:.4} s, search {:.4} s",
        solution.stats.nodes,
        solution.stats.bound_prunes,
        solution.stats.warm_seeds,
        solution.stats.warm_cut_hits,
        solution.stats.propagation_time.as_secs_f64(),
        solution.stats.search_time.as_secs_f64()
    );

    if opts.emit_cuda {
        let compiled = Ppcg::new(opts.arch.clone())
            .compile(
                &program,
                &solution.tiles,
                &sizes,
                &opts.config.compile_options(&opts.arch),
            )
            .map_err(|e| e.to_string())?;
        println!("\n{}", compiled.cuda_source);
    }

    if opts.verify {
        // Differential oracle: emulate the compiled GPU execution on
        // shrunk sizes and compare element-wise against the interpreter,
        // for both the selected tiles and the PPCG default.
        let small = eatss_ppcg::verify_sizes(&program, &sizes, 19, 3);
        let oracle_opts = eatss_ppcg::OracleOptions {
            compile: opts.config.compile_options(&opts.arch),
            ..eatss_ppcg::OracleOptions::default()
        };
        let configs = [
            ("EATSS", solution.tiles.clone()),
            ("32^d", TileConfig::ppcg_default(program.max_depth())),
        ];
        for (label, tiles) in &configs {
            let started = std::time::Instant::now();
            match eatss_ppcg::verify(
                &program,
                tiles,
                &opts.arch,
                &small,
                &oracle_opts,
                opts.verify_seed,
            ) {
                Ok(report) => {
                    let wall = started.elapsed().as_secs_f64();
                    println!(
                        "verify {label:<6}: OK — {} point(s), {} block(s), \
                         {} staged elem(s), {} array(s) bitwise-equal \
                         ({:.1} ms, {:.0} points/s, seed {})",
                        report.points,
                        report.blocks,
                        report.staged_elems,
                        report.arrays_compared,
                        wall * 1e3,
                        report.points as f64 / wall.max(1e-9),
                        opts.verify_seed
                    )
                }
                Err(e) => {
                    return Err(format!("verify {label}: {e}"));
                }
            }
        }
    }

    if opts.evaluate {
        let ours = eatss
            .evaluate(&program, &solution.tiles, &sizes, &opts.config)
            .map_err(|e| e.to_string())?;
        let default = eatss
            .evaluate(
                &program,
                &TileConfig::ppcg_default(program.max_depth()),
                &sizes,
                &opts.config,
            )
            .map_err(|e| e.to_string())?;
        println!("\nEATSS   : {ours}");
        println!("default : {default}");
        if ours.valid && default.valid {
            println!(
                "speedup {:.3}x, PPW ratio {:.3}x, energy ratio {:.3}x",
                default.time_s / ours.time_s,
                ours.ppw / default.ppw,
                ours.energy_j / default.energy_j
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    // `eatss serve ...` delegates to the sibling `eatss-serve` daemon
    // binary (this crate cannot depend on the serve crate — the
    // dependency runs the other way); remaining flags pass through.
    let mut argv = std::env::args().skip(1);
    if argv.next().as_deref() == Some("serve") {
        return run_serve(argv.collect());
    }

    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eatss_trace::error!("{e}");
            return usage();
        }
    };
    eatss_trace::set_log_level(opts.log_level);
    if opts.trace.is_some() {
        eatss_trace::start_collecting();
    }
    let result = run(&opts);
    // The trace is written even when the run failed: a trace of a failing
    // pipeline is exactly when you want one.
    if let Some(path) = &opts.trace {
        let trace = eatss_trace::drain(Provenance::collect(Some(opts.jobs)));
        match trace.write(std::path::Path::new(path), opts.trace_format) {
            Ok(()) => eatss_trace::info!(
                "trace: {} event(s) written to {path} ({:?})",
                trace.events.len(),
                opts.trace_format
            ),
            Err(e) => eatss_trace::error!("cannot write trace `{path}`: {e}"),
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eatss_trace::error!("{e}");
            usage()
        }
    }
}
