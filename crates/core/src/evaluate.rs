//! End-to-end evaluation: PPCG compilation + GPU-model measurement.

use eatss_affine::tiling::TileConfig;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::{Gpu, GpuArch, SimFault, SimReport};
use eatss_ppcg::{CompileError, CompileOptions, Ppcg};
use std::error::Error;
use std::fmt;

/// Evaluation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvaluateError {
    /// The PPCG stand-in rejected the configuration.
    Compile(CompileError),
    /// A kernel launch failed during measurement (only reachable when
    /// the device carries an injected fault plan).
    Simulation(SimFault),
}

impl fmt::Display for EvaluateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaluateError::Compile(e) => write!(f, "compilation failed: {e}"),
            EvaluateError::Simulation(e) => write!(f, "measurement failed: {e}"),
        }
    }
}

impl Error for EvaluateError {}

impl From<CompileError> for EvaluateError {
    fn from(e: CompileError) -> Self {
        EvaluateError::Compile(e)
    }
}

impl From<SimFault> for EvaluateError {
    fn from(e: SimFault) -> Self {
        EvaluateError::Simulation(e)
    }
}

/// Compiles `program` with `tiles` and measures it on the GPU model.
///
/// Stencil time loops multiply the single-launch measurement by the
/// launch count, and multi-kernel programs aggregate as a sequence —
/// exactly how the paper's per-benchmark numbers combine kernel runs.
///
/// # Errors
///
/// Returns [`EvaluateError`] when compilation fails. An *unexecutable*
/// configuration (block too large for an SM) is not an error: it yields
/// an invalid [`SimReport`] (`valid == false`), mirroring a failed launch
/// on real hardware.
pub fn evaluate_program(
    arch: &GpuArch,
    program: &Program,
    tiles: &TileConfig,
    sizes: &ProblemSizes,
    options: &CompileOptions,
) -> Result<SimReport, EvaluateError> {
    evaluate_program_repeated(arch, program, tiles, sizes, options, 1)
}

/// Like [`evaluate_program`], but models a measurement that loops the
/// whole program `repeats` times back-to-back (the paper's §V-A
/// methodology runs each variant 100 times): the clock-boost power ramp
/// is computed over the looped duration, so long sessions report
/// steady-state power, while the returned time/energy stay per-call.
///
/// # Errors
///
/// Same conditions as [`evaluate_program`].
pub fn evaluate_program_repeated(
    arch: &GpuArch,
    program: &Program,
    tiles: &TileConfig,
    sizes: &ProblemSizes,
    options: &CompileOptions,
    repeats: i64,
) -> Result<SimReport, EvaluateError> {
    evaluate_program_with(&Gpu::new(arch.clone()), program, tiles, sizes, options, repeats)
}

/// Like [`evaluate_program_repeated`], but measures on a caller-supplied
/// device — the entry point that lets a [`Gpu`] carrying an injected
/// [`FaultPlan`](eatss_gpusim::FaultPlan) flow through the pipeline.
///
/// # Errors
///
/// [`EvaluateError::Compile`] when compilation fails and
/// [`EvaluateError::Simulation`] when an injected fault aborts a launch.
pub fn evaluate_program_with(
    gpu: &Gpu,
    program: &Program,
    tiles: &TileConfig,
    sizes: &ProblemSizes,
    options: &CompileOptions,
    repeats: i64,
) -> Result<SimReport, EvaluateError> {
    let arch = gpu.arch();
    let ppcg = Ppcg::new(arch.clone());
    let compiled = {
        let mut stage = eatss_trace::span("pipeline", "codegen");
        if stage.is_active() {
            stage.arg("program", program.name.as_str());
            stage.arg("tiles", tiles.to_string());
        }
        ppcg.compile(program, tiles, sizes, options)?
    };
    let mut stage = eatss_trace::span("pipeline", "simulate");
    if stage.is_active() {
        stage.arg("program", program.name.as_str());
        stage.arg("launches", compiled.mappings.len());
    }
    let reports: Vec<SimReport> = compiled
        .mappings
        .iter()
        .map(|m| {
            gpu.try_simulate(&m.to_exec_spec())
                .map(|r| r.repeated(m.launch_count))
        })
        .collect::<Result<_, SimFault>>()?;
    drop(stage);
    let mut combined = SimReport::sequence(&reports);
    combined.name = program.name.clone();
    // The measurement-level power ramp (§II / Fig. 1): short measurement
    // sessions are sampled mostly during clock boost and average near
    // idle power. The ramp is driven by the looped session length.
    let session = combined.repeated(repeats.max(1));
    let mut ramped = session.clone();
    ramped.apply_power_ramp(arch.idle_power_w(), arch.power_ramp_tau_s);
    combined.avg_power_w = ramped.avg_power_w;
    combined.dynamic_power_w = ramped.dynamic_power_w;
    combined.static_power_w = ramped.static_power_w;
    if combined.valid {
        combined.energy_j = combined.avg_power_w * combined.time_s;
        combined.ppw = if combined.avg_power_w > 0.0 {
            combined.gflops / combined.avg_power_w
        } else {
            0.0
        };
    }
    Ok(combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eatss_affine::parser::parse_program;

    fn mm() -> Program {
        parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap()
    }

    #[test]
    fn matmul_evaluates_to_sane_numbers() {
        let arch = GpuArch::ga100();
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let r = evaluate_program(
            &arch,
            &mm(),
            &TileConfig::ppcg_default(3),
            &sizes,
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(r.valid);
        // 2*2000^3 = 1.6e10 FLOPs at GA100 scale: milliseconds to seconds.
        assert!(r.time_s > 1e-5 && r.time_s < 60.0, "time {}", r.time_s);
        assert!(r.gflops > 50.0, "gflops {}", r.gflops);
        assert!(r.avg_power_w > 50.0 && r.avg_power_w <= 251.0);
    }

    #[test]
    fn launch_count_scales_stencils() {
        let arch = GpuArch::ga100();
        let p = parse_program(
            "kernel jac(T, N) {
               for seq (t: T) for (i: N) for (j: N)
                 B[i][j] = A[i][j-1] + A[i][j+1] + A[i][j];
             }",
        )
        .unwrap();
        let tiles = TileConfig::new(vec![1, 32, 32]);
        let small = ProblemSizes::new([("T", 10), ("N", 1000)]);
        let large = ProblemSizes::new([("T", 100), ("N", 1000)]);
        let opts = CompileOptions::default();
        let r_small = evaluate_program(&arch, &p, &tiles, &small, &opts).unwrap();
        let r_large = evaluate_program(&arch, &p, &tiles, &large, &opts).unwrap();
        let ratio = r_large.time_s / r_small.time_s;
        assert!((9.0..11.0).contains(&ratio), "ratio {ratio}");
        // Rates are launch-invariant.
        assert!((r_large.gflops - r_small.gflops).abs() / r_small.gflops < 1e-6);
    }

    #[test]
    fn unmappable_kernel_is_a_compile_error() {
        let arch = GpuArch::ga100();
        let p = parse_program("kernel s(N) { for (i: N) A[i] = A[i-1] + 1.0; }").unwrap();
        let e = evaluate_program(
            &arch,
            &p,
            &TileConfig::ppcg_default(1),
            &ProblemSizes::new([("N", 100)]),
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(e, EvaluateError::Compile(_)));
        assert!(e.to_string().contains("compilation failed"));
    }

    #[test]
    fn oversized_shared_is_invalid_not_error() {
        // A huge staged tile exceeds the per-SM shared memory: the launch
        // is reported invalid rather than failing compilation.
        let arch = GpuArch::ga100();
        let sizes = ProblemSizes::new([("M", 4000), ("N", 4000), ("P", 4000)]);
        let opts = CompileOptions {
            shared_budget_bytes: 4 * 1024 * 1024, // permissive budget
            ..CompileOptions::default()
        };
        let r = evaluate_program(
            &arch,
            &mm(),
            &TileConfig::new(vec![512, 4, 512]), // A-tile = 512*512*8 = 2 MiB
            &sizes,
            &opts,
        )
        .unwrap();
        assert!(!r.valid);
    }
}
