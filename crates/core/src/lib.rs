//! **EATSS** — the Energy-Aware Tile Size Selection Scheme of
//! *"Energy-Aware Tile Size Selection for Affine Programs on GPUs"*
//! (Jayaweera, Kong, Wang, Kaeli — CGO 2024), reproduced in Rust.
//!
//! EATSS derives, per affine kernel, a non-linear integer formulation
//! whose variables are the tile sizes of the loop nest:
//!
//! * tile sizes are bounded and warp-aligned (§IV-B),
//! * per-reference data-tile volumes `V^f` (§IV-C) populate L1 /
//!   shared-memory / L2 capacity constraints under a *split factor*
//!   (§IV-E, §IV-H, §IV-J),
//! * thread-block size and register-per-SM constraints encode the GPU
//!   execution model (§IV-F, §IV-G) with FP32/FP64 awareness (§IV-I),
//! * the objective `OBJ = Π_{i par} T_i + Σ H_i·T_i` trades intra-thread
//!   locality for inter-thread sharing (§IV-K),
//! * the formulation is maximized by iteratively asserting
//!   `OBJ_{n+1} > OBJ_n` (§IV-L) with the `eatss-smt` solver.
//!
//! The selected tiles are handed to the PPCG stand-in (`eatss-ppcg`) and
//! evaluated on the GPU model (`eatss-gpusim`), mirroring the paper's
//! EATSS → PPCG → hardware pipeline.
//!
//! # Examples
//!
//! ```
//! use eatss::{Eatss, EatssConfig};
//! use eatss_affine::{parser::parse_program, ProblemSizes};
//! use eatss_gpusim::GpuArch;
//!
//! let program = parse_program(
//!     "kernel mm(M, N, P) {
//!        for (i: M) for (j: N) for (k: P)
//!          C[i][j] += A[i][k] * B[k][j];
//!      }")?;
//! let eatss = Eatss::new(GpuArch::ga100());
//! let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
//! let solution = eatss.select_tiles(&program, &sizes, &EatssConfig::default())?;
//! assert_eq!(solution.tiles.sizes().len(), 3);
//! // Tile sizes respect the warp-alignment factor.
//! assert!(solution.tiles.sizes().iter().all(|t| t % 16 == 0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod error;
pub mod evaluate;
pub mod journal;
pub mod model;
pub mod persist;
pub mod sweep;

pub use cache::{TileCache, TileCacheStats};
pub use journal::{Journal, JournalConfig, RecoveryStats, ReplayedEntries, SyncPolicy};
pub use persist::PersistentTileCache;
pub use config::{EatssConfig, Precision, ThreadBlockCap};
pub use error::{PipelineError, PipelineStage};
pub use evaluate::{
    evaluate_program, evaluate_program_repeated, evaluate_program_with, EvaluateError,
};
pub use model::{Ablation, EatssError, EatssModel, EatssSolution, ModelGenerator, SolutionProvenance};
pub use sweep::{pareto_front, SolveAttempt, SweepOptions, SweepOutcome, SweepPoint};

use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::{Gpu, GpuArch, SimReport};

/// The EATSS pipeline: model generation → iterative solving → PPCG
/// compilation → simulated measurement.
#[derive(Debug, Clone)]
pub struct Eatss {
    gpu: Gpu,
}

impl Eatss {
    /// Creates the scheme for a target architecture.
    pub fn new(arch: GpuArch) -> Self {
        Eatss {
            gpu: Gpu::new(arch),
        }
    }

    /// Creates the scheme around an explicit device — the entry point for
    /// measuring on a [`Gpu`] that carries an injected
    /// [`FaultPlan`](eatss_gpusim::FaultPlan).
    pub fn with_gpu(gpu: Gpu) -> Self {
        Eatss { gpu }
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        self.gpu.arch()
    }

    /// The measurement device.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Selects tile sizes for `program` under one configuration
    /// (split factor, warp fraction, precision).
    ///
    /// # Errors
    ///
    /// Returns [`EatssError`] when the formulation is unsatisfiable
    /// (e.g. the warp-alignment factor leaves no feasible tile) or the
    /// solver fails.
    pub fn select_tiles(
        &self,
        program: &Program,
        sizes: &ProblemSizes,
        config: &EatssConfig,
    ) -> Result<EatssSolution, EatssError> {
        ModelGenerator::new(self.arch(), config.clone())
            .build(program, Some(sizes))?
            .solve()
    }

    /// Evaluates a tile configuration end-to-end: PPCG compilation plus
    /// GPU-model measurement (time, power, energy, PPW).
    ///
    /// # Errors
    ///
    /// Returns [`EvaluateError`] if compilation fails or an injected
    /// fault aborts a launch.
    pub fn evaluate(
        &self,
        program: &Program,
        tiles: &eatss_affine::tiling::TileConfig,
        sizes: &ProblemSizes,
        config: &EatssConfig,
    ) -> Result<SimReport, EvaluateError> {
        let options = config.compile_options(self.arch());
        evaluate_program_with(&self.gpu, program, tiles, sizes, &options, 1)
    }

    /// Runs the paper's configuration sweep (§V-B generates three
    /// shared-memory levels per benchmark; §V-D adds warp fractions) and
    /// returns every point plus the PPW-best one. Unsolvable points
    /// degrade to PPCG's default `32^d` tiling (see [`SweepOptions`]).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] when no configuration at all could be
    /// measured, or on systemic solver/formulation failures.
    pub fn sweep(
        &self,
        program: &Program,
        sizes: &ProblemSizes,
        splits: &[f64],
        warp_fractions: &[f64],
    ) -> Result<SweepOutcome, PipelineError> {
        sweep::run(self, program, sizes, splits, warp_fractions)
    }

    /// Like [`Eatss::sweep`], but under an explicit degradation policy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Eatss::sweep`].
    pub fn sweep_with(
        &self,
        program: &Program,
        sizes: &ProblemSizes,
        splits: &[f64],
        warp_fractions: &[f64],
        options: &SweepOptions,
    ) -> Result<SweepOutcome, PipelineError> {
        sweep::run_with(self, program, sizes, splits, warp_fractions, options)
    }
}
