//! Crash-safe, fingerprint-sharded append-only journal — the durability
//! layer under [`PersistentTileCache`](crate::persist::PersistentTileCache).
//!
//! # File format (version 1)
//!
//! A journal is a directory of `shard-NNN.log` files. Each shard starts
//! with a 20-byte header:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "EATSSJNL"
//! 8       4     format version (u32 LE, currently 1)
//! 12      4     shard index (u32 LE)
//! 16      4     shard count (u32 LE)
//! ```
//!
//! followed by zero or more length-prefixed, checksummed records:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length L (u32 LE)
//! 4       8     FNV-1a 64 checksum of the payload bytes (u64 LE)
//! 12      L     payload: key length K (u32 LE) | key (K bytes) | value
//! ```
//!
//! A record is *committed* once its bytes are written and (under
//! [`SyncPolicy::Always`]) fsync'd. Appends are a single `write_all`
//! of the full record, so a crash — including `kill -9` — can only
//! produce a *torn tail*: a prefix of the last record. Recovery walks
//! the shard from the header, validating each record:
//!
//! * a record whose length prefix or payload extends past end-of-file is
//!   a torn tail — the file is truncated at the last validated offset;
//! * a record whose length prefix is implausible (> the configured
//!   maximum) makes every later boundary untrustworthy — the rest of the
//!   shard is discarded the same way;
//! * a record whose checksum does not match is *skipped* (the declared
//!   length still locates the next boundary) and counted in
//!   [`RecoveryStats::corrupt_records_skipped`] — a flipped bit loses
//!   that record, never the shard and never the process.
//!
//! Compaction rewrites each shard from the live in-memory entries into
//! `shard-NNN.log.tmp`, fsyncs it, and atomically renames it over the
//! old shard (then fsyncs the directory), so a crash mid-compaction
//! leaves either the old or the new file — never a mix.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every shard file.
pub const MAGIC: &[u8; 8] = b"EATSSJNL";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;
/// Header size in bytes: magic + version + shard index + shard count.
pub const HEADER_BYTES: u64 = 20;
/// Record prefix size: length + checksum.
pub const RECORD_PREFIX_BYTES: u64 = 12;

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every append — an `Ok` return means the record
    /// survives `kill -9` and power loss. The default.
    #[default]
    Always,
    /// Leave flushing to the OS. Faster; a hard kill may lose the most
    /// recent appends (recovery still never loses *earlier* records).
    Never,
}

/// Journal tuning knobs.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Number of shard files the fingerprint space is folded into.
    pub shards: u32,
    /// Durability of individual appends.
    pub sync: SyncPolicy,
    /// Upper bound on a single record's payload. Recovery treats larger
    /// declared lengths as corruption (the boundary chain is broken).
    pub max_record_bytes: u32,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            shards: 8,
            sync: SyncPolicy::Always,
            max_record_bytes: 16 << 20,
        }
    }
}

/// The `(key, value)` pairs recovered from a journal at open, in
/// replay (append) order within each shard.
pub type ReplayedEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// What recovery found (and repaired) while opening a journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records that validated and were replayed.
    pub records_recovered: u64,
    /// Records skipped for a checksum or payload-structure mismatch.
    pub corrupt_records_skipped: u64,
    /// Shards whose tail was truncated (torn write or broken boundary).
    pub torn_tails_truncated: u64,
    /// Bytes discarded by truncation.
    pub bytes_discarded: u64,
}

impl RecoveryStats {
    fn absorb(&mut self, other: RecoveryStats) {
        self.records_recovered += other.records_recovered;
        self.corrupt_records_skipped += other.corrupt_records_skipped;
        self.torn_tails_truncated += other.torn_tails_truncated;
        self.bytes_discarded += other.bytes_discarded;
    }
}

/// FNV-1a 64-bit over `bytes` — the record checksum. Hand-rolled (no
/// external crates) and stable across platforms and releases.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Shard {
    path: PathBuf,
    file: File,
    /// Validated length; appends go here.
    len: u64,
}

/// A sharded append-only journal of `(key, value)` byte records.
pub struct Journal {
    dir: PathBuf,
    shards: Vec<Shard>,
    config: JournalConfig,
    recovery: RecoveryStats,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .field("recovery", &self.recovery)
            .finish()
    }
}

fn header_bytes(index: u32, count: u32) -> [u8; HEADER_BYTES as usize] {
    let mut h = [0u8; HEADER_BYTES as usize];
    h[..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&index.to_le_bytes());
    h[16..20].copy_from_slice(&count.to_le_bytes());
    h
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

fn bad_data(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// Best-effort directory fsync so renames and creations are durable.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, recovering every
    /// committed record. Returns the journal and the replayed records in
    /// per-shard append order.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`io::ErrorKind::InvalidData`] when a shard file
    /// carries a foreign magic/version or was written with a different
    /// shard count (resharding is not implicit — it would silently strand
    /// committed entries).
    pub fn open(dir: &Path, config: JournalConfig) -> io::Result<(Journal, ReplayedEntries)> {
        assert!(config.shards > 0, "journal needs at least one shard");
        fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(config.shards as usize);
        let mut recovery = RecoveryStats::default();
        let mut records = Vec::new();
        for index in 0..config.shards {
            let path = dir.join(format!("shard-{index:03}.log"));
            let (shard, stats) = Shard::open(path, index, &config, &mut records)?;
            recovery.absorb(stats);
            shards.push(shard);
        }
        sync_dir(dir);
        Ok((
            Journal {
                dir: dir.to_path_buf(),
                shards,
                config,
                recovery,
            },
            records,
        ))
    }

    /// What recovery found while opening.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// The shard a fingerprint routes to.
    pub fn shard_of(&self, fingerprint: u64) -> u32 {
        (fingerprint % u64::from(self.config.shards)) as u32
    }

    /// Appends one record. On `Ok` under [`SyncPolicy::Always`] the
    /// record is durable against hard kills.
    ///
    /// # Errors
    ///
    /// I/O failures; the record is rejected (`InvalidData`) if it exceeds
    /// the configured maximum payload size.
    pub fn append(&mut self, fingerprint: u64, key: &[u8], value: &[u8]) -> io::Result<()> {
        let payload_len = 4 + key.len() + value.len();
        if payload_len > self.config.max_record_bytes as usize {
            return Err(bad_data(format!(
                "record payload of {payload_len} bytes exceeds the {}-byte cap",
                self.config.max_record_bytes
            )));
        }
        let mut record = Vec::with_capacity(RECORD_PREFIX_BYTES as usize + payload_len);
        record.extend_from_slice(&(payload_len as u32).to_le_bytes());
        record.extend_from_slice(&[0u8; 8]); // checksum patched below
        record.extend_from_slice(&(key.len() as u32).to_le_bytes());
        record.extend_from_slice(key);
        record.extend_from_slice(value);
        let checksum = fnv1a64(&record[RECORD_PREFIX_BYTES as usize..]);
        record[4..12].copy_from_slice(&checksum.to_le_bytes());

        let sync = self.config.sync;
        let shard_index = self.shard_of(fingerprint) as usize;
        let shard = &mut self.shards[shard_index];
        shard.file.seek(SeekFrom::Start(shard.len))?;
        if let Err(e) = shard.file.write_all(&record) {
            // A partial append is a torn tail; trim it now so the live
            // handle keeps its invariants without waiting for recovery.
            let _ = shard.file.set_len(shard.len);
            return Err(e);
        }
        if sync == SyncPolicy::Always {
            shard.file.sync_data()?;
        }
        shard.len += record.len() as u64;
        Ok(())
    }

    /// Flushes OS buffers on every shard (meaningful under
    /// [`SyncPolicy::Never`]).
    ///
    /// # Errors
    ///
    /// Propagates fsync failures.
    pub fn flush(&mut self) -> io::Result<()> {
        for shard in &mut self.shards {
            shard.file.sync_data()?;
        }
        Ok(())
    }

    /// Atomically replaces every shard with a snapshot of `entries`
    /// (dropping superseded duplicates and skipped garbage). Write-temp +
    /// fsync + rename + directory fsync: a crash leaves either the old or
    /// the new shard file intact.
    ///
    /// # Errors
    ///
    /// I/O failures; on error the old shard files remain authoritative.
    pub fn compact<'a, I>(&mut self, entries: I) -> io::Result<()>
    where
        I: Iterator<Item = (u64, &'a [u8], Vec<u8>)>,
    {
        let mut grouped: Vec<Vec<(&[u8], Vec<u8>)>> =
            (0..self.config.shards).map(|_| Vec::new()).collect();
        for (fingerprint, key, value) in entries {
            grouped[self.shard_of(fingerprint) as usize].push((key, value));
        }
        for (index, group) in grouped.into_iter().enumerate() {
            let final_path = self.shards[index].path.clone();
            let tmp_path = final_path.with_extension("log.tmp");
            {
                let mut tmp = File::create(&tmp_path)?;
                tmp.write_all(&header_bytes(index as u32, self.config.shards))?;
                for (key, value) in group {
                    let payload_len = 4 + key.len() + value.len();
                    let mut record =
                        Vec::with_capacity(RECORD_PREFIX_BYTES as usize + payload_len);
                    record.extend_from_slice(&(payload_len as u32).to_le_bytes());
                    record.extend_from_slice(&[0u8; 8]);
                    record.extend_from_slice(&(key.len() as u32).to_le_bytes());
                    record.extend_from_slice(key);
                    record.extend_from_slice(&value);
                    let checksum = fnv1a64(&record[RECORD_PREFIX_BYTES as usize..]);
                    record[4..12].copy_from_slice(&checksum.to_le_bytes());
                    tmp.write_all(&record)?;
                }
                tmp.sync_all()?;
            }
            fs::rename(&tmp_path, &final_path)?;
            sync_dir(&self.dir);
            // Reopen the live handle on the new file.
            let file = OpenOptions::new().read(true).write(true).open(&final_path)?;
            let len = file.metadata()?.len();
            self.shards[index] = Shard {
                path: final_path,
                file,
                len,
            };
        }
        Ok(())
    }

    /// Total bytes across all shard files (headers included).
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.len).sum()
    }

    /// Record bytes across all shards — [`Journal::bytes`] minus the
    /// fixed per-shard headers. The denominator for garbage ratios.
    pub fn data_bytes(&self) -> u64 {
        self.bytes().saturating_sub(HEADER_BYTES * self.shards.len() as u64)
    }

    /// Per-shard file sizes (headers included), in shard-index order.
    pub fn shard_bytes(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.len).collect()
    }
}

impl Shard {
    fn open(
        path: PathBuf,
        index: u32,
        config: &JournalConfig,
        records: &mut Vec<(Vec<u8>, Vec<u8>)>,
    ) -> io::Result<(Shard, RecoveryStats)> {
        let mut stats = RecoveryStats::default();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < HEADER_BYTES as usize {
            // Empty or torn header (a crash during creation): start over.
            if !bytes.is_empty() {
                stats.torn_tails_truncated += 1;
                stats.bytes_discarded += bytes.len() as u64;
            }
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header_bytes(index, config.shards))?;
            file.sync_data()?;
            return Ok((
                Shard {
                    path,
                    file,
                    len: HEADER_BYTES,
                },
                stats,
            ));
        }
        if &bytes[..8] != MAGIC {
            return Err(bad_data(format!(
                "{}: not an EATSS journal shard (bad magic)",
                path.display()
            )));
        }
        let version = read_u32(&bytes, 8);
        if version != FORMAT_VERSION {
            return Err(bad_data(format!(
                "{}: journal format v{version}, this build reads v{FORMAT_VERSION}",
                path.display()
            )));
        }
        let file_index = read_u32(&bytes, 12);
        let file_count = read_u32(&bytes, 16);
        if file_index != index || file_count != config.shards {
            return Err(bad_data(format!(
                "{}: shard {file_index}/{file_count} but the journal was opened \
                 as {index}/{} — resharding an existing cache directory is not \
                 supported (it would strand committed entries)",
                path.display(),
                config.shards
            )));
        }

        // Walk the records. `validated` tracks the end of the last good
        // boundary — everything past it gets truncated on a torn tail.
        let mut pos = HEADER_BYTES as usize;
        let mut validated = pos;
        loop {
            let remaining = bytes.len() - pos;
            if remaining == 0 {
                break;
            }
            if remaining < RECORD_PREFIX_BYTES as usize {
                break; // torn prefix
            }
            let payload_len = read_u32(&bytes, pos) as usize;
            if payload_len > config.max_record_bytes as usize {
                // The boundary chain is broken; nothing past here can be
                // located reliably.
                break;
            }
            let payload_start = pos + RECORD_PREFIX_BYTES as usize;
            let payload_end = payload_start + payload_len;
            if payload_end > bytes.len() {
                break; // torn payload
            }
            let declared = read_u64(&bytes, pos + 4);
            let payload = &bytes[payload_start..payload_end];
            if fnv1a64(payload) != declared {
                stats.corrupt_records_skipped += 1;
                pos = payload_end;
                validated = pos;
                continue;
            }
            // Payload structure: key length must fit.
            if payload_len < 4 || 4 + read_u32(payload, 0) as usize > payload_len {
                stats.corrupt_records_skipped += 1;
                pos = payload_end;
                validated = pos;
                continue;
            }
            let key_len = read_u32(payload, 0) as usize;
            records.push((
                payload[4..4 + key_len].to_vec(),
                payload[4 + key_len..].to_vec(),
            ));
            stats.records_recovered += 1;
            pos = payload_end;
            validated = pos;
        }
        if validated < bytes.len() {
            stats.torn_tails_truncated += 1;
            stats.bytes_discarded += (bytes.len() - validated) as u64;
            file.set_len(validated as u64)?;
            file.sync_data()?;
        }
        Ok((
            Shard {
                path,
                file,
                len: validated as u64,
            },
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eatss-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let dir = temp_dir("roundtrip");
        let cfg = JournalConfig {
            shards: 3,
            ..JournalConfig::default()
        };
        let (mut j, recovered) = Journal::open(&dir, cfg.clone()).unwrap();
        assert!(recovered.is_empty());
        for i in 0u64..20 {
            j.append(i, &i.to_le_bytes(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        drop(j);
        let (j, recovered) = Journal::open(&dir, cfg).unwrap();
        assert_eq!(recovered.len(), 20);
        assert_eq!(j.recovery().records_recovered, 20);
        assert_eq!(j.recovery().corrupt_records_skipped, 0);
        assert_eq!(j.recovery().torn_tails_truncated, 0);
        // Per-shard order is append order; every record present exactly once.
        let mut seen: Vec<u64> = recovered
            .iter()
            .map(|(k, _)| u64::from_le_bytes(k[..8].try_into().unwrap()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let dir = temp_dir("torn");
        let cfg = JournalConfig {
            shards: 1,
            ..JournalConfig::default()
        };
        let (mut j, _) = Journal::open(&dir, cfg.clone()).unwrap();
        j.append(0, b"k0", b"v0").unwrap();
        j.append(0, b"k1", b"v1").unwrap();
        drop(j);
        let path = dir.join("shard-000.log");
        let len = fs::metadata(&path).unwrap().len();
        // Chop 3 bytes off the second record's payload.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (j, recovered) = Journal::open(&dir, cfg).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, b"k0");
        assert_eq!(j.recovery().torn_tails_truncated, 1);
        assert!(j.recovery().bytes_discarded > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_skips_exactly_that_record() {
        let dir = temp_dir("bitflip");
        let cfg = JournalConfig {
            shards: 1,
            ..JournalConfig::default()
        };
        let (mut j, _) = Journal::open(&dir, cfg.clone()).unwrap();
        j.append(0, b"k0", b"v0").unwrap();
        j.append(0, b"k1", b"v1").unwrap();
        j.append(0, b"k2", b"v2").unwrap();
        drop(j);
        let path = dir.join("shard-000.log");
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload bit in the middle record.
        let rec = (RECORD_PREFIX_BYTES as usize) + 4 + 2 + 2; // record 0
        let mid_payload = HEADER_BYTES as usize + rec + RECORD_PREFIX_BYTES as usize + 5;
        bytes[mid_payload] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let (j, recovered) = Journal::open(&dir, cfg).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].0, b"k0");
        assert_eq!(recovered[1].0, b"k2");
        assert_eq!(j.recovery().corrupt_records_skipped, 1);
        assert_eq!(j.recovery().torn_tails_truncated, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_after_recovery_extend_the_validated_tail() {
        let dir = temp_dir("extend");
        let cfg = JournalConfig {
            shards: 1,
            ..JournalConfig::default()
        };
        let (mut j, _) = Journal::open(&dir, cfg.clone()).unwrap();
        j.append(0, b"a", b"1").unwrap();
        drop(j);
        // Torn garbage at the tail.
        let path = dir.join("shard-000.log");
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xFF, 0x01, 0x02]).unwrap();
        drop(f);
        let (mut j, recovered) = Journal::open(&dir, cfg.clone()).unwrap();
        assert_eq!(recovered.len(), 1);
        j.append(0, b"b", b"2").unwrap();
        drop(j);
        let (_, recovered) = Journal::open(&dir, cfg).unwrap();
        assert_eq!(recovered.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resharding_is_rejected() {
        let dir = temp_dir("reshard");
        let cfg = |n| JournalConfig {
            shards: n,
            ..JournalConfig::default()
        };
        let (mut j, _) = Journal::open(&dir, cfg(2)).unwrap();
        j.append(0, b"k", b"v").unwrap();
        drop(j);
        let err = Journal::open(&dir, cfg(4)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_superseded_entries_atomically() {
        let dir = temp_dir("compact");
        let cfg = JournalConfig {
            shards: 2,
            ..JournalConfig::default()
        };
        let (mut j, _) = Journal::open(&dir, cfg.clone()).unwrap();
        for rev in 0..10u64 {
            j.append(7, b"same-key", format!("rev{rev}").as_bytes())
                .unwrap();
        }
        let before = j.bytes();
        j.compact([(7u64, b"same-key".as_slice(), b"rev9".to_vec())].into_iter())
            .unwrap();
        assert!(j.bytes() < before);
        drop(j);
        let (_, recovered) = Journal::open(&dir, cfg).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].1, b"rev9");
        let _ = fs::remove_dir_all(&dir);
    }
}
