//! A [`TileCache`] that survives restarts — and `kill -9`.
//!
//! [`PersistentTileCache`] pairs the in-memory collision-safe cache with
//! the sharded append-only [`Journal`](crate::journal::Journal): every
//! *committed* result (a proved-optimal solution or a proved
//! infeasibility) is appended to disk before it is served, and opening
//! the cache replays the journal to warm-start the index. Anytime
//! (budget-limited) and fallback selections are served but never
//! persisted — a later request with a larger budget must be able to
//! improve on them.
//!
//! The value encoding is deliberately dumb: fixed-width little-endian
//! fields, no varints, one format version byte. A value that fails to
//! decode (a corrupt record that slipped past the journal checksum, or a
//! future format) is counted and skipped, never trusted.

use crate::cache::{encode_key, fingerprint_key, TileCache, TileCacheStats};
use crate::config::EatssConfig;
use crate::journal::{Journal, JournalConfig, RecoveryStats, RECORD_PREFIX_BYTES};
use crate::model::{EatssError, EatssSolution, SolutionProvenance};
use eatss_affine::tiling::TileConfig;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use eatss_smt::SolverStats;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::time::Duration;

/// Version byte opening every encoded value. Bumped to 2 when the
/// warm-start counters joined [`SolverStats`]; version-1 journal entries
/// decode to `None` and are re-solved on the next miss.
const VALUE_VERSION: u8 = 2;
/// Value tags.
const TAG_SOLUTION: u8 = 0;
const TAG_INFEASIBLE: u8 = 1;

/// Encodes a cache result for the journal. Returns `None` for results
/// that must not be persisted: anytime/fallback solutions (a bigger
/// budget could beat them) and transient errors (faults, exhaustion —
/// retrying may succeed).
pub fn encode_result(result: &Result<EatssSolution, EatssError>) -> Option<Vec<u8>> {
    let mut v = Vec::with_capacity(160);
    v.push(VALUE_VERSION);
    match result {
        Ok(s) if s.provenance == SolutionProvenance::Solved => {
            v.push(TAG_SOLUTION);
            let sizes = s.tiles.sizes();
            v.extend_from_slice(&(sizes.len() as u32).to_le_bytes());
            for &t in sizes {
                v.extend_from_slice(&t.to_le_bytes());
            }
            v.extend_from_slice(&s.objective.to_le_bytes());
            v.extend_from_slice(&s.solver_calls.to_le_bytes());
            v.extend_from_slice(&(s.solve_time.as_micros() as u64).to_le_bytes());
            v.push(u8::from(s.optimal));
            for c in [
                s.stats.checks,
                s.stats.nodes,
                s.stats.propagations,
                s.stats.values_pruned,
                s.stats.backtracks,
                s.stats.node_limit_hits,
                s.stats.deadline_hits,
                s.stats.cancellations,
                s.stats.bound_prunes,
                s.stats.hull_rebuilds,
                s.stats.warm_seeds,
                s.stats.warm_cut_hits,
                s.stats.solve_time.as_micros() as u64,
                s.stats.propagation_time.as_micros() as u64,
                s.stats.search_time.as_micros() as u64,
            ] {
                v.extend_from_slice(&c.to_le_bytes());
            }
            Some(v)
        }
        Err(EatssError::Unsatisfiable { reason }) => {
            v.push(TAG_INFEASIBLE);
            v.extend_from_slice(&(reason.len() as u32).to_le_bytes());
            v.extend_from_slice(reason.as_bytes());
            Some(v)
        }
        _ => None,
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8).map(|s| i64::from_le_bytes(s.try_into().unwrap()))
    }
}

/// Decodes a journaled value. `None` means the bytes are not a valid
/// persisted result (corrupt or from the future) — the entry is dropped.
pub fn decode_result(bytes: &[u8]) -> Option<Result<EatssSolution, EatssError>> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.u8()? != VALUE_VERSION {
        return None;
    }
    let result = match c.u8()? {
        TAG_SOLUTION => {
            let n = c.u32()? as usize;
            if n > 64 {
                return None; // no kernel is 64-deep; reject garbage early
            }
            let mut sizes = Vec::with_capacity(n);
            for _ in 0..n {
                sizes.push(c.i64()?);
            }
            let objective = c.i64()?;
            let solver_calls = c.u32()?;
            let solve_time = Duration::from_micros(c.u64()?);
            let optimal = match c.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let mut counters = [0u64; 15];
            for slot in &mut counters {
                *slot = c.u64()?;
            }
            Ok(EatssSolution {
                tiles: TileConfig::new(sizes),
                objective,
                solver_calls,
                solve_time,
                optimal,
                provenance: SolutionProvenance::Solved,
                stats: SolverStats {
                    checks: counters[0],
                    nodes: counters[1],
                    propagations: counters[2],
                    values_pruned: counters[3],
                    backtracks: counters[4],
                    node_limit_hits: counters[5],
                    deadline_hits: counters[6],
                    cancellations: counters[7],
                    bound_prunes: counters[8],
                    hull_rebuilds: counters[9],
                    warm_seeds: counters[10],
                    warm_cut_hits: counters[11],
                    solve_time: Duration::from_micros(counters[12]),
                    propagation_time: Duration::from_micros(counters[13]),
                    search_time: Duration::from_micros(counters[14]),
                },
            })
        }
        TAG_INFEASIBLE => {
            let len = c.u32()? as usize;
            let reason = String::from_utf8(c.take(len)?.to_vec()).ok()?;
            Err(EatssError::Unsatisfiable { reason })
        }
        _ => return None,
    };
    if c.pos != bytes.len() {
        return None; // trailing bytes ⇒ not something this version wrote
    }
    Some(result)
}

/// A journaled, warm-starting tile cache.
///
/// All of [`TileCache`]'s semantics carry over — full structural keys,
/// collision-safe buckets, hit/miss/infeasible statistics — plus:
///
/// * committed results (optimal solutions, proved infeasibilities) are
///   appended to an on-disk journal *before* they are served, so an `Ok`
///   response implies durability (under [`SyncPolicy::Always`]
///   (crate::journal::SyncPolicy::Always));
/// * opening the cache replays the journal, warm-starting the index
///   across restarts and hard kills;
/// * [`PersistentTileCache::compact`] rewrites the journal to the live
///   entry set, atomically.
#[derive(Debug)]
pub struct PersistentTileCache {
    mem: TileCache,
    journal: Option<Journal>,
    /// Journal records that decoded to valid results on open.
    replayed: u64,
    /// Journal records whose value failed to decode (dropped).
    undecodable: u64,
    /// Entries appended to the journal over this cache's lifetime.
    persisted: u64,
    /// On-disk record size of the *latest* record per key. Superseded
    /// records, undecodable values and corrupt skipped bytes are the
    /// complement: garbage.
    live_sizes: HashMap<Vec<u8>, u64>,
    /// Sum of `live_sizes` values (maintained incrementally).
    live_bytes: u64,
}

/// On-disk footprint of one journal record: prefix + key-length field +
/// key + value (see the record layout in [`crate::journal`]).
fn record_size(key: &[u8], value: &[u8]) -> u64 {
    RECORD_PREFIX_BYTES + 4 + key.len() as u64 + value.len() as u64
}

impl PersistentTileCache {
    /// Opens (or creates) a journaled cache in `dir`, replaying every
    /// committed entry.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O and format errors — see
    /// [`Journal::open`](crate::journal::Journal::open).
    pub fn open(dir: &Path, arch: GpuArch, config: JournalConfig) -> io::Result<Self> {
        let (journal, records) = Journal::open(dir, config)?;
        let mut mem = TileCache::new(arch);
        let mut replayed = 0;
        let mut undecodable = 0;
        let mut live_sizes: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut live_bytes = 0u64;
        for (key, value) in records {
            match decode_result(&value) {
                // Later records supersede earlier ones for the same key
                // (compaction leaves one; a crashed compaction may leave
                // the append-order duplicates, which replay idempotently).
                Some(result) => {
                    let size = record_size(&key, &value);
                    let old = live_sizes.insert(key.clone(), size);
                    live_bytes = live_bytes + size - old.unwrap_or(0);
                    mem.replay_key(key, result);
                    replayed += 1;
                }
                None => undecodable += 1,
            }
        }
        Ok(PersistentTileCache {
            mem,
            journal: Some(journal),
            replayed,
            undecodable,
            persisted: 0,
            live_sizes,
            live_bytes,
        })
    }

    /// An in-memory cache with the same interface and no journal — for
    /// callers that want one code path with durability as a config knob.
    pub fn ephemeral(arch: GpuArch) -> Self {
        PersistentTileCache {
            mem: TileCache::new(arch),
            journal: None,
            replayed: 0,
            undecodable: 0,
            persisted: 0,
            live_sizes: HashMap::new(),
            live_bytes: 0,
        }
    }

    /// Accounts a freshly appended record as the live one for its key,
    /// demoting any previous record to garbage.
    fn note_live(&mut self, key: &[u8], value: &[u8]) {
        let size = record_size(key, value);
        let old = self.live_sizes.insert(key.to_vec(), size);
        self.live_bytes = self.live_bytes + size - old.unwrap_or(0);
    }

    /// Whether a journal backs this cache.
    pub fn is_durable(&self) -> bool {
        self.journal.is_some()
    }

    /// What journal recovery found on open (all zeros for ephemeral).
    pub fn recovery(&self) -> RecoveryStats {
        self.journal.as_ref().map(Journal::recovery).unwrap_or_default()
    }

    /// Journal records replayed into the index on open.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Journal records dropped on open because their value no longer
    /// decodes.
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }

    /// Entries appended to the journal by this process.
    pub fn persisted(&self) -> u64 {
        self.persisted
    }

    /// Hit/miss counters (replay does not count).
    pub fn stats(&self) -> TileCacheStats {
        self.mem.stats()
    }

    /// Number of memoized formulations.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// Whether nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Looks up a pre-encoded key, counting a hit when present.
    pub fn lookup_key(&mut self, key: &[u8]) -> Option<Result<EatssSolution, EatssError>> {
        self.mem.lookup_key(key)
    }

    /// Inserts an externally computed result, counting a miss (plus the
    /// infeasible/error classification) and journaling it when it is a
    /// committed result. The journal append happens *first*: if it fails,
    /// the entry is not served from memory either, so the cache never
    /// claims durability it does not have.
    ///
    /// # Errors
    ///
    /// Journal I/O failures (the in-memory index is left unchanged).
    pub fn insert_key(
        &mut self,
        key: Vec<u8>,
        result: Result<EatssSolution, EatssError>,
    ) -> io::Result<()> {
        if let Some(journal) = &mut self.journal {
            if let Some(value) = encode_result(&result) {
                journal.append(fingerprint_key(&key), &key, &value)?;
                self.persisted += 1;
                self.note_live(&key, &value);
            }
        }
        self.mem.insert_key(key, result);
        Ok(())
    }

    /// Selects tiles through the cache, journaling newly solved
    /// committed results. Same memoization semantics as
    /// [`TileCache::select`].
    ///
    /// # Errors
    ///
    /// The (possibly cached) [`EatssError`], like [`TileCache::select`].
    /// Journal write failures surface as... they do not: a failed append
    /// downgrades the entry to memory-only rather than failing the
    /// selection (the solve already succeeded; durability is reported
    /// via [`PersistentTileCache::persisted`]).
    pub fn select(
        &mut self,
        program: &Program,
        sizes: &ProblemSizes,
        config: &EatssConfig,
    ) -> Result<EatssSolution, EatssError> {
        let key = encode_key(self.mem.arch(), program, sizes, config);
        if let Some(cached) = self.mem.lookup_key(&key) {
            return cached;
        }
        let result = self.mem.solve_for(program, sizes, config);
        if let Some(journal) = &mut self.journal {
            if let Some(value) = encode_result(&result) {
                if journal.append(fingerprint_key(&key), &key, &value).is_ok() {
                    self.persisted += 1;
                    self.note_live(&key, &value);
                }
            }
        }
        self.mem.insert_key(key, result.clone());
        result
    }

    /// Rewrites the journal to exactly the live committed entries,
    /// dropping superseded duplicates and unreadable values.
    ///
    /// # Errors
    ///
    /// Journal I/O failures; the previous journal remains authoritative.
    pub fn compact(&mut self) -> io::Result<()> {
        let Some(journal) = &mut self.journal else {
            return Ok(());
        };
        journal.compact(self.mem.encoded_entries().filter_map(|(key, result)| {
            encode_result(result).map(|value| (fingerprint_key(key), key, value))
        }))?;
        // The journal now holds exactly one record per live key: rebuild
        // the accounting from scratch so the garbage ratio returns to 0.
        self.live_sizes.clear();
        self.live_bytes = 0;
        for (key, result) in self.mem.encoded_entries() {
            if let Some(value) = encode_result(result) {
                let size = record_size(key, &value);
                self.live_sizes.insert(key.to_vec(), size);
                self.live_bytes += size;
            }
        }
        Ok(())
    }

    /// Flushes OS buffers (meaningful under
    /// [`SyncPolicy::Never`](crate::journal::SyncPolicy::Never)).
    ///
    /// # Errors
    ///
    /// Propagates fsync failures.
    pub fn flush(&mut self) -> io::Result<()> {
        match &mut self.journal {
            Some(j) => j.flush(),
            None => Ok(()),
        }
    }

    /// Total journal bytes on disk (0 for ephemeral).
    pub fn journal_bytes(&self) -> u64 {
        self.journal.as_ref().map_or(0, Journal::bytes)
    }

    /// Bytes of the journal occupied by the latest record of each live
    /// key (0 for ephemeral).
    pub fn live_bytes(&self) -> u64 {
        if self.journal.is_some() {
            self.live_bytes
        } else {
            0
        }
    }

    /// Fraction of journal record bytes that a [`compact`]
    /// (PersistentTileCache::compact) would reclaim: superseded records,
    /// undecodable values and checksum-skipped regions. 0 for an
    /// ephemeral or empty journal.
    pub fn garbage_ratio(&self) -> f64 {
        let Some(journal) = &self.journal else {
            return 0.0;
        };
        let data = journal.data_bytes();
        if data == 0 {
            return 0.0;
        }
        1.0 - self.live_bytes.min(data) as f64 / data as f64
    }

    /// Per-shard journal file sizes, headers included (empty for
    /// ephemeral).
    pub fn shard_bytes(&self) -> Vec<u64> {
        self.journal.as_ref().map(Journal::shard_bytes).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eatss_affine::parser::parse_program;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eatss-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn mm() -> Program {
        parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap()
    }

    fn sizes(n: i64) -> ProblemSizes {
        ProblemSizes::new([("M", n), ("N", n), ("P", n)])
    }

    #[test]
    fn warm_start_across_reopen() {
        let dir = temp_dir("warm");
        let cfg = EatssConfig::default();
        let first = {
            let mut cache =
                PersistentTileCache::open(&dir, GpuArch::ga100(), JournalConfig::default())
                    .unwrap();
            let s = cache.select(&mm(), &sizes(2000), &cfg).unwrap();
            assert_eq!(cache.stats().misses, 1);
            assert_eq!(cache.persisted(), 1);
            s
        };
        let mut cache =
            PersistentTileCache::open(&dir, GpuArch::ga100(), JournalConfig::default()).unwrap();
        assert_eq!(cache.replayed(), 1);
        assert_eq!(cache.len(), 1);
        let again = cache.select(&mm(), &sizes(2000), &cfg).unwrap();
        // Warm start: a hit, not a re-solve, and bitwise-identical tiles.
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 0);
        assert_eq!(again.tiles.sizes(), first.tiles.sizes());
        assert_eq!(again.objective, first.objective);
        // Durations persist at microsecond granularity; the *encoded*
        // forms must match bitwise.
        assert_eq!(
            encode_result(&Ok(again)).unwrap(),
            encode_result(&Ok(first)).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn infeasibility_is_persisted_and_warm_hits() {
        let dir = temp_dir("infeasible");
        let cfg = EatssConfig::default(); // WAF 16 > extents of 8
        {
            let mut cache =
                PersistentTileCache::open(&dir, GpuArch::ga100(), JournalConfig::default())
                    .unwrap();
            let e = cache.select(&mm(), &sizes(8), &cfg).unwrap_err();
            assert!(matches!(e, EatssError::Unsatisfiable { .. }));
            assert_eq!(cache.stats().infeasible, 1);
        }
        let mut cache =
            PersistentTileCache::open(&dir, GpuArch::ga100(), JournalConfig::default()).unwrap();
        let e = cache.select(&mm(), &sizes(8), &cfg).unwrap_err();
        assert!(matches!(e, EatssError::Unsatisfiable { .. }));
        // Served from the warm index: a hit, no solver run.
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_codec_round_trips() {
        let solution = EatssSolution {
            tiles: TileConfig::new(vec![16, 384, 1]),
            objective: 6160,
            solver_calls: 9,
            solve_time: Duration::from_micros(1234),
            optimal: true,
            provenance: SolutionProvenance::Solved,
            stats: SolverStats {
                checks: 9,
                nodes: 1000,
                propagations: 2000,
                values_pruned: 77,
                backtracks: 13,
                bound_prunes: 5,
                hull_rebuilds: 9,
                solve_time: Duration::from_micros(1200),
                propagation_time: Duration::from_micros(700),
                search_time: Duration::from_micros(500),
                ..SolverStats::default()
            },
        };
        let encoded = encode_result(&Ok(solution.clone())).unwrap();
        let decoded = decode_result(&encoded).unwrap().unwrap();
        assert_eq!(decoded.tiles.sizes(), solution.tiles.sizes());
        assert_eq!(decoded.objective, solution.objective);
        assert_eq!(decoded.solver_calls, solution.solver_calls);
        assert_eq!(decoded.solve_time, solution.solve_time);
        assert_eq!(decoded.optimal, solution.optimal);
        assert_eq!(decoded.stats, solution.stats);

        let reason = "WAF 16 exceeds extent 8";
        let infeasible = Err(EatssError::Unsatisfiable {
            reason: reason.into(),
        });
        let decoded = decode_result(&encode_result(&infeasible).unwrap()).unwrap();
        assert_eq!(
            decoded.unwrap_err(),
            EatssError::Unsatisfiable {
                reason: reason.into()
            }
        );
    }

    #[test]
    fn non_committed_results_are_not_persisted() {
        // Anytime and fallback solutions, and transient errors, stay out
        // of the journal.
        let mut anytime = EatssSolution::ppcg_default(3);
        anytime.provenance = SolutionProvenance::SolvedIncomplete;
        assert!(encode_result(&Ok(anytime)).is_none());
        assert!(encode_result(&Ok(EatssSolution::ppcg_default(3))).is_none());
        assert!(encode_result(&Err(EatssError::Exhausted {
            reason: "deadline".into()
        }))
        .is_none());
        assert!(encode_result(&Err(EatssError::EmptyProgram)).is_none());
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let encoded = encode_result(&Err(EatssError::Unsatisfiable {
            reason: "r".into(),
        }))
        .unwrap();
        for cut in 0..encoded.len() {
            assert!(decode_result(&encoded[..cut]).is_none(), "cut at {cut}");
        }
        let mut padded = encoded.clone();
        padded.push(0);
        assert!(decode_result(&padded).is_none());
        assert!(decode_result(&[]).is_none());
        assert!(decode_result(&[9, 9, 9]).is_none());
    }

    #[test]
    fn garbage_ratio_tracks_superseded_records_and_compaction() {
        let dir = temp_dir("garbage");
        let cfg = EatssConfig::default();
        let mut cache =
            PersistentTileCache::open(&dir, GpuArch::ga100(), JournalConfig::default()).unwrap();
        assert_eq!(cache.garbage_ratio(), 0.0);
        let s = cache.select(&mm(), &sizes(2000), &cfg).unwrap();
        // One live record, zero garbage; accounting matches the disk.
        assert_eq!(cache.garbage_ratio(), 0.0);
        assert!(cache.live_bytes() > 0);
        assert_eq!(cache.shard_bytes().len(), JournalConfig::default().shards as usize);

        // Re-journaling the same key supersedes the first record: the
        // two equal-size records make the ratio exactly 1/2.
        let key = encode_key(&GpuArch::ga100(), &mm(), &sizes(2000), &cfg);
        cache.insert_key(key, Ok(s)).unwrap();
        assert!((cache.garbage_ratio() - 0.5).abs() < 1e-9, "{}", cache.garbage_ratio());

        // Reopen sees the same ratio (replay keeps only the latest).
        drop(cache);
        let mut cache =
            PersistentTileCache::open(&dir, GpuArch::ga100(), JournalConfig::default()).unwrap();
        assert_eq!(cache.replayed(), 2);
        assert_eq!(cache.len(), 1);
        assert!((cache.garbage_ratio() - 0.5).abs() < 1e-9);

        // Compaction reclaims the superseded record.
        cache.compact().unwrap();
        assert_eq!(cache.garbage_ratio(), 0.0);
        assert!(cache.live_bytes() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ephemeral_cache_works_without_a_directory() {
        let mut cache = PersistentTileCache::ephemeral(GpuArch::ga100());
        assert!(!cache.is_durable());
        let cfg = EatssConfig::default();
        cache.select(&mm(), &sizes(2000), &cfg).unwrap();
        cache.select(&mm(), &sizes(2000), &cfg).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.persisted(), 0);
        assert_eq!(cache.journal_bytes(), 0);
        assert_eq!(cache.live_bytes(), 0);
        assert_eq!(cache.garbage_ratio(), 0.0);
        assert!(cache.shard_bytes().is_empty());
        cache.flush().unwrap();
        cache.compact().unwrap();
    }
}
