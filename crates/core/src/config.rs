//! EATSS configuration knobs (§IV-I, §IV-J, §IV-B).

use eatss_gpusim::GpuArch;
use eatss_ppcg::CompileOptions;

/// Floating-point precision (§IV-I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Single precision: `FP_factor = 1`.
    F32,
    /// Double precision: `FP_factor = 2` (the paper's default).
    F64,
}

impl Precision {
    /// The `FP_factor` scaling of §IV-I.
    pub fn fp_factor(self) -> i64 {
        match self {
            Precision::F32 => 1,
            Precision::F64 => 2,
        }
    }

    /// Element width in bytes.
    pub fn elem_bytes(self) -> u8 {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }
}

/// How the `B_size ≤ T_P_B` constraint of §IV-F is interpreted.
///
/// The paper's worked example (§IV-A: `T_i=16, T_j=384`) exceeds a
/// literal 1024-thread block, because PPCG caps the *launched* block at
/// `T_P_B` and gives each thread several points. `Virtual` reproduces
/// that reading (the register constraint of §IV-G still bounds the
/// product); `Strict` enforces the literal inequality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThreadBlockCap {
    /// No explicit `B_size` cap; registers/SM bound the product (the
    /// interpretation consistent with the paper's worked example).
    #[default]
    Virtual,
    /// Literal `B_size ≤ T_P_B`.
    Strict,
}

/// One EATSS configuration point.
#[derive(Debug, Clone, PartialEq)]
pub struct EatssConfig {
    /// Shared-memory split factor in `[0, 1]` (§IV-J): 0 gives all
    /// combined capacity to L1, 1 to shared memory.
    pub split_factor: f64,
    /// Warp fraction (§IV-B / §V-D): the warp-alignment factor is
    /// `warp_fraction × T_P_W` (e.g. 0.5 → multiples of 16).
    pub warp_fraction: f64,
    /// Precision (§IV-I).
    pub precision: Precision,
    /// Thread-block cap interpretation (§IV-F).
    pub cap: ThreadBlockCap,
}

impl Default for EatssConfig {
    /// The paper's default operating point: FP64, 50% split, half-warp
    /// alignment (the §IV-A example).
    fn default() -> Self {
        EatssConfig {
            split_factor: 0.5,
            warp_fraction: 0.5,
            precision: Precision::F64,
            cap: ThreadBlockCap::Virtual,
        }
    }
}

impl EatssConfig {
    /// Configuration with a given split factor, other knobs default.
    pub fn with_split(split_factor: f64) -> Self {
        EatssConfig {
            split_factor,
            ..EatssConfig::default()
        }
    }

    /// The warp-alignment factor in threads (≥ 1).
    pub fn warp_alignment_factor(&self, arch: &GpuArch) -> i64 {
        ((arch.threads_per_warp as f64 * self.warp_fraction).round() as i64).max(1)
    }

    /// The PPCG options corresponding to this configuration's split and
    /// precision.
    pub fn compile_options(&self, arch: &GpuArch) -> CompileOptions {
        CompileOptions::with_split(arch, self.split_factor, self.precision.elem_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_factor_matches_paper() {
        assert_eq!(Precision::F32.fp_factor(), 1);
        assert_eq!(Precision::F64.fp_factor(), 2);
        assert_eq!(Precision::F64.elem_bytes(), 8);
    }

    #[test]
    fn default_is_paper_operating_point() {
        let c = EatssConfig::default();
        assert_eq!(c.split_factor, 0.5);
        assert_eq!(c.precision, Precision::F64);
        assert_eq!(c.cap, ThreadBlockCap::Virtual);
        assert_eq!(c.warp_alignment_factor(&GpuArch::ga100()), 16);
    }

    #[test]
    fn warp_fractions_of_section_vd() {
        let arch = GpuArch::ga100();
        for (frac, waf) in [(0.125, 4), (0.25, 8), (0.5, 16), (1.0, 32)] {
            let c = EatssConfig {
                warp_fraction: frac,
                ..EatssConfig::default()
            };
            assert_eq!(c.warp_alignment_factor(&arch), waf);
        }
    }

    #[test]
    fn compile_options_follow_split() {
        let arch = GpuArch::ga100();
        let o = EatssConfig::with_split(0.25).compile_options(&arch);
        assert_eq!(o.l1_avail_bytes, 144 * 1024);
        assert_eq!(o.shared_budget_bytes, 48 * 1024);
        assert_eq!(o.elem_bytes, 8);
    }
}
