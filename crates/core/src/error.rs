//! The unified pipeline error taxonomy.
//!
//! The EATSS pipeline has three stages that can fail — formulate/solve,
//! compile, measure — and each has its own error type. [`PipelineError`]
//! wraps all of them with the stage and a human-readable context (which
//! program, which configuration), so a sweep can report *where* and *why*
//! each point degraded instead of collapsing everything into an opaque
//! "unsatisfiable".

use crate::evaluate::EvaluateError;
use crate::model::EatssError;
use eatss_gpusim::SimFault;
use eatss_ppcg::CompileError;
use eatss_smt::SolveError;
use std::error::Error;
use std::fmt;

/// The pipeline stage an error originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// Building the non-linear integer formulation (§IV).
    Formulate,
    /// Maximizing the formulation (§IV-L).
    Solve,
    /// PPCG compilation of the selected tiles.
    Compile,
    /// Simulated measurement of the compiled program.
    Measure,
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineStage::Formulate => write!(f, "formulate"),
            PipelineStage::Solve => write!(f, "solve"),
            PipelineStage::Compile => write!(f, "compile"),
            PipelineStage::Measure => write!(f, "measure"),
        }
    }
}

/// A failure anywhere in the solve → compile → measure pipeline, with
/// stage attribution and context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The formulation could not be built or has no solution.
    Formulate {
        /// The underlying model error.
        source: EatssError,
        /// What was being formulated (program, configuration).
        context: String,
    },
    /// The solver itself failed (distinct from "no solution exists").
    Solve {
        /// The underlying solver error.
        source: SolveError,
        /// What was being solved.
        context: String,
    },
    /// A satisfiable maximization reported a model but no objective
    /// value — an internal invariant violation, never expected.
    MissingObjective {
        /// What was being solved.
        context: String,
    },
    /// PPCG compilation rejected the tile configuration.
    Compile {
        /// The underlying compile error.
        source: CompileError,
        /// What was being compiled.
        context: String,
    },
    /// The simulated measurement failed (e.g. an injected launch fault).
    Measure {
        /// The underlying simulation fault.
        source: SimFault,
        /// What was being measured.
        context: String,
    },
    /// Not a single sweep configuration produced a measurable point —
    /// even the 32^d default-tiling fallback failed everywhere.
    NoMeasurablePoint {
        /// Number of configurations attempted.
        attempted: usize,
        /// What was being swept.
        context: String,
    },
}

impl PipelineError {
    /// The stage this error originated in.
    pub fn stage(&self) -> PipelineStage {
        match self {
            PipelineError::Formulate { .. } => PipelineStage::Formulate,
            PipelineError::Solve { .. } | PipelineError::MissingObjective { .. } => {
                PipelineStage::Solve
            }
            PipelineError::Compile { .. } => PipelineStage::Compile,
            PipelineError::Measure { .. } | PipelineError::NoMeasurablePoint { .. } => {
                PipelineStage::Measure
            }
        }
    }

    /// The context string attached at construction.
    pub fn context(&self) -> &str {
        match self {
            PipelineError::Formulate { context, .. }
            | PipelineError::Solve { context, .. }
            | PipelineError::MissingObjective { context }
            | PipelineError::Compile { context, .. }
            | PipelineError::Measure { context, .. }
            | PipelineError::NoMeasurablePoint { context, .. } => context,
        }
    }

    /// Classifies a model/solve error into the right pipeline variant.
    pub fn from_eatss(source: EatssError, context: impl Into<String>) -> Self {
        let context = context.into();
        match source {
            EatssError::Solver(source) => PipelineError::Solve { source, context },
            EatssError::MissingObjective => PipelineError::MissingObjective { context },
            other => PipelineError::Formulate {
                source: other,
                context,
            },
        }
    }

    /// Classifies an evaluation error into the right pipeline variant.
    pub fn from_evaluate(source: EvaluateError, context: impl Into<String>) -> Self {
        let context = context.into();
        match source {
            EvaluateError::Compile(source) => PipelineError::Compile { source, context },
            EvaluateError::Simulation(source) => PipelineError::Measure { source, context },
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Formulate { source, context } => {
                write!(f, "[formulate] {context}: {source}")
            }
            PipelineError::Solve { source, context } => {
                write!(f, "[solve] {context}: {source}")
            }
            PipelineError::MissingObjective { context } => write!(
                f,
                "[solve] {context}: satisfiable maximization returned no objective value \
                 (solver invariant violated)"
            ),
            PipelineError::Compile { source, context } => {
                write!(f, "[compile] {context}: {source}")
            }
            PipelineError::Measure { source, context } => {
                write!(f, "[measure] {context}: {source}")
            }
            PipelineError::NoMeasurablePoint { attempted, context } => write!(
                f,
                "[measure] {context}: none of the {attempted} sweep configurations \
                 produced a measurable point, even with default 32^d tiling"
            ),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Formulate { source, .. } => Some(source),
            PipelineError::Solve { source, .. } => Some(source),
            PipelineError::Compile { source, .. } => Some(source),
            PipelineError::Measure { source, .. } => Some(source),
            PipelineError::MissingObjective { .. } | PipelineError::NoMeasurablePoint { .. } => {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eatss_gpusim::FaultKind;

    #[test]
    fn stages_and_context_are_attributed() {
        let e = PipelineError::from_eatss(
            EatssError::Unsatisfiable {
                reason: "empty space".into(),
            },
            "gemm @ split=0.5",
        );
        assert_eq!(e.stage(), PipelineStage::Formulate);
        assert_eq!(e.context(), "gemm @ split=0.5");
        assert!(e.to_string().contains("[formulate]"));
        assert!(e.to_string().contains("empty space"));

        let e = PipelineError::from_eatss(
            EatssError::Solver(SolveError::DivisionByZero),
            "gemm",
        );
        assert_eq!(e.stage(), PipelineStage::Solve);
        assert!(e.source().is_some());

        let e = PipelineError::from_eatss(EatssError::MissingObjective, "gemm");
        assert_eq!(e.stage(), PipelineStage::Solve);
        assert!(e.to_string().contains("invariant"));

        let e = PipelineError::Measure {
            source: SimFault {
                kernel: "k0".into(),
                kind: FaultKind::LaunchFailure,
            },
            context: "gemm".into(),
        };
        assert_eq!(e.stage(), PipelineStage::Measure);
        assert!(e.to_string().contains("k0"));
    }

    #[test]
    fn no_measurable_point_names_the_count() {
        let e = PipelineError::NoMeasurablePoint {
            attempted: 6,
            context: "gemm".into(),
        };
        assert_eq!(e.stage(), PipelineStage::Measure);
        assert!(e.to_string().contains('6'));
        assert!(e.source().is_none());
    }
}
