//! The EATSS model generator: affine program → non-linear integer
//! formulation → iteratively maximized tile sizes (§IV of the paper).

use crate::config::{EatssConfig, ThreadBlockCap};
use eatss_affine::analysis::AccessAnalysis;
use eatss_affine::tiling::TileConfig;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use eatss_smt::{
    Domain, IntExpr, SolveError, Solver, SolverConfig, SolverStats, StopReason, WarmStart,
};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// EATSS failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EatssError {
    /// The formulation has no solution (e.g. warp alignment exceeds a
    /// loop extent — §V-D's "missing configurations"). This is a *proof*:
    /// the search was exhaustive.
    Unsatisfiable {
        /// Explanation for diagnostics.
        reason: String,
    },
    /// A search budget (nodes, deadline, cancellation) ran out before any
    /// feasible model was found. Unlike [`EatssError::Unsatisfiable`]
    /// this proves nothing — retrying with a larger budget or a coarser
    /// domain may still succeed.
    Exhausted {
        /// Which budget ran out.
        reason: String,
    },
    /// The underlying solver failed.
    Solver(SolveError),
    /// A satisfiable maximization returned no objective value — an
    /// internal solver invariant violation, never expected.
    MissingObjective,
    /// A problem-size parameter was needed but unbound.
    UnboundParameter(String),
    /// The program has no kernels.
    EmptyProgram,
}

impl fmt::Display for EatssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EatssError::Unsatisfiable { reason } => {
                write!(f, "formulation is unsatisfiable: {reason}")
            }
            EatssError::Exhausted { reason } => {
                write!(f, "search budget exhausted before a model was found: {reason}")
            }
            EatssError::Solver(e) => write!(f, "solver failure: {e}"),
            EatssError::MissingObjective => write!(
                f,
                "satisfiable maximization returned no objective value \
                 (solver invariant violated)"
            ),
            EatssError::UnboundParameter(p) => {
                write!(f, "problem-size parameter `{p}` is unbound")
            }
            EatssError::EmptyProgram => write!(f, "program has no kernels"),
        }
    }
}

impl Error for EatssError {}

impl From<SolveError> for EatssError {
    fn from(e: SolveError) -> Self {
        EatssError::Solver(e)
    }
}

/// Where a tile selection came from — how much trust to put in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolutionProvenance {
    /// The solver proved the tiles optimal for the formulation.
    Solved,
    /// Anytime result: the tiles are feasible, but a search budget ran
    /// out before optimality was proved — they may be suboptimal.
    SolvedIncomplete,
    /// The solver produced nothing usable; these are PPCG's default
    /// `32^d` tiles, kept so the point is still measurable.
    DefaultFallback,
}

impl fmt::Display for SolutionProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolutionProvenance::Solved => write!(f, "solved"),
            SolutionProvenance::SolvedIncomplete => write!(f, "incomplete"),
            SolutionProvenance::DefaultFallback => write!(f, "fallback"),
        }
    }
}

/// A solved tile selection.
#[derive(Debug, Clone)]
pub struct EatssSolution {
    /// Selected tile sizes (one per program dimension; serial *time*
    /// dimensions are fixed at 1 — PPCG re-launches those).
    pub tiles: TileConfig,
    /// Final objective value (0 for a default fallback).
    pub objective: i64,
    /// Number of solver calls made by the §IV-L loop.
    pub solver_calls: u32,
    /// Wall-clock time spent solving.
    pub solve_time: Duration,
    /// Whether optimality was proved (final call exhausted the space).
    pub optimal: bool,
    /// How this selection was obtained.
    pub provenance: SolutionProvenance,
    /// Solver counters accumulated while producing this solution (all
    /// zeros for a default fallback): nodes, propagation/search time
    /// split, bound prunes — the raw material of the §V-G overhead study.
    pub stats: SolverStats,
}

impl EatssSolution {
    /// The graceful-degradation selection: PPCG's default `32^d` tiling
    /// for a `depth`-dimensional program (PPCG clips tiles to loop trip
    /// counts and handles serial time dimensions itself, so the flat
    /// default is always compilable).
    pub fn ppcg_default(depth: usize) -> Self {
        EatssSolution {
            tiles: TileConfig::ppcg_default(depth),
            objective: 0,
            solver_calls: 0,
            solve_time: Duration::ZERO,
            optimal: false,
            provenance: SolutionProvenance::DefaultFallback,
            stats: SolverStats::default(),
        }
    }
}

/// Switches that disable individual formulation components — used by the
/// ablation study to quantify what each §IV ingredient contributes.
/// All flags default to `false` (the full model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ablation {
    /// Drop the §IV-B warp-alignment constraint (`T % WAF == 0`).
    pub no_warp_alignment: bool,
    /// Drop the §IV-G register-per-SM constraint.
    pub no_register_constraint: bool,
    /// Drop the §IV-E/§IV-J L1 and shared-memory capacity constraints
    /// (the L2 bound remains).
    pub no_memory_constraints: bool,
    /// Drop the spatial-locality term `Σ H_i·T_i` of the §IV-K objective.
    pub no_spatial_term: bool,
    /// Drop the parallelism term `Π T_par` of the §IV-K objective.
    pub no_parallel_term: bool,
}

/// Builds formulations for programs on an architecture.
#[derive(Debug, Clone)]
pub struct ModelGenerator {
    arch: GpuArch,
    config: EatssConfig,
    ablation: Ablation,
    solver_config: SolverConfig,
    coarsen: bool,
}

/// A built formulation, ready to be maximized.
pub struct EatssModel {
    solver: Solver,
    tile_vars: Vec<Option<IntExpr>>,
    objective: IntExpr,
}

impl fmt::Debug for EatssModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EatssModel")
            .field("vars", &self.tile_vars.len())
            .finish_non_exhaustive()
    }
}

impl ModelGenerator {
    /// Creates a generator for an architecture and configuration.
    pub fn new(arch: &GpuArch, config: EatssConfig) -> Self {
        ModelGenerator {
            arch: arch.clone(),
            config,
            ablation: Ablation::default(),
            solver_config: SolverConfig::default(),
            coarsen: false,
        }
    }

    /// Disables formulation components for an ablation study.
    pub fn with_ablation(mut self, ablation: Ablation) -> Self {
        self.ablation = ablation;
        self
    }

    /// Sets the solver limits (node budget, deadline, cancellation) used
    /// by the built model.
    pub fn with_solver_config(mut self, solver_config: SolverConfig) -> Self {
        self.solver_config = solver_config;
        self
    }

    /// Coarsens each tile variable's domain to geometric (doubling)
    /// multiples of the warp-alignment factor instead of every multiple.
    /// The space shrinks exponentially, trading tile granularity for a
    /// search that finishes within tight budgets — the retry ladder's
    /// last resort before the `32^d` fallback.
    pub fn with_domain_coarsening(mut self, coarsen: bool) -> Self {
        self.coarsen = coarsen;
        self
    }

    /// Generates the formulation for a program.
    ///
    /// The formulation is *problem-size agnostic* when `sizes` is `None`
    /// (§IV-M); with sizes, tile upper bounds tighten to
    /// `min(T_P_B, N)` (§IV-B).
    ///
    /// # Errors
    ///
    /// See [`EatssError`].
    pub fn build(
        &self,
        program: &Program,
        sizes: Option<&ProblemSizes>,
    ) -> Result<EatssModel, EatssError> {
        if program.kernels.is_empty() {
            return Err(EatssError::EmptyProgram);
        }
        let depth = program.max_depth();
        let arch = &self.arch;
        let cfg = &self.config;
        let waf = cfg.warp_alignment_factor(arch);
        let elem = cfg.precision.elem_bytes() as i64;
        let fp_factor = cfg.precision.fp_factor();
        let tpb = arch.max_threads_per_block as i64;

        // Time-like dimensions (any kernel declares them serial) are not
        // tiled: PPCG re-launches per step.
        let mut is_time = vec![false; depth];
        for k in &program.kernels {
            for (d, dim) in k.dims.iter().enumerate() {
                if dim.explicit_serial {
                    is_time[d] = true;
                }
            }
        }

        // Per-dimension upper bound: min(T_P_B, N_d over kernels).
        let mut upper = vec![tpb; depth];
        if let Some(sizes) = sizes {
            for k in &program.kernels {
                for (d, ub) in upper.iter_mut().enumerate().take(k.depth()) {
                    let n = k
                        .trip_count(d, sizes)
                        .map_err(EatssError::UnboundParameter)?;
                    *ub = (*ub).min(n.max(1)).max(1);
                }
            }
        }

        // §IV-B: tile variables with warp alignment.
        let mut solver = Solver::with_config(self.solver_config.clone());
        let mut tile_vars: Vec<Option<IntExpr>> = Vec::with_capacity(depth);
        let align = if self.ablation.no_warp_alignment { 1 } else { waf };
        for d in 0..depth {
            if is_time[d] {
                tile_vars.push(None);
                continue;
            }
            let t = if self.coarsen {
                // Geometric multiples of the alignment factor only: the
                // candidate count per variable drops from `upper/align`
                // to `log2(upper/align)`, keeping hopeless budgets from
                // thrashing. An empty candidate set (align > upper) stays
                // an honest unsatisfiability, as with the full domain.
                let values: Vec<i64> =
                    std::iter::successors(Some(align), |&v| v.checked_mul(2))
                        .take_while(|&v| v <= upper[d])
                        .collect();
                solver.int_var_in(&format!("T{d}"), Domain::from_values(values))
            } else {
                solver.int_var(&format!("T{d}"), 1, upper[d])
            };
            if !self.ablation.no_warp_alignment {
                solver.assert(t.modulo(waf).eq_expr(0));
            }
            tile_vars.push(Some(t));
        }
        let tile_of = |d: usize| -> IntExpr {
            tile_vars[d]
                .clone()
                .unwrap_or_else(|| IntExpr::constant(1))
        };

        // Capacities in elements (§IV-J: limits scaled by datatype width).
        let l1sh_elems = arch.l1_shared_bytes as i64 / elem;
        let l2_elems = arch.l2_bytes as i64 / elem;
        let l2_per_sm_elems = l2_elems / arch.sm_count as i64;
        let split = cfg.split_factor.clamp(0.0, 1.0);
        let cap_sh = (((l1sh_elems as f64) * split) as i64)
            .min(arch.max_shared_per_block as i64 / elem);
        let cap_l1 = ((l1sh_elems as f64) * (1.0 - split)) as i64;

        let mut objective = IntExpr::constant(0);
        for kernel in &program.kernels {
            let analysis = AccessAnalysis::analyze(kernel);
            let kd = kernel.depth();

            // §IV-F: B_size = product of (≤ 3) outer parallel tile sizes.
            let par_dims: Vec<usize> = (0..kd)
                .filter(|&d| analysis.parallel[d] && !is_time[d])
                .take(3)
                .collect();
            if par_dims.is_empty() {
                return Err(EatssError::Unsatisfiable {
                    reason: format!("kernel `{}` has no parallel dimension", kernel.name),
                });
            }
            let b_size = IntExpr::product(par_dims.iter().map(|&d| tile_of(d)));
            if cfg.cap == ThreadBlockCap::Strict {
                solver.assert(b_size.le(tpb));
            }

            // §IV-G + §IV-I: registers per SM.
            let no_refs = analysis.distinct_line_refs() as i64;
            if !self.ablation.no_register_constraint {
                let regs = b_size.clone() * IntExpr::constant(no_refs * fp_factor);
                solver.assert(regs.le(arch.regs_per_sm as i64));
            }

            // §IV-C volumes and §IV-E / §IV-J memory constraints.
            let volume = |g: &eatss_affine::analysis::RefGroup| -> IntExpr {
                IntExpr::product(
                    g.used_dims
                        .iter()
                        .copied()
                        .filter(|&d| !is_time[d])
                        .map(tile_of),
                )
            };
            let mut m_l1 = IntExpr::sum(analysis.l1_set().map(volume));
            let mut m_sh = IntExpr::sum(analysis.sh_set().map(volume));
            if cap_sh <= 0 {
                // No shared memory under this split: the SH_set falls back
                // to the hardware caches and counts against L1 instead.
                m_l1 = m_l1 + m_sh;
                m_sh = IntExpr::constant(0);
            } else if analysis.sh_set().next().is_some() && !self.ablation.no_memory_constraints {
                solver.assert(m_sh.clone().le(cap_sh));
            }
            if self.ablation.no_memory_constraints {
                // Ablated: only the L2 bound below survives.
            } else if split >= 1.0 {
                // §IV-H: all combined memory is shared; the L1 constraint
                // is replaced by the per-SM L2 share.
                solver.assert(m_l1.clone().le(l2_per_sm_elems));
            } else {
                solver.assert(m_l1.clone().le(cap_l1));
            }
            // L2 holds every reference's data tile.
            solver.assert((m_l1 + m_sh).le(l2_elems));

            // §IV-K objective: parallelism term + weighted spatial term.
            let h = analysis.h_weights(waf);
            let spatial = if self.ablation.no_spatial_term {
                IntExpr::constant(0)
            } else {
                IntExpr::sum(
                    h.iter()
                        .enumerate()
                        .filter(|&(d, &w)| w != 0 && !is_time[d])
                        .map(|(d, &w)| IntExpr::constant(w) * tile_of(d)),
                )
            };
            let parallelism = if self.ablation.no_parallel_term {
                IntExpr::constant(0)
            } else {
                b_size
            };
            objective = objective + parallelism + spatial;
        }

        Ok(EatssModel {
            solver,
            tile_vars,
            objective,
        })
    }
}

impl EatssModel {
    /// The formulation rendered as SMT-LIB 2 (for inspection or checking
    /// against an external solver).
    pub fn to_smtlib(&self) -> String {
        eatss_smt::to_smtlib(&self.solver, Some(&self.objective))
    }

    /// Decomposes the model into its solver and objective — for tools
    /// that drive the solver directly (e.g. the engine-comparison bench
    /// runs both the fast and the reference engine on the same
    /// formulation).
    pub fn into_parts(self) -> (Solver, IntExpr) {
        (self.solver, self.objective)
    }

    /// Like [`EatssModel::solve`], but maximizes by binary search over
    /// the objective's interval hull instead of the paper's linear
    /// `OBJ > best` climb — `O(log range)` solver calls (an extension;
    /// compared against the faithful loop by the ablation bench).
    ///
    /// # Errors
    ///
    /// Same conditions as [`EatssModel::solve`].
    pub fn solve_binary(self) -> Result<EatssSolution, EatssError> {
        let mut span = eatss_trace::span("eatss", "solve");
        let result = self.solve_binary_impl();
        finish_solve_span(&mut span, &result);
        result
    }

    fn solve_binary_impl(mut self) -> Result<EatssSolution, EatssError> {
        let started = Instant::now();
        let hi = self.solver.hull_bounds(&self.objective).hi();
        let outcome = self.solver.maximize_binary(&self.objective, hi)?;
        let solve_time = started.elapsed();
        let Some(model) = outcome.model else {
            return Err(no_model_error(
                outcome.complete,
                outcome.stop,
                "no tile assignment satisfies the resource constraints",
            ));
        };
        // A model without an objective value would mean the maximize loop
        // lost track of what it measured — surface it, never mask it as 0.
        let objective = outcome.best.ok_or(EatssError::MissingObjective)?;
        let mut sizes = Vec::with_capacity(self.tile_vars.len());
        for v in &self.tile_vars {
            match v {
                Some(var) => sizes.push(model.eval(var)?),
                None => sizes.push(1),
            }
        }
        Ok(EatssSolution {
            tiles: TileConfig::new(sizes),
            objective,
            solver_calls: outcome.solver_calls,
            solve_time,
            optimal: outcome.optimal,
            provenance: if outcome.optimal {
                SolutionProvenance::Solved
            } else {
                SolutionProvenance::SolvedIncomplete
            },
            stats: self.solver.stats().clone(),
        })
    }

    /// Maximizes the objective with the §IV-L loop and extracts tiles.
    ///
    /// # Errors
    ///
    /// Returns [`EatssError::Unsatisfiable`] when no feasible tile
    /// assignment exists.
    pub fn solve(self) -> Result<EatssSolution, EatssError> {
        let mut span = eatss_trace::span("eatss", "solve");
        let result = self.solve_impl(None);
        finish_solve_span(&mut span, &result);
        result
    }

    /// Like [`EatssModel::solve`], but seeds the branch-and-bound
    /// incumbent from `warm` (prior feasible models of *related*
    /// formulations) and records this solve's model back into it.
    ///
    /// The returned solution is bit-identical to [`EatssModel::solve`] on
    /// the same formulation when the search runs to completion: a warm
    /// floor is always strictly below a feasible objective value, so it
    /// can only prune provably-suboptimal subtrees (see `eatss-smt`'s
    /// [`WarmStart`] docs for the full argument). Only `solver_calls` and
    /// the solver's internal work counters may differ.
    ///
    /// # Errors
    ///
    /// Returns [`EatssError::Unsatisfiable`] when no feasible tile
    /// assignment exists.
    pub fn solve_warm(self, warm: &mut WarmStart) -> Result<EatssSolution, EatssError> {
        let mut span = eatss_trace::span("eatss", "solve");
        if span.is_active() {
            span.arg("warm_hints", warm.len() as u64);
        }
        let result = self.solve_impl(Some(warm));
        finish_solve_span(&mut span, &result);
        result
    }

    fn solve_impl(mut self, warm: Option<&mut WarmStart>) -> Result<EatssSolution, EatssError> {
        let started = Instant::now();
        let outcome = match warm {
            Some(warm) => {
                let outcome = self.solver.maximize_warm(&self.objective, warm)?;
                if let Some(model) = &outcome.model {
                    warm.observe(model);
                }
                outcome
            }
            None => self.solver.maximize(&self.objective)?,
        };
        let solve_time = started.elapsed();
        let Some(model) = outcome.model else {
            return Err(no_model_error(
                outcome.complete,
                outcome.stop,
                "no tile assignment satisfies the resource constraints \
                 (try a smaller warp-alignment factor)",
            ));
        };
        // A model without an objective value would mean the maximize loop
        // lost track of what it measured — surface it, never mask it as 0.
        let objective = outcome.best.ok_or(EatssError::MissingObjective)?;
        let mut sizes = Vec::with_capacity(self.tile_vars.len());
        for v in &self.tile_vars {
            match v {
                Some(var) => sizes.push(model.eval(var)?),
                None => sizes.push(1),
            }
        }
        Ok(EatssSolution {
            tiles: TileConfig::new(sizes),
            objective,
            solver_calls: outcome.solver_calls,
            solve_time,
            optimal: outcome.optimal,
            provenance: if outcome.optimal {
                SolutionProvenance::Solved
            } else {
                SolutionProvenance::SolvedIncomplete
            },
            stats: self.solver.stats().clone(),
        })
    }
}

/// Attaches the solve outcome to an `eatss.solve` span.
fn finish_solve_span(
    span: &mut eatss_trace::Span,
    result: &Result<EatssSolution, EatssError>,
) {
    if !span.is_active() {
        return;
    }
    match result {
        Ok(solution) => {
            span.arg("tiles", solution.tiles.to_string());
            span.arg("objective", solution.objective);
            span.arg("solver_calls", solution.solver_calls);
            span.arg("optimal", solution.optimal);
            span.arg("provenance", format!("{:?}", solution.provenance));
        }
        Err(e) => span.arg("error", e.to_string()),
    }
}

/// Distinguishes a *proved* empty space from a budget that ran out before
/// any model was found.
fn no_model_error(complete: bool, stop: Option<StopReason>, unsat_reason: &str) -> EatssError {
    if complete {
        EatssError::Unsatisfiable {
            reason: unsat_reason.to_owned(),
        }
    } else {
        EatssError::Exhausted {
            reason: stop
                .map(|s| s.to_string())
                .unwrap_or_else(|| "budget".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Precision;
    use eatss_affine::parser::parse_program;

    fn matmul() -> Program {
        parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 Out[i][j] += In[i][k] * Ker[k][j];
             }",
        )
        .unwrap()
    }

    fn ga(config: EatssConfig) -> ModelGenerator {
        ModelGenerator::new(&GpuArch::ga100(), config)
    }

    #[test]
    fn paper_worked_example_matmul() {
        // §IV-A: GA100, FP64, 50% split, WAF=16 → the paper reports
        // Ti=16, Tj=384, Tk=16 with OBJ = Ti*Tj + 32*Tj.
        let model = ga(EatssConfig::default()).build(&matmul(), None).unwrap();
        let s = model.solve().unwrap();
        assert!(s.optimal);
        let t = s.tiles.sizes();
        // All warp-aligned.
        assert!(t.iter().all(|x| x % 16 == 0), "{t:?}");
        // The L1 constraint must be respected: Ti*Tj + Tk*Tj <= 12288.
        assert!(t[0] * t[1] + t[2] * t[1] <= 12_288, "{t:?}");
        // Shared memory: Ti*Tk <= 6144 (48 KiB / 8 B).
        assert!(t[0] * t[2] <= 6_144, "{t:?}");
        // Objective at least as good as the paper's solution.
        let paper_obj = 16 * 384 + 32 * 384;
        assert!(s.objective >= paper_obj, "objective {} < paper {paper_obj}", s.objective);
        // And the solution shape: Tj (the CMA dim) dominates.
        assert!(t[1] > t[0] && t[1] > t[2], "{t:?}");
        assert!(s.solver_calls >= 2);
    }

    #[test]
    fn strict_cap_bounds_block_product() {
        let cfg = EatssConfig {
            cap: ThreadBlockCap::Strict,
            ..EatssConfig::default()
        };
        let s = ga(cfg).build(&matmul(), None).unwrap().solve().unwrap();
        let t = s.tiles.sizes();
        assert!(t[0] * t[1] <= 1024, "{t:?}");
    }

    #[test]
    fn known_sizes_tighten_bounds() {
        let sizes = ProblemSizes::new([("M", 100), ("N", 100), ("P", 100)]);
        let s = ga(EatssConfig::default())
            .build(&matmul(), Some(&sizes))
            .unwrap()
            .solve()
            .unwrap();
        assert!(s.tiles.sizes().iter().all(|&t| t <= 100));
    }

    #[test]
    fn oversized_waf_is_unsatisfiable() {
        // §V-D: with loop extents below the alignment factor the space is
        // empty.
        let sizes = ProblemSizes::new([("M", 8), ("N", 8), ("P", 8)]);
        let err = ga(EatssConfig::default())
            .build(&matmul(), Some(&sizes))
            .unwrap()
            .solve()
            .unwrap_err();
        assert!(matches!(err, EatssError::Unsatisfiable { .. }));
    }

    #[test]
    fn smaller_warp_fraction_recovers_feasibility() {
        let sizes = ProblemSizes::new([("M", 8), ("N", 8), ("P", 8)]);
        let cfg = EatssConfig {
            warp_fraction: 0.125, // WAF = 4
            ..EatssConfig::default()
        };
        let s = ga(cfg)
            .build(&matmul(), Some(&sizes))
            .unwrap()
            .solve()
            .unwrap();
        assert!(s.tiles.sizes().iter().all(|&t| t % 4 == 0 && t <= 8));
    }

    #[test]
    fn fp32_allows_larger_volumes_than_fp64() {
        let f64_cfg = EatssConfig::default();
        let f32_cfg = EatssConfig {
            precision: Precision::F32,
            ..EatssConfig::default()
        };
        let s64 = ga(f64_cfg).build(&matmul(), None).unwrap().solve().unwrap();
        let s32 = ga(f32_cfg).build(&matmul(), None).unwrap().solve().unwrap();
        assert!(s32.objective >= s64.objective);
    }

    #[test]
    fn split_one_uses_l2_share_for_cached_refs() {
        let cfg = EatssConfig {
            split_factor: 1.0,
            ..EatssConfig::default()
        };
        let s = ga(cfg).build(&matmul(), None).unwrap().solve().unwrap();
        let t = s.tiles.sizes();
        // L2 per SM on GA100 = 40 MiB / 108 / 8 B ≈ 48545 elements.
        assert!(t[0] * t[1] + t[2] * t[1] <= 48_545, "{t:?}");
    }

    #[test]
    fn time_dims_are_fixed_to_one() {
        let p = parse_program(
            "kernel jac(T, N) {
               for seq (t: T) for (i: N) for (j: N)
                 B[i][j] = A[i][j-1] + A[i][j+1] + A[i][j];
             }",
        )
        .unwrap();
        let s = ga(EatssConfig::default()).build(&p, None).unwrap().solve().unwrap();
        assert_eq!(s.tiles.sizes()[0], 1);
        assert!(s.tiles.sizes()[1] % 16 == 0);
    }

    #[test]
    fn multi_kernel_program_shares_variables() {
        let p = parse_program(
            "kernel mm1(NI, NJ, NK) {
               for (i: NI) for (j: NJ) for (k: NK)
                 tmp[i][j] += A[i][k] * B[k][j];
             }
             kernel mm2(NI, NL, NJ) {
               for (i: NI) for (j: NL) for (k: NJ)
                 D[i][j] += tmp[i][k] * C[k][j];
             }",
        )
        .unwrap();
        let s = ga(EatssConfig::default()).build(&p, None).unwrap().solve().unwrap();
        assert_eq!(s.tiles.sizes().len(), 3);
        let t = s.tiles.sizes();
        // Both kernels' L1 constraints hold simultaneously.
        assert!(t[0] * t[1] + t[2] * t[1] <= 12_288);
    }

    #[test]
    fn empty_program_is_rejected() {
        let p = Program {
            name: "none".into(),
            kernels: vec![],
        };
        assert!(matches!(
            ga(EatssConfig::default()).build(&p, None),
            Err(EatssError::EmptyProgram)
        ));
    }

    #[test]
    fn ablations_relax_their_constraints() {
        use super::Ablation;
        // Small known sizes keep the unaligned search space tractable in
        // debug builds while still exercising every branch.
        let sizes = ProblemSizes::new([("M", 96), ("N", 96), ("P", 96)]);
        let solve_with = |ablation: Ablation| {
            ga(EatssConfig::default())
                .with_ablation(ablation)
                .build(&matmul(), Some(&sizes))
                .unwrap()
                .solve()
                .unwrap()
        };
        let full = solve_with(Ablation::default());
        // Without warp alignment, non-multiple tiles become available and
        // the objective can only improve.
        let no_align = solve_with(Ablation {
            no_warp_alignment: true,
            ..Ablation::default()
        });
        assert!(no_align.objective >= full.objective);
        // Without memory constraints the objective can only grow; at
        // sizes where the L1 bound binds (aligned tiles, N = 512) the
        // growth is strict.
        let no_mem = solve_with(Ablation {
            no_memory_constraints: true,
            ..Ablation::default()
        });
        assert!(no_mem.objective >= full.objective);
        let big = ProblemSizes::new([("M", 512), ("N", 512), ("P", 512)]);
        let solve_big = |ablation: Ablation| {
            ga(EatssConfig::default())
                .with_ablation(ablation)
                .build(&matmul(), Some(&big))
                .unwrap()
                .solve()
                .unwrap()
        };
        let full_big = solve_big(Ablation::default());
        let no_mem_big = solve_big(Ablation {
            no_memory_constraints: true,
            ..Ablation::default()
        });
        assert!(no_mem_big.objective > full_big.objective);
        // Dropping the parallelism term can only shrink the optimum.
        let no_par = solve_with(Ablation {
            no_parallel_term: true,
            ..Ablation::default()
        });
        assert!(no_par.objective <= full.objective);
    }

    #[test]
    fn solve_binary_matches_linear_for_matmul() {
        let linear = ga(EatssConfig::default())
            .build(&matmul(), None)
            .unwrap()
            .solve()
            .unwrap();
        let binary = ga(EatssConfig::default())
            .build(&matmul(), None)
            .unwrap()
            .solve_binary()
            .unwrap();
        assert_eq!(linear.objective, binary.objective);
        assert!(binary.optimal);
    }

    #[test]
    fn smtlib_export_mentions_variables() {
        let model = ga(EatssConfig::default()).build(&matmul(), None).unwrap();
        let s = model.to_smtlib();
        assert!(s.contains("(declare-const T0 Int)"));
        assert!(s.contains("(maximize"));
        assert!(s.contains("mod T0 16"));
    }

    #[test]
    fn solver_overhead_is_subsecond_per_call() {
        // §V-G reports ~0.29 s per Z3 call; our stand-in should stay in
        // the same ballpark for the matmul formulation.
        let model = ga(EatssConfig::default()).build(&matmul(), None).unwrap();
        let s = model.solve().unwrap();
        assert!(
            s.solve_time.as_secs_f64() < 30.0,
            "solve took {:?}",
            s.solve_time
        );
    }

    #[test]
    fn full_solve_reports_solved_provenance() {
        let s = ga(EatssConfig::default())
            .build(&matmul(), None)
            .unwrap()
            .solve()
            .unwrap();
        assert!(s.optimal);
        assert_eq!(s.provenance, SolutionProvenance::Solved);
    }

    #[test]
    fn exhausted_budget_is_not_unsatisfiable() {
        // A zero node budget can never *prove* anything: the error must
        // say "ran out", not "no solution exists".
        let err = ga(EatssConfig::default())
            .with_solver_config(SolverConfig {
                node_limit: 0,
                ..SolverConfig::default()
            })
            .build(&matmul(), None)
            .unwrap()
            .solve()
            .unwrap_err();
        assert!(matches!(err, EatssError::Exhausted { .. }), "{err}");
        assert!(err.to_string().contains("node limit"), "{err}");
    }

    #[test]
    fn coarsened_domains_stay_feasible_and_geometric() {
        let s = ga(EatssConfig::default())
            .with_domain_coarsening(true)
            .build(&matmul(), None)
            .unwrap()
            .solve()
            .unwrap();
        let t = s.tiles.sizes();
        // Coarse domains hold WAF·2^k values only, and every constraint of
        // the full formulation still applies.
        for &x in t {
            assert!(x % 16 == 0, "{t:?}");
            assert!((x / 16).count_ones() == 1, "not geometric: {t:?}");
        }
        assert!(t[0] * t[1] + t[2] * t[1] <= 12_288, "{t:?}");
        assert!(t[0] * t[2] <= 6_144, "{t:?}");
        assert!(s.objective > 0);
    }

    #[test]
    fn ppcg_default_solution_shape() {
        let s = EatssSolution::ppcg_default(3);
        assert_eq!(s.tiles.sizes(), &[32, 32, 32]);
        assert_eq!(s.objective, 0);
        assert!(!s.optimal);
        assert_eq!(s.provenance, SolutionProvenance::DefaultFallback);
        assert_eq!(s.provenance.to_string(), "fallback");
    }
}
