//! A memoizing tile-selection cache for JIT-style integration.
//!
//! §IV-M(iii) of the paper notes that the model generator "can be
//! integrated into toolchains that perform JIT compilation, which is
//! commonplace in deep learning frameworks". Such toolchains see the same
//! kernels repeatedly (often with the same shapes); [`TileCache`] keys
//! solved selections by a structural fingerprint of
//! (program, sizes, architecture, configuration) so repeated requests are
//! served without touching the solver.

use crate::config::EatssConfig;
use crate::model::{EatssError, EatssSolution, ModelGenerator};
use eatss_affine::ir::{ArrayRef, Extent, RhsExpr};
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileCacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that ran the solver.
    pub misses: u64,
    /// Requests whose formulation was unsatisfiable (also cached).
    pub infeasible: u64,
}

/// A memoizing front end over the EATSS pipeline for JIT-style use.
///
/// # Examples
///
/// ```
/// use eatss::{EatssConfig, TileCache};
/// use eatss_affine::{parser::parse_program, ProblemSizes};
/// use eatss_gpusim::GpuArch;
///
/// let mut cache = TileCache::new(GpuArch::ga100());
/// let program = parse_program(
///     "kernel mm(M, N, P) {
///        for (i: M) for (j: N) for (k: P)
///          C[i][j] += A[i][k] * B[k][j];
///      }",
/// ).expect("valid source");
/// let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
/// let first = cache.select(&program, &sizes, &EatssConfig::default())?.clone();
/// let second = cache.select(&program, &sizes, &EatssConfig::default())?.clone();
/// assert_eq!(first.tiles, second.tiles);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// # Ok::<(), eatss::EatssError>(())
/// ```
#[derive(Debug)]
pub struct TileCache {
    arch: GpuArch,
    entries: HashMap<u64, Result<EatssSolution, EatssError>>,
    stats: TileCacheStats,
}

impl TileCache {
    /// Creates an empty cache for one target architecture.
    pub fn new(arch: GpuArch) -> Self {
        TileCache {
            arch,
            entries: HashMap::new(),
            stats: TileCacheStats::default(),
        }
    }

    /// Number of memoized formulations (feasible or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> TileCacheStats {
        self.stats
    }

    /// Drops all memoized selections.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = TileCacheStats::default();
    }

    /// Selects tiles, serving repeats from the cache. Infeasibility is
    /// memoized too, so a JIT does not retry hopeless configurations.
    ///
    /// # Errors
    ///
    /// Returns the same (possibly cached) [`EatssError`] the solver
    /// produced.
    pub fn select(
        &mut self,
        program: &Program,
        sizes: &ProblemSizes,
        config: &EatssConfig,
    ) -> Result<&EatssSolution, EatssError> {
        let key = fingerprint(&self.arch, program, sizes, config);
        if let std::collections::hash_map::Entry::Vacant(entry) = self.entries.entry(key) {
            self.stats.misses += 1;
            let result = ModelGenerator::new(&self.arch, config.clone())
                .build(program, Some(sizes))
                .and_then(|model| model.solve());
            if result.is_err() {
                self.stats.infeasible += 1;
            }
            entry.insert(result);
        } else {
            self.stats.hits += 1;
        }
        match self.entries.get(&key).expect("just inserted") {
            Ok(solution) => Ok(solution),
            Err(e) => Err(e.clone()),
        }
    }
}

/// Structural fingerprint of a selection request: kernel shapes, access
/// functions, bound sizes, architecture identity and configuration knobs.
/// Kernel *names* are deliberately excluded — JITs generate fresh names
/// for structurally identical kernels.
pub fn fingerprint(
    arch: &GpuArch,
    program: &Program,
    sizes: &ProblemSizes,
    config: &EatssConfig,
) -> u64 {
    let mut h = DefaultHasher::new();
    arch.name.hash(&mut h);
    arch.l1_shared_bytes.hash(&mut h);
    arch.l2_bytes.hash(&mut h);
    arch.regs_per_sm.hash(&mut h);
    config.split_factor.to_bits().hash(&mut h);
    config.warp_fraction.to_bits().hash(&mut h);
    config.precision.elem_bytes().hash(&mut h);
    (config.cap == crate::config::ThreadBlockCap::Strict).hash(&mut h);
    for kernel in &program.kernels {
        kernel.depth().hash(&mut h);
        for dim in &kernel.dims {
            dim.explicit_serial.hash(&mut h);
            match &dim.extent {
                Extent::Const(c) => {
                    0u8.hash(&mut h);
                    c.hash(&mut h);
                }
                Extent::Param(p) => {
                    1u8.hash(&mut h);
                    sizes.get(p).hash(&mut h);
                }
            }
        }
        for stmt in &kernel.stmts {
            hash_ref(&stmt.write, &mut h);
            stmt.is_accumulation.hash(&mut h);
            for r in &stmt.reads {
                hash_ref(r, &mut h);
            }
            hash_rhs(&stmt.rhs, &mut h);
        }
    }
    h.finish()
}

fn hash_ref(r: &ArrayRef, h: &mut DefaultHasher) {
    // The array identity matters for grouping, but names are JIT-fresh;
    // hash the subscript structure and a per-statement array index proxy
    // (length is part of the structure).
    r.subscripts.len().hash(h);
    r.array.len().hash(h);
    for s in &r.subscripts {
        s.terms().hash(h);
        s.offset().hash(h);
    }
}

fn hash_rhs(e: &RhsExpr, h: &mut DefaultHasher) {
    match e {
        RhsExpr::Num(v) => {
            0u8.hash(h);
            v.to_bits().hash(h);
        }
        RhsExpr::Ref(i) => {
            1u8.hash(h);
            i.hash(h);
        }
        RhsExpr::Bin(op, a, b) => {
            2u8.hash(h);
            op.hash(h);
            hash_rhs(a, h);
            hash_rhs(b, h);
        }
        RhsExpr::Neg(a) => {
            3u8.hash(h);
            hash_rhs(a, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eatss_affine::parser::parse_program;

    fn mm(names: (&str, &str, &str)) -> Program {
        parse_program(&format!(
            "kernel k(M, N, P) {{
               for (i: M) for (j: N) for (k: P)
                 {}[i][j] += {}[i][k] * {}[k][j];
             }}",
            names.0, names.1, names.2
        ))
        .expect("valid source")
    }

    fn sizes(n: i64) -> ProblemSizes {
        ProblemSizes::new([("M", n), ("N", n), ("P", n)])
    }

    #[test]
    fn repeated_requests_hit() {
        let mut cache = TileCache::new(GpuArch::ga100());
        let program = mm(("C", "A", "B"));
        let cfg = EatssConfig::default();
        let a = cache.select(&program, &sizes(2000), &cfg).unwrap().clone();
        for _ in 0..5 {
            let b = cache.select(&program, &sizes(2000), &cfg).unwrap();
            assert_eq!(a.tiles, b.tiles);
        }
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn jit_fresh_names_share_an_entry() {
        let mut cache = TileCache::new(GpuArch::ga100());
        let cfg = EatssConfig::default();
        let a = cache
            .select(&mm(("Out0", "In0", "Ker0")), &sizes(2000), &cfg)
            .unwrap()
            .clone();
        let b = cache
            .select(&mm(("Out1", "In1", "Ker1")), &sizes(2000), &cfg)
            .unwrap()
            .clone();
        assert_eq!(a.tiles, b.tiles);
        assert_eq!(cache.stats().hits, 1, "same structure must hit");
    }

    #[test]
    fn different_sizes_and_configs_miss() {
        let mut cache = TileCache::new(GpuArch::ga100());
        let program = mm(("C", "A", "B"));
        let cfg = EatssConfig::default();
        let _ = cache.select(&program, &sizes(2000), &cfg).unwrap();
        let _ = cache.select(&program, &sizes(1000), &cfg).unwrap();
        let _ = cache
            .select(&program, &sizes(2000), &EatssConfig::with_split(0.0))
            .unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn infeasibility_is_memoized() {
        let mut cache = TileCache::new(GpuArch::ga100());
        let program = mm(("C", "A", "B"));
        let cfg = EatssConfig::default(); // WAF 16 > extents of 8
        assert!(cache.select(&program, &sizes(8), &cfg).is_err());
        assert!(cache.select(&program, &sizes(8), &cfg).is_err());
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.infeasible, 1);
    }

    #[test]
    fn clear_resets() {
        let mut cache = TileCache::new(GpuArch::xavier());
        let program = mm(("C", "A", "B"));
        let _ = cache.select(&program, &sizes(512), &EatssConfig::default());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), TileCacheStats::default());
    }
}
