//! A memoizing tile-selection cache for JIT-style integration.
//!
//! §IV-M(iii) of the paper notes that the model generator "can be
//! integrated into toolchains that perform JIT compilation, which is
//! commonplace in deep learning frameworks". Such toolchains see the same
//! kernels repeatedly (often with the same shapes); [`TileCache`] keys
//! solved selections by the full structural key of
//! (program, sizes, architecture, configuration) — the 64-bit
//! [`fingerprint`] only picks the bucket, and colliding keys coexist in
//! it, so a hash collision can never serve the wrong kernel's tiles.

use crate::config::EatssConfig;
use crate::model::{EatssError, EatssSolution, ModelGenerator};
use eatss_affine::ir::{ArrayRef, Extent, RhsExpr};
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileCacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that ran the solver.
    pub misses: u64,
    /// Requests whose formulation was *proven* unsatisfiable
    /// ([`EatssError::Unsatisfiable`]; also cached).
    pub infeasible: u64,
    /// Requests that failed for any other reason — budget exhaustion,
    /// solver faults, unbound parameters (also cached).
    pub errors: u64,
}

/// One bucket of colliding entries: `(full key, memoized result)` pairs.
type Bucket = Vec<(Vec<u8>, Result<EatssSolution, EatssError>)>;

/// A memoizing front end over the EATSS pipeline for JIT-style use.
///
/// # Examples
///
/// ```
/// use eatss::{EatssConfig, TileCache};
/// use eatss_affine::{parser::parse_program, ProblemSizes};
/// use eatss_gpusim::GpuArch;
///
/// let mut cache = TileCache::new(GpuArch::ga100());
/// let program = parse_program(
///     "kernel mm(M, N, P) {
///        for (i: M) for (j: N) for (k: P)
///          C[i][j] += A[i][k] * B[k][j];
///      }",
/// ).expect("valid source");
/// let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
/// let first = cache.select(&program, &sizes, &EatssConfig::default())?.clone();
/// let second = cache.select(&program, &sizes, &EatssConfig::default())?.clone();
/// assert_eq!(first.tiles, second.tiles);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// # Ok::<(), eatss::EatssError>(())
/// ```
#[derive(Debug)]
pub struct TileCache {
    arch: GpuArch,
    /// Buckets by fingerprint; each bucket holds `(full key, result)`
    /// pairs so fingerprint collisions stay distinguishable.
    entries: HashMap<u64, Bucket>,
    /// How a full key is folded into a bucket index — swappable in tests
    /// to force collisions.
    fingerprinter: fn(&[u8]) -> u64,
    stats: TileCacheStats,
}

impl TileCache {
    /// Creates an empty cache for one target architecture.
    pub fn new(arch: GpuArch) -> Self {
        TileCache {
            arch,
            entries: HashMap::new(),
            fingerprinter: hash_key,
            stats: TileCacheStats::default(),
        }
    }

    /// Like [`TileCache::new`] but with a custom bucket function — used
    /// by tests to force every key into one bucket and exercise the
    /// collision path.
    pub fn with_fingerprinter(arch: GpuArch, fingerprinter: fn(&[u8]) -> u64) -> Self {
        TileCache {
            arch,
            entries: HashMap::new(),
            fingerprinter,
            stats: TileCacheStats::default(),
        }
    }

    /// The architecture this cache solves for.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Number of memoized formulations (feasible or not).
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> TileCacheStats {
        self.stats
    }

    /// Drops all memoized selections.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = TileCacheStats::default();
    }

    /// Selects tiles, serving repeats from the cache. Failures are
    /// memoized too, so a JIT does not retry hopeless configurations.
    ///
    /// # Errors
    ///
    /// Returns the same (possibly cached) [`EatssError`] the solver
    /// produced.
    pub fn select(
        &mut self,
        program: &Program,
        sizes: &ProblemSizes,
        config: &EatssConfig,
    ) -> Result<&EatssSolution, EatssError> {
        let key = encode_key(&self.arch, program, sizes, config);
        let bucket_id = (self.fingerprinter)(&key);
        let bucket = self.entries.entry(bucket_id).or_default();
        let pos = match bucket.iter().position(|(k, _)| *k == key) {
            Some(pos) => {
                self.stats.hits += 1;
                pos
            }
            None => {
                self.stats.misses += 1;
                let result = ModelGenerator::new(&self.arch, config.clone())
                    .build(program, Some(sizes))
                    .and_then(|model| model.solve());
                match &result {
                    Err(EatssError::Unsatisfiable { .. }) => self.stats.infeasible += 1,
                    Err(_) => self.stats.errors += 1,
                    Ok(_) => {}
                }
                bucket.push((key, result));
                bucket.len() - 1
            }
        };
        match &bucket[pos].1 {
            Ok(solution) => Ok(solution),
            Err(e) => Err(e.clone()),
        }
    }

    /// Looks up a pre-encoded key (see [`encode_key`]), counting a hit
    /// when present. Absence counts nothing — the caller decides whether
    /// it becomes a miss (via [`TileCache::insert_key`]) or is abandoned.
    pub fn lookup_key(&mut self, key: &[u8]) -> Option<Result<EatssSolution, EatssError>> {
        let bucket_id = (self.fingerprinter)(key);
        let entry = self
            .entries
            .get(&bucket_id)?
            .iter()
            .find(|(k, _)| k == key)?;
        self.stats.hits += 1;
        Some(entry.1.clone())
    }

    /// Memoizes an externally computed result, counting a miss plus the
    /// infeasible/error classification — the counterpart to a
    /// [`TileCache::lookup_key`] that came back empty. An existing entry
    /// for the same key is replaced.
    pub fn insert_key(&mut self, key: Vec<u8>, result: Result<EatssSolution, EatssError>) {
        self.stats.misses += 1;
        match &result {
            Err(EatssError::Unsatisfiable { .. }) => self.stats.infeasible += 1,
            Err(_) => self.stats.errors += 1,
            Ok(_) => {}
        }
        self.put_key(key, result);
    }

    /// Memoizes a result without touching any statistics — used to
    /// warm-start the cache from a journal, where entries were counted by
    /// the process that first solved them.
    pub fn replay_key(&mut self, key: Vec<u8>, result: Result<EatssSolution, EatssError>) {
        self.put_key(key, result);
    }

    fn put_key(&mut self, key: Vec<u8>, result: Result<EatssSolution, EatssError>) {
        let bucket_id = (self.fingerprinter)(&key);
        let bucket = self.entries.entry(bucket_id).or_default();
        match bucket.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = result,
            None => bucket.push((key, result)),
        }
    }

    /// Runs the pipeline for one request without consulting or updating
    /// the cache — the solve half of [`TileCache::select`], split out for
    /// wrappers that manage lookup/insert themselves.
    ///
    /// # Errors
    ///
    /// Whatever the formulation or solver produced.
    pub fn solve_for(
        &self,
        program: &Program,
        sizes: &ProblemSizes,
        config: &EatssConfig,
    ) -> Result<EatssSolution, EatssError> {
        ModelGenerator::new(&self.arch, config.clone())
            .build(program, Some(sizes))
            .and_then(|model| model.solve())
    }

    /// Iterates every memoized `(key, result)` pair, in no particular
    /// order — the source set for journal compaction.
    pub fn encoded_entries(
        &self,
    ) -> impl Iterator<Item = (&[u8], &Result<EatssSolution, EatssError>)> {
        self.entries
            .values()
            .flat_map(|bucket| bucket.iter().map(|(k, r)| (k.as_slice(), r)))
    }
}

/// Canonical byte encoding of a selection request: kernel shapes, access
/// functions, bound sizes, architecture resources and configuration
/// knobs. Kernel and array *names* are deliberately excluded — JITs
/// generate fresh names for structurally identical kernels. Two requests
/// are interchangeable iff their encodings are equal; this is the full
/// key the cache compares on lookup.
pub fn encode_key(
    arch: &GpuArch,
    program: &Program,
    sizes: &ProblemSizes,
    config: &EatssConfig,
) -> Vec<u8> {
    let mut k = Vec::with_capacity(256);
    put(&mut k, arch.name.len() as u64);
    k.extend_from_slice(arch.name.as_bytes());
    put(&mut k, arch.l1_shared_bytes);
    put(&mut k, arch.l2_bytes);
    put(&mut k, arch.regs_per_sm as u64);
    put(&mut k, arch.sm_count as u64);
    put(&mut k, arch.max_threads_per_block as u64);
    put(&mut k, arch.max_shared_per_block);
    put(&mut k, config.split_factor.to_bits());
    put(&mut k, config.warp_fraction.to_bits());
    put(&mut k, config.precision.elem_bytes() as u64);
    put(
        &mut k,
        (config.cap == crate::config::ThreadBlockCap::Strict) as u64,
    );
    put(&mut k, program.kernels.len() as u64);
    for kernel in &program.kernels {
        put(&mut k, kernel.depth() as u64);
        for dim in &kernel.dims {
            put(&mut k, dim.explicit_serial as u64);
            match &dim.extent {
                Extent::Const(c) => {
                    put(&mut k, 0);
                    put(&mut k, *c as u64);
                }
                Extent::Param(p) => {
                    put(&mut k, 1);
                    put(&mut k, sizes.get(p).map_or(u64::MAX, |v| v as u64));
                }
            }
        }
        put(&mut k, kernel.stmts.len() as u64);
        for stmt in &kernel.stmts {
            encode_ref(&stmt.write, &mut k);
            put(&mut k, stmt.is_accumulation as u64);
            put(&mut k, stmt.reads.len() as u64);
            for r in &stmt.reads {
                encode_ref(r, &mut k);
            }
            encode_rhs(&stmt.rhs, &mut k);
        }
    }
    k
}

fn put(k: &mut Vec<u8>, v: u64) {
    k.extend_from_slice(&v.to_le_bytes());
}

/// Folds a canonical key into its 64-bit bucket fingerprint.
fn hash_key(key: &[u8]) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Folds an already-encoded key (from [`encode_key`]) into the same
/// 64-bit fingerprint [`fingerprint`] computes — used to pick journal
/// shards without re-encoding the request.
pub fn fingerprint_key(key: &[u8]) -> u64 {
    hash_key(key)
}

/// Structural fingerprint of a selection request — the bucket hash of
/// [`encode_key`]. Collisions are possible (it is 64 bits); the cache
/// itself always compares the full encoding.
pub fn fingerprint(
    arch: &GpuArch,
    program: &Program,
    sizes: &ProblemSizes,
    config: &EatssConfig,
) -> u64 {
    hash_key(&encode_key(arch, program, sizes, config))
}

fn encode_ref(r: &ArrayRef, k: &mut Vec<u8>) {
    // The array identity matters for grouping, but names are JIT-fresh;
    // encode the subscript structure and the name length as a proxy.
    put(k, r.subscripts.len() as u64);
    put(k, r.array.len() as u64);
    for s in &r.subscripts {
        put(k, s.terms().len() as u64);
        for &(d, c) in s.terms() {
            put(k, d as u64);
            put(k, c as u64);
        }
        put(k, s.offset() as u64);
    }
}

fn encode_rhs(e: &RhsExpr, k: &mut Vec<u8>) {
    match e {
        RhsExpr::Num(v) => {
            k.push(0);
            k.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        RhsExpr::Ref(i) => {
            k.push(1);
            k.extend_from_slice(&(*i as u64).to_le_bytes());
        }
        RhsExpr::Bin(op, a, b) => {
            k.push(2);
            let mut buf = [0u8; 4];
            k.extend_from_slice(op.encode_utf8(&mut buf).as_bytes());
            encode_rhs(a, k);
            encode_rhs(b, k);
        }
        RhsExpr::Neg(a) => {
            k.push(3);
            encode_rhs(a, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eatss_affine::parser::parse_program;

    fn mm(names: (&str, &str, &str)) -> Program {
        parse_program(&format!(
            "kernel k(M, N, P) {{
               for (i: M) for (j: N) for (k: P)
                 {}[i][j] += {}[i][k] * {}[k][j];
             }}",
            names.0, names.1, names.2
        ))
        .expect("valid source")
    }

    fn sizes(n: i64) -> ProblemSizes {
        ProblemSizes::new([("M", n), ("N", n), ("P", n)])
    }

    #[test]
    fn repeated_requests_hit() {
        let mut cache = TileCache::new(GpuArch::ga100());
        let program = mm(("C", "A", "B"));
        let cfg = EatssConfig::default();
        let a = cache.select(&program, &sizes(2000), &cfg).unwrap().clone();
        for _ in 0..5 {
            let b = cache.select(&program, &sizes(2000), &cfg).unwrap();
            assert_eq!(a.tiles, b.tiles);
        }
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn jit_fresh_names_share_an_entry() {
        let mut cache = TileCache::new(GpuArch::ga100());
        let cfg = EatssConfig::default();
        let a = cache
            .select(&mm(("Out0", "In0", "Ker0")), &sizes(2000), &cfg)
            .unwrap()
            .clone();
        let b = cache
            .select(&mm(("Out1", "In1", "Ker1")), &sizes(2000), &cfg)
            .unwrap()
            .clone();
        assert_eq!(a.tiles, b.tiles);
        assert_eq!(cache.stats().hits, 1, "same structure must hit");
    }

    #[test]
    fn different_sizes_and_configs_miss() {
        let mut cache = TileCache::new(GpuArch::ga100());
        let program = mm(("C", "A", "B"));
        let cfg = EatssConfig::default();
        let _ = cache.select(&program, &sizes(2000), &cfg).unwrap();
        let _ = cache.select(&program, &sizes(1000), &cfg).unwrap();
        let _ = cache
            .select(&program, &sizes(2000), &EatssConfig::with_split(0.0))
            .unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn infeasibility_is_memoized() {
        let mut cache = TileCache::new(GpuArch::ga100());
        let program = mm(("C", "A", "B"));
        let cfg = EatssConfig::default(); // WAF 16 > extents of 8
        assert!(cache.select(&program, &sizes(8), &cfg).is_err());
        assert!(cache.select(&program, &sizes(8), &cfg).is_err());
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.infeasible, 1);
        assert_eq!(stats.errors, 0, "unsatisfiable is not a pipeline error");
    }

    #[test]
    fn pipeline_errors_are_counted_separately() {
        let mut cache = TileCache::new(GpuArch::ga100());
        let empty = Program {
            name: "empty".into(),
            kernels: vec![],
        };
        let e = cache
            .select(&empty, &sizes(100), &EatssConfig::default())
            .unwrap_err();
        assert!(matches!(e, EatssError::EmptyProgram));
        let stats = cache.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.infeasible, 0, "EmptyProgram is not infeasibility");
    }

    #[test]
    fn clear_resets() {
        let mut cache = TileCache::new(GpuArch::xavier());
        let program = mm(("C", "A", "B"));
        let _ = cache.select(&program, &sizes(512), &EatssConfig::default());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), TileCacheStats::default());
    }

    #[test]
    fn colliding_fingerprints_keep_distinct_entries() {
        // Every request lands in bucket 0; structurally different
        // programs must still be solved and served independently.
        let mut cache = TileCache::with_fingerprinter(GpuArch::ga100(), |_| 0);
        let matmul = mm(("C", "A", "B"));
        let stencil = parse_program(
            "kernel st(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][j-1] + A[i][j+1];
             }",
        )
        .unwrap();
        let a = cache
            .select(&matmul, &sizes(2000), &EatssConfig::default())
            .unwrap()
            .clone();
        let b = cache
            .select(&stencil, &sizes(2000), &EatssConfig::default())
            .unwrap()
            .clone();
        assert_eq!(cache.stats().misses, 2, "collision must not alias");
        assert_eq!(cache.len(), 2);
        // Both entries stay retrievable with their own tiles.
        let a2 = cache
            .select(&matmul, &sizes(2000), &EatssConfig::default())
            .unwrap()
            .clone();
        let b2 = cache
            .select(&stencil, &sizes(2000), &EatssConfig::default())
            .unwrap()
            .clone();
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(a.tiles, a2.tiles);
        assert_eq!(b.tiles, b2.tiles);
    }

    #[test]
    fn distinct_architectures_do_not_alias() {
        // ga100 and a hypothetical variant differing only in fields the
        // old fingerprint ignored (sm_count, threads/block cap) must
        // produce different fingerprints.
        let program = mm(("C", "A", "B"));
        let cfg = EatssConfig::default();
        let base = GpuArch::ga100();
        let mut fewer_sms = base.clone();
        fewer_sms.sm_count = 1;
        let mut smaller_blocks = base.clone();
        smaller_blocks.max_threads_per_block = 128;
        let f0 = fingerprint(&base, &program, &sizes(2000), &cfg);
        assert_ne!(f0, fingerprint(&fewer_sms, &program, &sizes(2000), &cfg));
        assert_ne!(
            f0,
            fingerprint(&smaller_blocks, &program, &sizes(2000), &cfg)
        );
    }
}
