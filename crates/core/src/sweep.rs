//! The EATSS configuration sweep: one solved + measured point per
//! (split factor × warp fraction) combination.
//!
//! §V-B generates three tile configurations per benchmark (three
//! shared-memory levels) and reports the best; §V-D widens the sweep with
//! warp fractions {0.125, 0.25, 0.5, 1.0} for high-dimensional kernels.
//! Infeasible combinations (empty solution spaces) are recorded, matching
//! the paper's "missing configurations".
//!
//! # Robustness
//!
//! A sweep is a measurement campaign, and campaigns must not die on one
//! bad point. Each configuration is solved through a retry ladder
//! ([`SweepOptions::attempts`]): a cheap budget first, an escalated
//! budget on exhaustion, then a coarsened (geometric) tile domain. When
//! every rung fails — or the formulation is *proved* infeasible — the
//! point degrades to PPCG's default `32^d` tiling so it still yields a
//! measurement, tagged [`SolutionProvenance::DefaultFallback`]. Points
//! whose measurement itself fails land in [`SweepOutcome::failures`] with
//! full stage attribution. The sweep as a whole errors only when *no*
//! configuration produced a measurable point.

use crate::config::{EatssConfig, ThreadBlockCap};
use crate::error::PipelineError;
use crate::model::{EatssError, EatssSolution};
use crate::Eatss;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::SimReport;
use eatss_smt::{SolverConfig, WarmStart};
use std::time::Duration;

/// The shared-memory split levels of §V-B (0%, 50%, 67%).
pub const PAPER_SPLITS: [f64; 3] = [0.0, 0.5, 0.67];

/// The warp fractions of §V-D.
pub const PAPER_WARP_FRACTIONS: [f64; 4] = [0.125, 0.25, 0.5, 1.0];
// Each (split, fraction) point is additionally solved under both
// interpretations of the §IV-F thread-block bound (see
// [`ThreadBlockCap`]), and the measured best wins — mirroring how the
// paper generates a handful of candidate configurations per benchmark
// and keeps the best measured one.

/// One rung of the per-point retry ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveAttempt {
    /// Node budget for this attempt.
    pub node_limit: u64,
    /// Wall-clock budget for this attempt (the whole maximize loop).
    pub deadline: Option<Duration>,
    /// Whether to coarsen tile domains to geometric multiples.
    pub coarsen: bool,
}

/// Degradation policy for a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// The retry ladder, tried in order; later rungs run only when the
    /// earlier ones exhaust their budget ([`EatssError::Exhausted`]).
    /// A *proved* infeasibility stops the ladder immediately — a larger
    /// budget cannot revive an empty space, and coarsening only shrinks
    /// it.
    pub attempts: Vec<SolveAttempt>,
    /// Degrade unsolvable points to PPCG's default `32^d` tiling instead
    /// of dropping them.
    pub fallback_to_default: bool,
    /// Worker threads for the sweep. `1` (the default) runs points
    /// sequentially on the caller's thread; `0` uses the machine's
    /// available parallelism. Results are identical regardless of the
    /// value: every point is solved and measured independently, and the
    /// outcome is merged in the canonical configuration order (splits ×
    /// fractions × caps), including which systemic error — if any — is
    /// reported.
    pub jobs: usize,
    /// Warm-start the per-point maximizations. Configurations that share
    /// a (warp fraction, cap) pair differ only in the shared-memory split
    /// — larger splits leave less capacity, so the tightest split's
    /// optimum is feasible under every looser sibling. Each such group is
    /// solved as a chain from tightest to loosest split, feeding every
    /// solved model into a group-local [`WarmStart`] that seeds the next
    /// point's branch-and-bound incumbent instead of climbing from
    /// scratch.
    ///
    /// Results are identical to cold solves: a warm floor sits strictly
    /// below a feasible objective value, so only provably-suboptimal
    /// subtrees are pruned. Each chain's hint sequence is fixed by the
    /// canonical configuration list — groups never share state — so
    /// parallel and sequential sweeps stay bit-identical even when
    /// search budgets bind.
    pub warm_start: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            attempts: vec![
                // Normal budget: ample for every PolyBench-scale
                // formulation, bounded so a pathological point cannot
                // stall the campaign.
                SolveAttempt {
                    node_limit: 2_000_000,
                    deadline: Some(Duration::from_secs(10)),
                    coarsen: false,
                },
                // Escalated: an order of magnitude more of everything.
                SolveAttempt {
                    node_limit: 20_000_000,
                    deadline: Some(Duration::from_secs(60)),
                    coarsen: true,
                },
            ],
            fallback_to_default: true,
            jobs: 1,
            warm_start: true,
        }
    }
}

/// How a point's maximization relates to the sweep's warm-start state.
enum WarmMode<'a> {
    /// Solve cold (warm starting disabled).
    Cold,
    /// Solve with the chain's accumulated hints and record the resulting
    /// model back into them for the next point in the chain.
    Seed(&'a mut WarmStart),
}

/// One solved and measured configuration.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The configuration knobs.
    pub config: EatssConfig,
    /// The tile selection the solver produced (see
    /// [`EatssSolution::provenance`] for how much to trust it).
    pub solution: EatssSolution,
    /// The simulated measurement of those tiles.
    pub report: SimReport,
}

/// All sweep results for one program.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Measured points — solved, anytime, or `32^d` fallbacks (check
    /// each point's provenance).
    pub points: Vec<SweepPoint>,
    /// Configurations whose formulation was proved unsatisfiable or
    /// stayed exhausted through the whole retry ladder (with reason).
    /// With fallback enabled these configurations *also* appear in
    /// [`SweepOutcome::points`] under default tiling.
    pub infeasible: Vec<(EatssConfig, String)>,
    /// Configurations that produced no measurement at all — even the
    /// fallback failed — with stage-attributed errors.
    pub failures: Vec<(EatssConfig, PipelineError)>,
}

impl SweepOutcome {
    /// The point with the highest performance-per-watt (the paper's
    /// selection criterion). Invalid reports and non-finite PPW values
    /// (e.g. a NaN from a corrupted measurement) are never selected.
    pub fn best_by_ppw(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.report.valid && p.report.ppw.is_finite())
            .max_by(|a, b| a.report.ppw.total_cmp(&b.report.ppw))
    }

    /// The point with the highest raw throughput.
    pub fn best_by_perf(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.report.valid && p.report.gflops.is_finite())
            .max_by(|a, b| a.report.gflops.total_cmp(&b.report.gflops))
    }

    /// The point with the lowest energy.
    pub fn best_by_energy(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.report.valid && p.report.energy_j.is_finite())
            .min_by(|a, b| a.report.energy_j.total_cmp(&b.report.energy_j))
    }

    /// The energy-vs-performance Pareto front: every measured point no
    /// other point *dominates*. Point `a` dominates `b` when it uses no
    /// more energy AND delivers no less throughput, strictly better in at
    /// least one of the two. Invalid reports and non-finite
    /// energy/throughput values never enter the front.
    ///
    /// The returned front is deterministic: sorted by ascending energy
    /// with ties broken by descending throughput, and when two points
    /// measure bit-identically on both axes only the first (in
    /// [`SweepOutcome::points`] order, i.e. canonical configuration
    /// order) is kept. Every caller — the fleet benchmarks, the serve
    /// daemon, the journal — therefore sees the same front for the same
    /// sweep.
    pub fn pareto_front(&self) -> Vec<&SweepPoint> {
        pareto_front(&self.points)
    }
}

/// Non-dominated subset of `points` under (energy minimized, throughput
/// maximized). See [`SweepOutcome::pareto_front`] for the exact
/// dominance and ordering contract.
pub fn pareto_front(points: &[SweepPoint]) -> Vec<&SweepPoint> {
    let mut eligible: Vec<&SweepPoint> = points
        .iter()
        .filter(|p| {
            p.report.valid && p.report.energy_j.is_finite() && p.report.gflops.is_finite()
        })
        .collect();
    // Ascending energy, descending throughput; stable, so bit-equal
    // measurements keep their canonical-order position and the
    // first-occurrence rule below is well defined.
    eligible.sort_by(|a, b| {
        a.report
            .energy_j
            .total_cmp(&b.report.energy_j)
            .then(b.report.gflops.total_cmp(&a.report.gflops))
    });
    // One sorted pass: a point survives iff it strictly improves on the
    // best throughput seen so far. Anything tying or below is dominated
    // by (or a duplicate of) an earlier point with no more energy.
    let mut front = Vec::new();
    let mut best_gflops = f64::NEG_INFINITY;
    for p in eligible {
        if p.report.gflops > best_gflops {
            best_gflops = p.report.gflops;
            front.push(p);
        }
    }
    front
}

/// Runs the sweep with the default degradation policy.
///
/// # Errors
///
/// Returns [`PipelineError::NoMeasurablePoint`] only when not a single
/// configuration — including the `32^d` fallbacks — could be measured.
pub fn run(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    splits: &[f64],
    warp_fractions: &[f64],
) -> Result<SweepOutcome, PipelineError> {
    run_with(
        eatss,
        program,
        sizes,
        splits,
        warp_fractions,
        &SweepOptions::default(),
    )
}

/// Solves one configuration through the retry ladder. Retries only on
/// [`EatssError::Exhausted`]; every other error is definitive.
fn solve_with_retries(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    config: &EatssConfig,
    options: &SweepOptions,
    warm: &mut WarmMode<'_>,
) -> Result<EatssSolution, EatssError> {
    let mut last = EatssError::Exhausted {
        reason: "retry ladder is empty".to_owned(),
    };
    for (rung, attempt) in options.attempts.iter().enumerate() {
        let mut span = eatss_trace::span("sweep", "solve_attempt");
        if span.is_active() {
            span.arg("rung", rung);
            span.arg("node_limit", attempt.node_limit);
            span.arg("coarsen", attempt.coarsen);
            eatss_trace::counter_add("sweep.solve_attempts", 1);
        }
        let result = crate::ModelGenerator::new(eatss.arch(), config.clone())
            .with_solver_config(SolverConfig {
                node_limit: attempt.node_limit,
                deadline: attempt.deadline,
                ..SolverConfig::default()
            })
            .with_domain_coarsening(attempt.coarsen)
            .build(program, Some(sizes))
            .and_then(|model| match warm {
                WarmMode::Cold => model.solve(),
                WarmMode::Seed(chain) => model.solve_warm(chain),
            });
        match result {
            Ok(solution) => {
                span.arg("outcome", "solved");
                return Ok(solution);
            }
            Err(e @ EatssError::Exhausted { .. }) => {
                span.arg("outcome", "exhausted");
                last = e;
            }
            Err(definitive) => {
                span.arg("outcome", "definitive_error");
                return Err(definitive);
            }
        }
    }
    Err(last)
}

/// Everything one configuration contributes to the sweep outcome.
/// Produced independently per point so the executor (sequential or
/// parallel) can merge contributions in canonical order.
struct PointContribution {
    point: Option<SweepPoint>,
    infeasible: Option<(EatssConfig, String)>,
    failures: Vec<(EatssConfig, PipelineError)>,
}

/// Solves and measures one configuration through the retry ladder and
/// fallback policy. `Err` means a systemic failure that would repeat at
/// every point (solver bugs, unbound parameters, empty programs).
fn process_point(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    config: EatssConfig,
    options: &SweepOptions,
    index: usize,
    mut warm: WarmMode<'_>,
) -> Result<PointContribution, PipelineError> {
    // Events for point `i` go to lane `i + 1` (lane 0 is the control
    // lane), so parallel and sequential sweeps drain to the same
    // canonically ordered event stream.
    let _lane = eatss_trace::lane_scope(index as u64 + 1);
    let mut span = eatss_trace::span("sweep", "point");
    if span.is_active() {
        span.arg("index", index);
        span.arg("split", config.split_factor);
        span.arg("warp_fraction", config.warp_fraction);
        span.arg("cap", format!("{:?}", config.cap));
        eatss_trace::counter_add("sweep.points", 1);
    }
    let context = format!(
        "{} @ split={} wfrac={} cap={:?}",
        program.name, config.split_factor, config.warp_fraction, config.cap
    );
    let mut infeasible = None;
    let mut failures = Vec::new();
    let solved = match solve_with_retries(eatss, program, sizes, &config, options, &mut warm) {
        Ok(solution) => Some(solution),
        Err(e @ (EatssError::Unsatisfiable { .. } | EatssError::Exhausted { .. })) => {
            if eatss_trace::collecting() {
                eatss_trace::counter_add("sweep.infeasible", 1);
                eatss_trace::instant(
                    "sweep",
                    "infeasible",
                    vec![("reason", eatss_trace::ArgValue::Str(e.to_string()))],
                );
            }
            infeasible = Some((config.clone(), e.to_string()));
            None
        }
        Err(systemic) => {
            span.arg("error", systemic.to_string());
            return Err(PipelineError::from_eatss(systemic, context));
        }
    };
    // Measure the solved tiles; degrade to the default tiling when there
    // are none or their measurement fails.
    let mut measured = None;
    if let Some(solution) = solved {
        match eatss.evaluate(program, &solution.tiles, sizes, &config) {
            Ok(report) => measured = Some((solution, report)),
            Err(e) => {
                record_measure_failure(&e.to_string(), false);
                failures.push((
                    config.clone(),
                    PipelineError::from_evaluate(e, context.clone()),
                ));
            }
        }
    }
    if measured.is_none() && options.fallback_to_default {
        if eatss_trace::collecting() {
            eatss_trace::counter_add("sweep.fallbacks", 1);
            eatss_trace::instant("sweep", "fallback", Vec::new());
        }
        let fallback = EatssSolution::ppcg_default(program.max_depth());
        match eatss.evaluate(program, &fallback.tiles, sizes, &config) {
            Ok(report) => measured = Some((fallback, report)),
            Err(e) => {
                record_measure_failure(&e.to_string(), true);
                failures.push((
                    config.clone(),
                    PipelineError::from_evaluate(e, format!("{context} [fallback]")),
                ));
            }
        }
    }
    if span.is_active() {
        match &measured {
            Some((solution, report)) => {
                span.arg("provenance", format!("{:?}", solution.provenance));
                span.arg("tiles", solution.tiles.to_string());
                span.arg("valid", report.valid);
            }
            None => span.arg("provenance", "unmeasured"),
        }
    }
    Ok(PointContribution {
        point: measured.map(|(solution, report)| SweepPoint {
            config,
            solution,
            report,
        }),
        infeasible,
        failures,
    })
}

/// Records a measurement failure in the trace (no-op when disabled).
fn record_measure_failure(reason: &str, fallback: bool) {
    if eatss_trace::collecting() {
        eatss_trace::counter_add("sweep.measure_failures", 1);
        eatss_trace::instant(
            "sweep",
            "measure_failed",
            vec![
                ("reason", eatss_trace::ArgValue::Str(reason.to_string())),
                ("fallback", eatss_trace::ArgValue::Bool(fallback)),
            ],
        );
    }
}

/// Runs the sweep under an explicit degradation policy.
///
/// With [`SweepOptions::jobs`] > 1 the configurations are distributed
/// over a scoped worker pool; results are merged back in the canonical
/// configuration order, so the outcome — points, bookkeeping, and even
/// which systemic error aborts the sweep — is identical to a sequential
/// run.
///
/// # Errors
///
/// [`PipelineError::NoMeasurablePoint`] when no configuration yields a
/// measurement; [`PipelineError`] with stage attribution on systemic
/// failures (solver errors, unbound parameters — conditions no retry or
/// fallback can repair).
pub fn run_with(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    splits: &[f64],
    warp_fractions: &[f64],
    options: &SweepOptions,
) -> Result<SweepOutcome, PipelineError> {
    // The canonical configuration order: splits × fractions × caps.
    let mut configs = Vec::with_capacity(splits.len() * warp_fractions.len() * 2);
    for &split in splits {
        for &frac in warp_fractions {
            for cap in [ThreadBlockCap::Virtual, ThreadBlockCap::Strict] {
                configs.push(EatssConfig {
                    split_factor: split,
                    warp_fraction: frac,
                    cap,
                    ..EatssConfig::default()
                });
            }
        }
    }
    let attempted = configs.len();
    let jobs = match options.jobs {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    };
    let mut span = eatss_trace::span("sweep", "run");
    if span.is_active() {
        span.arg("program", program.name.as_str());
        span.arg("configs", attempted);
        span.arg("jobs", jobs);
    }
    // The unit of scheduling is a warm-start chain: with warm starting
    // off every configuration is its own single-point chain; with it on,
    // configurations sharing a (warp fraction, cap) pair form one chain
    // ordered tightest-split-first. A chain's hint sequence depends only
    // on the canonical configuration list, never on scheduling, so the
    // parallel executor stays bit-identical to the sequential one.
    let chains = warm_chains(&configs, options.warm_start);
    let contributions: Vec<Result<PointContribution, PipelineError>> =
        if jobs <= 1 || chains.len() <= 1 {
            run_chains_sequential(eatss, program, sizes, &configs, chains, options)
        } else {
            run_parallel(eatss, program, sizes, &configs, chains, options, jobs)
        };
    // Merge in canonical order. The first systemic error (by canonical
    // index) aborts, exactly as the sequential loop would.
    let mut points = Vec::new();
    let mut infeasible = Vec::new();
    let mut failures = Vec::new();
    for contribution in contributions {
        let c = contribution?;
        points.extend(c.point);
        infeasible.extend(c.infeasible);
        failures.extend(c.failures);
    }
    if span.is_active() {
        span.arg("points", points.len());
        span.arg("infeasible", infeasible.len());
        span.arg("failures", failures.len());
    }
    if points.is_empty() {
        return Err(PipelineError::NoMeasurablePoint {
            attempted,
            context: program.name.clone(),
        });
    }
    Ok(SweepOutcome {
        points,
        infeasible,
        failures,
    })
}

/// Partitions canonical configuration indices into warm-start chains.
///
/// With warm starting off every index is its own chain (maximal
/// parallelism, no shared state). With it on, indices sharing a
/// (warp fraction, cap) pair form one chain sorted by *descending* split
/// factor: larger splits reserve more shared memory away from tiles, so
/// the tightest point solves first and its optimum is a feasible — and
/// near-optimal — hint for every looser sibling. Ties keep canonical
/// order (the sort is stable), so the partition is a pure function of
/// the configuration list.
fn warm_chains(configs: &[EatssConfig], warm_start: bool) -> Vec<Vec<usize>> {
    if !warm_start {
        return (0..configs.len()).map(|i| vec![i]).collect();
    }
    let mut keyed: Vec<((u64, ThreadBlockCap), Vec<usize>)> = Vec::new();
    for (i, c) in configs.iter().enumerate() {
        let key = (c.warp_fraction.to_bits(), c.cap);
        match keyed.iter_mut().find(|(k, _)| *k == key) {
            Some((_, chain)) => chain.push(i),
            None => keyed.push((key, vec![i])),
        }
    }
    let mut chains: Vec<Vec<usize>> = keyed.into_iter().map(|(_, chain)| chain).collect();
    for chain in &mut chains {
        chain.sort_by(|&a, &b| {
            configs[b]
                .split_factor
                .total_cmp(&configs[a].split_factor)
        });
    }
    chains
}

/// Processes one chain: points in chain order, each solved with the
/// hints accumulated from its predecessors, each writing its result into
/// the point's canonical slot.
fn run_chain(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    configs: &[EatssConfig],
    chain: &[usize],
    options: &SweepOptions,
    slots: &mut [Option<Result<PointContribution, PipelineError>>],
) {
    let mut hints = WarmStart::new();
    for &i in chain {
        let warm = if options.warm_start {
            WarmMode::Seed(&mut hints)
        } else {
            WarmMode::Cold
        };
        let result = process_point(eatss, program, sizes, configs[i].clone(), options, i, warm);
        slots[i] = Some(result);
    }
}

/// Runs every chain on the caller's thread, returning contributions in
/// canonical configuration order.
fn run_chains_sequential(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    configs: &[EatssConfig],
    chains: Vec<Vec<usize>>,
    options: &SweepOptions,
) -> Vec<Result<PointContribution, PipelineError>> {
    let mut slots: Vec<Option<Result<PointContribution, PipelineError>>> =
        (0..configs.len()).map(|_| None).collect();
    for chain in &chains {
        run_chain(eatss, program, sizes, configs, chain, options, &mut slots);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index belongs to exactly one chain"))
        .collect()
}

/// The deterministic parallel executor: a scoped worker pool pulls
/// *chains* from a shared atomic counter and writes each point's result
/// into its canonical slot. Chains are internally sequential (their hint
/// accumulation order is part of the contract); no point is skipped on
/// error — the merge step decides (deterministically) which error wins.
fn run_parallel(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    configs: &[EatssConfig],
    chains: Vec<Vec<usize>>,
    options: &SweepOptions,
    jobs: usize,
) -> Vec<Result<PointContribution, PipelineError>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<PointContribution, PipelineError>>>> =
        configs.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(chains.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                let Some(chain) = chains.get(c) else { break };
                let mut hints = WarmStart::new();
                for &i in chain {
                    let warm = if options.warm_start {
                        WarmMode::Seed(&mut hints)
                    } else {
                        WarmMode::Cold
                    };
                    let result =
                        process_point(eatss, program, sizes, configs[i].clone(), options, i, warm);
                    *slots[i].lock().expect("slot poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every index processed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SolutionProvenance;
    use eatss_affine::parser::parse_program;
    use eatss_gpusim::GpuArch;

    fn mm() -> Program {
        parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap()
    }

    #[test]
    fn paper_sweep_produces_points_and_best() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let out = eatss
            .sweep(&mm(), &sizes, &PAPER_SPLITS, &[0.5])
            .unwrap();
        // All six configurations are feasible at this size: no fallbacks,
        // no bookkeeping entries.
        assert_eq!(out.points.len(), 6);
        assert!(out.infeasible.is_empty() && out.failures.is_empty());
        assert!(out
            .points
            .iter()
            .all(|p| p.solution.provenance != SolutionProvenance::DefaultFallback));
        let best = out.best_by_ppw().unwrap();
        assert!(best.report.valid);
        assert!(best.report.ppw > 0.0);
        // best-by-ppw is at least as good as every other point.
        for p in &out.points {
            assert!(best.report.ppw >= p.report.ppw);
        }
    }

    #[test]
    fn infeasible_fractions_degrade_to_fallback_points() {
        let eatss = Eatss::new(GpuArch::ga100());
        // Tiny problem: WAF=32 has no aligned tile below the extents.
        let sizes = ProblemSizes::new([("M", 8), ("N", 8), ("P", 8)]);
        let out = eatss
            .sweep(&mm(), &sizes, &[0.5], &[1.0, 0.125])
            .unwrap();
        // The two infeasible cap variants are recorded AND measurable via
        // the 32^d fallback, so every configuration yields a point.
        assert_eq!(out.infeasible.len(), 2);
        assert_eq!(out.points.len(), 4);
        assert!(out.failures.is_empty());
        let fallbacks: Vec<_> = out
            .points
            .iter()
            .filter(|p| p.solution.provenance == SolutionProvenance::DefaultFallback)
            .collect();
        assert_eq!(fallbacks.len(), 2);
        for p in &fallbacks {
            assert!((p.config.warp_fraction - 1.0).abs() < 1e-12);
            assert_eq!(p.solution.tiles.sizes(), &[32, 32, 32]);
            assert_eq!(p.solution.objective, 0);
            assert!(p.report.valid, "fallback points are measurable");
        }
        // The genuinely solved points carry full provenance.
        assert!(out
            .points
            .iter()
            .filter(|p| (p.config.warp_fraction - 0.125).abs() < 1e-12)
            .all(|p| p.solution.provenance == SolutionProvenance::Solved));
    }

    #[test]
    fn all_infeasible_still_yields_fallback_measurements() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 3), ("N", 3), ("P", 3)]);
        let out = eatss.sweep(&mm(), &sizes, &[0.5], &[1.0]).unwrap();
        assert_eq!(out.infeasible.len(), 2);
        assert_eq!(out.points.len(), 2);
        assert!(out
            .points
            .iter()
            .all(|p| p.solution.provenance == SolutionProvenance::DefaultFallback));
        assert!(out.best_by_ppw().is_some());
    }

    #[test]
    fn disabling_fallback_restores_hard_failure() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 3), ("N", 3), ("P", 3)]);
        let opts = SweepOptions {
            fallback_to_default: false,
            ..SweepOptions::default()
        };
        let err = sweep_with(&eatss, &sizes, &opts).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::NoMeasurablePoint { attempted: 2, .. }
        ));
    }

    fn sweep_with(
        eatss: &Eatss,
        sizes: &ProblemSizes,
        opts: &SweepOptions,
    ) -> Result<SweepOutcome, PipelineError> {
        run_with(eatss, &mm(), sizes, &[0.5], &[1.0], opts)
    }

    #[test]
    fn exhausted_budget_retries_then_degrades() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        // A ladder whose every rung has a zero budget: each point stays
        // exhausted and must degrade to a measured fallback.
        let opts = SweepOptions {
            attempts: vec![SolveAttempt {
                node_limit: 0,
                deadline: None,
                coarsen: false,
            }],
            fallback_to_default: true,
            ..SweepOptions::default()
        };
        let out = sweep_with(&eatss, &sizes, &opts).unwrap();
        assert_eq!(out.points.len(), 2);
        assert!(out
            .points
            .iter()
            .all(|p| p.solution.provenance == SolutionProvenance::DefaultFallback));
        assert_eq!(out.infeasible.len(), 2);
        assert!(out.infeasible[0].1.contains("budget exhausted"));
        // With an escalated second rung the same points solve fully.
        let out = sweep_with(
            &eatss,
            &sizes,
            &SweepOptions {
                attempts: vec![
                    SolveAttempt {
                        node_limit: 0,
                        deadline: None,
                        coarsen: false,
                    },
                    SolveAttempt {
                        node_limit: 2_000_000,
                        deadline: None,
                        coarsen: false,
                    },
                ],
                fallback_to_default: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(out
            .points
            .iter()
            .all(|p| p.solution.provenance == SolutionProvenance::Solved));
        assert!(out.infeasible.is_empty());
    }

    #[test]
    fn best_selectors_agree_on_validity() {
        let eatss = Eatss::new(GpuArch::xavier());
        let sizes = ProblemSizes::new([("M", 1024), ("N", 1024), ("P", 1024)]);
        let out = eatss.sweep(&mm(), &sizes, &PAPER_SPLITS, &[0.5]).unwrap();
        assert!(out.best_by_perf().is_some());
        assert!(out.best_by_energy().is_some());
        let e = out.best_by_energy().unwrap();
        for p in &out.points {
            assert!(e.report.energy_j <= p.report.energy_j);
        }
    }

    #[test]
    fn nan_reports_are_never_selected_as_best() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let mut out = eatss.sweep(&mm(), &sizes, &[0.5], &[0.5]).unwrap();
        // Regression: a valid-looking report with NaN metrics used to
        // panic the `partial_cmp(..).expect(..)` selectors.
        let mut poisoned = out.points[0].clone();
        poisoned.report.ppw = f64::NAN;
        poisoned.report.gflops = f64::NAN;
        poisoned.report.energy_j = f64::NAN;
        out.points.push(poisoned);
        let best = out.best_by_ppw().expect("finite points remain selectable");
        assert!(best.report.ppw.is_finite());
        assert!(out.best_by_perf().unwrap().report.gflops.is_finite());
        assert!(out.best_by_energy().unwrap().report.energy_j.is_finite());
        // All-NaN outcomes select nothing rather than panicking.
        let all_nan = SweepOutcome {
            points: out
                .points
                .iter()
                .map(|p| {
                    let mut p = p.clone();
                    p.report.ppw = f64::NAN;
                    p.report.gflops = f64::NAN;
                    p.report.energy_j = f64::NAN;
                    p
                })
                .collect(),
            infeasible: vec![],
            failures: vec![],
        };
        assert!(all_nan.best_by_ppw().is_none());
        assert!(all_nan.best_by_perf().is_none());
        assert!(all_nan.best_by_energy().is_none());
    }

    /// Builds a synthetic measured point with the given energy/gflops
    /// coordinates (everything else defaulted) for Pareto tests.
    fn synthetic_point(energy_j: f64, gflops: f64, valid: bool) -> SweepPoint {
        let mut report = eatss_gpusim::SimReport::invalid("syn");
        report.valid = valid;
        report.energy_j = energy_j;
        report.gflops = gflops;
        SweepPoint {
            config: EatssConfig::default(),
            solution: EatssSolution::ppcg_default(3),
            report,
        }
    }

    #[test]
    fn pareto_front_matches_brute_force_dominance() {
        // A scatter with known structure: dominated interior points, a
        // duplicate, and strictly-improving frontier points.
        let coords = [
            (10.0, 100.0),
            (12.0, 90.0),  // dominated by (10, 100)
            (8.0, 80.0),
            (8.0, 80.0),   // bit-identical duplicate: first kept
            (9.0, 80.0),   // dominated by (8, 80)
            (5.0, 40.0),
            (5.0, 60.0),   // dominates (5, 40)
            (20.0, 120.0),
            (3.0, 10.0),
        ];
        let points: Vec<SweepPoint> = coords
            .iter()
            .map(|&(e, g)| synthetic_point(e, g, true))
            .collect();
        let outcome = SweepOutcome {
            points,
            infeasible: vec![],
            failures: vec![],
        };
        let front = outcome.pareto_front();
        // Brute-force oracle: a point is on the front iff no other point
        // dominates it (≤ energy, ≥ gflops, strict in one) and it is not
        // a later duplicate of a kept point.
        let expect: Vec<(f64, f64)> =
            vec![(3.0, 10.0), (5.0, 60.0), (8.0, 80.0), (10.0, 100.0), (20.0, 120.0)];
        let got: Vec<(f64, f64)> = front
            .iter()
            .map(|p| (p.report.energy_j, p.report.gflops))
            .collect();
        assert_eq!(got, expect);
        for f in &front {
            for p in &outcome.points {
                let dominates = p.report.energy_j <= f.report.energy_j
                    && p.report.gflops >= f.report.gflops
                    && (p.report.energy_j < f.report.energy_j
                        || p.report.gflops > f.report.gflops);
                assert!(!dominates, "front point is dominated");
            }
        }
        // Ordering contract: ascending energy, strictly increasing
        // throughput along the front.
        for w in front.windows(2) {
            assert!(w[0].report.energy_j <= w[1].report.energy_j);
            assert!(w[0].report.gflops < w[1].report.gflops);
        }
        // The duplicate pair contributed exactly one front point.
        assert_eq!(
            front
                .iter()
                .filter(|p| p.report.energy_j == 8.0 && p.report.gflops == 80.0)
                .count(),
            1
        );
    }

    #[test]
    fn pareto_front_excludes_invalid_and_non_finite_points() {
        let points = vec![
            synthetic_point(10.0, 100.0, true),
            synthetic_point(1.0, 500.0, false),     // invalid: would dominate all
            synthetic_point(f64::NAN, 200.0, true), // NaN energy
            synthetic_point(2.0, f64::INFINITY, true), // infinite throughput
            synthetic_point(4.0, 50.0, true),
        ];
        let outcome = SweepOutcome {
            points,
            infeasible: vec![],
            failures: vec![],
        };
        let got: Vec<(f64, f64)> = outcome
            .pareto_front()
            .iter()
            .map(|p| (p.report.energy_j, p.report.gflops))
            .collect();
        assert_eq!(got, vec![(4.0, 50.0), (10.0, 100.0)]);
        // An all-ineligible outcome yields an empty front, not a panic.
        let empty = SweepOutcome {
            points: vec![synthetic_point(f64::NAN, f64::NAN, true)],
            infeasible: vec![],
            failures: vec![],
        };
        assert!(empty.pareto_front().is_empty());
    }

    #[test]
    fn real_sweep_front_is_non_dominated_and_contains_the_extremes() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let out = eatss.sweep(&mm(), &sizes, &PAPER_SPLITS, &[0.5]).unwrap();
        let front = out.pareto_front();
        assert!(!front.is_empty());
        // The energy and throughput optima are by definition
        // non-dominated, so both live on the front.
        let best_e = out.best_by_energy().unwrap();
        let best_g = out.best_by_perf().unwrap();
        assert!(front
            .iter()
            .any(|p| p.report.energy_j.to_bits() == best_e.report.energy_j.to_bits()));
        assert!(front
            .iter()
            .any(|p| p.report.gflops.to_bits() == best_g.report.gflops.to_bits()));
        // No measured point dominates any front point.
        for f in &front {
            for p in &out.points {
                if !p.report.valid {
                    continue;
                }
                assert!(
                    !(p.report.energy_j <= f.report.energy_j
                        && p.report.gflops >= f.report.gflops
                        && (p.report.energy_j < f.report.energy_j
                            || p.report.gflops > f.report.gflops))
                );
            }
        }
    }

    /// Structural equality of two sweep outcomes: same configurations in
    /// the same order, same tiles, same provenance, bit-identical
    /// measurements, and matching bookkeeping.
    fn assert_outcomes_identical(a: &SweepOutcome, b: &SweepOutcome) {
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.config, pb.config);
            assert_eq!(pa.solution.tiles.sizes(), pb.solution.tiles.sizes());
            assert_eq!(pa.solution.objective, pb.solution.objective);
            assert_eq!(pa.solution.provenance, pb.solution.provenance);
            assert_eq!(pa.report.ppw.to_bits(), pb.report.ppw.to_bits());
            assert_eq!(pa.report.gflops.to_bits(), pb.report.gflops.to_bits());
            assert_eq!(pa.report.energy_j.to_bits(), pb.report.energy_j.to_bits());
            assert_eq!(pa.report.valid, pb.report.valid);
        }
        assert_eq!(a.infeasible.len(), b.infeasible.len());
        for (ia, ib) in a.infeasible.iter().zip(&b.infeasible) {
            assert_eq!(ia.0, ib.0);
            assert_eq!(ia.1, ib.1);
        }
        assert_eq!(a.failures.len(), b.failures.len());
        for (fa, fb) in a.failures.iter().zip(&b.failures) {
            assert_eq!(fa.0, fb.0);
            assert_eq!(fa.1.to_string(), fb.1.to_string());
        }
    }

    #[test]
    fn warm_sweep_is_bit_identical_to_cold() {
        // The default warm-started sweep must produce exactly the tiles,
        // objectives and measurements of a fully cold sweep — the warm
        // floor only removes provably-suboptimal search work.
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let warm = run_with(
            &eatss,
            &mm(),
            &sizes,
            &PAPER_SPLITS,
            &[0.5, 1.0],
            &SweepOptions::default(),
        )
        .unwrap();
        let cold = run_with(
            &eatss,
            &mm(),
            &sizes,
            &PAPER_SPLITS,
            &[0.5, 1.0],
            &SweepOptions {
                warm_start: false,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_outcomes_identical(&warm, &cold);
        // The snapshot actually engaged: at least one later point found a
        // feasible hint and seeded its incumbent from it, and a seeded
        // search never expands more nodes than its cold twin (the floor
        // only adds pruning).
        let seeded: Vec<_> = warm
            .points
            .iter()
            .zip(&cold.points)
            .filter(|(w, _)| w.solution.stats.warm_seeds > 0)
            .collect();
        assert!(!seeded.is_empty(), "no sweep point used a warm seed");
        for (w, c) in seeded {
            assert!(w.solution.stats.nodes <= c.solution.stats.nodes);
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let sequential = run_with(
            &eatss,
            &mm(),
            &sizes,
            &PAPER_SPLITS,
            &[0.5, 1.0],
            &SweepOptions::default(),
        )
        .unwrap();
        for jobs in [2, 4, 0] {
            let parallel = run_with(
                &eatss,
                &mm(),
                &sizes,
                &PAPER_SPLITS,
                &[0.5, 1.0],
                &SweepOptions {
                    jobs,
                    ..SweepOptions::default()
                },
            )
            .unwrap();
            assert_outcomes_identical(&sequential, &parallel);
        }
    }

    #[test]
    fn parallel_sweep_preserves_fallback_bookkeeping() {
        // The mixed feasible/infeasible scenario must merge identically:
        // infeasible entries and fallback points in canonical order.
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 8), ("N", 8), ("P", 8)]);
        let sequential = run_with(
            &eatss,
            &mm(),
            &sizes,
            &[0.5],
            &[1.0, 0.125],
            &SweepOptions::default(),
        )
        .unwrap();
        let parallel = run_with(
            &eatss,
            &mm(),
            &sizes,
            &[0.5],
            &[1.0, 0.125],
            &SweepOptions {
                jobs: 3,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(parallel.infeasible.len(), 2);
        assert_outcomes_identical(&sequential, &parallel);
    }

    #[test]
    fn parallel_sweep_reports_the_sequential_systemic_error() {
        // An unbound problem size is a systemic failure at every point;
        // the parallel merge must surface the same (first-by-canonical-
        // order) error a sequential run aborts with.
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000)]); // P unbound
        let sequential =
            run_with(&eatss, &mm(), &sizes, &[0.0, 0.5], &[0.5], &SweepOptions::default())
                .unwrap_err();
        let parallel = run_with(
            &eatss,
            &mm(),
            &sizes,
            &[0.0, 0.5],
            &[0.5],
            &SweepOptions {
                jobs: 4,
                ..SweepOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(sequential.to_string(), parallel.to_string());
    }
}
