//! The EATSS configuration sweep: one solved + measured point per
//! (split factor × warp fraction) combination.
//!
//! §V-B generates three tile configurations per benchmark (three
//! shared-memory levels) and reports the best; §V-D widens the sweep with
//! warp fractions {0.125, 0.25, 0.5, 1.0} for high-dimensional kernels.
//! Infeasible combinations (empty solution spaces) are recorded, matching
//! the paper's "missing configurations".
//!
//! # Robustness
//!
//! A sweep is a measurement campaign, and campaigns must not die on one
//! bad point. Each configuration is solved through a retry ladder
//! ([`SweepOptions::attempts`]): a cheap budget first, an escalated
//! budget on exhaustion, then a coarsened (geometric) tile domain. When
//! every rung fails — or the formulation is *proved* infeasible — the
//! point degrades to PPCG's default `32^d` tiling so it still yields a
//! measurement, tagged [`SolutionProvenance::DefaultFallback`]. Points
//! whose measurement itself fails land in [`SweepOutcome::failures`] with
//! full stage attribution. The sweep as a whole errors only when *no*
//! configuration produced a measurable point.

use crate::config::{EatssConfig, ThreadBlockCap};
use crate::error::PipelineError;
use crate::model::{EatssError, EatssSolution};
use crate::Eatss;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::SimReport;
use eatss_smt::SolverConfig;
use std::time::Duration;

/// The shared-memory split levels of §V-B (0%, 50%, 67%).
pub const PAPER_SPLITS: [f64; 3] = [0.0, 0.5, 0.67];

/// The warp fractions of §V-D.
pub const PAPER_WARP_FRACTIONS: [f64; 4] = [0.125, 0.25, 0.5, 1.0];
// Each (split, fraction) point is additionally solved under both
// interpretations of the §IV-F thread-block bound (see
// [`ThreadBlockCap`]), and the measured best wins — mirroring how the
// paper generates a handful of candidate configurations per benchmark
// and keeps the best measured one.

/// One rung of the per-point retry ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveAttempt {
    /// Node budget for this attempt.
    pub node_limit: u64,
    /// Wall-clock budget for this attempt (the whole maximize loop).
    pub deadline: Option<Duration>,
    /// Whether to coarsen tile domains to geometric multiples.
    pub coarsen: bool,
}

/// Degradation policy for a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// The retry ladder, tried in order; later rungs run only when the
    /// earlier ones exhaust their budget ([`EatssError::Exhausted`]).
    /// A *proved* infeasibility stops the ladder immediately — a larger
    /// budget cannot revive an empty space, and coarsening only shrinks
    /// it.
    pub attempts: Vec<SolveAttempt>,
    /// Degrade unsolvable points to PPCG's default `32^d` tiling instead
    /// of dropping them.
    pub fallback_to_default: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            attempts: vec![
                // Normal budget: ample for every PolyBench-scale
                // formulation, bounded so a pathological point cannot
                // stall the campaign.
                SolveAttempt {
                    node_limit: 2_000_000,
                    deadline: Some(Duration::from_secs(10)),
                    coarsen: false,
                },
                // Escalated: an order of magnitude more of everything.
                SolveAttempt {
                    node_limit: 20_000_000,
                    deadline: Some(Duration::from_secs(60)),
                    coarsen: true,
                },
            ],
            fallback_to_default: true,
        }
    }
}

/// One solved and measured configuration.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The configuration knobs.
    pub config: EatssConfig,
    /// The tile selection the solver produced (see
    /// [`EatssSolution::provenance`] for how much to trust it).
    pub solution: EatssSolution,
    /// The simulated measurement of those tiles.
    pub report: SimReport,
}

/// All sweep results for one program.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Measured points — solved, anytime, or `32^d` fallbacks (check
    /// each point's provenance).
    pub points: Vec<SweepPoint>,
    /// Configurations whose formulation was proved unsatisfiable or
    /// stayed exhausted through the whole retry ladder (with reason).
    /// With fallback enabled these configurations *also* appear in
    /// [`SweepOutcome::points`] under default tiling.
    pub infeasible: Vec<(EatssConfig, String)>,
    /// Configurations that produced no measurement at all — even the
    /// fallback failed — with stage-attributed errors.
    pub failures: Vec<(EatssConfig, PipelineError)>,
}

impl SweepOutcome {
    /// The point with the highest performance-per-watt (the paper's
    /// selection criterion). Invalid reports and non-finite PPW values
    /// (e.g. a NaN from a corrupted measurement) are never selected.
    pub fn best_by_ppw(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.report.valid && p.report.ppw.is_finite())
            .max_by(|a, b| a.report.ppw.total_cmp(&b.report.ppw))
    }

    /// The point with the highest raw throughput.
    pub fn best_by_perf(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.report.valid && p.report.gflops.is_finite())
            .max_by(|a, b| a.report.gflops.total_cmp(&b.report.gflops))
    }

    /// The point with the lowest energy.
    pub fn best_by_energy(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.report.valid && p.report.energy_j.is_finite())
            .min_by(|a, b| a.report.energy_j.total_cmp(&b.report.energy_j))
    }
}

/// Runs the sweep with the default degradation policy.
///
/// # Errors
///
/// Returns [`PipelineError::NoMeasurablePoint`] only when not a single
/// configuration — including the `32^d` fallbacks — could be measured.
pub fn run(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    splits: &[f64],
    warp_fractions: &[f64],
) -> Result<SweepOutcome, PipelineError> {
    run_with(
        eatss,
        program,
        sizes,
        splits,
        warp_fractions,
        &SweepOptions::default(),
    )
}

/// Solves one configuration through the retry ladder. Retries only on
/// [`EatssError::Exhausted`]; every other error is definitive.
fn solve_with_retries(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    config: &EatssConfig,
    options: &SweepOptions,
) -> Result<EatssSolution, EatssError> {
    let mut last = EatssError::Exhausted {
        reason: "retry ladder is empty".to_owned(),
    };
    for attempt in &options.attempts {
        let result = crate::ModelGenerator::new(eatss.arch(), config.clone())
            .with_solver_config(SolverConfig {
                node_limit: attempt.node_limit,
                deadline: attempt.deadline,
                ..SolverConfig::default()
            })
            .with_domain_coarsening(attempt.coarsen)
            .build(program, Some(sizes))
            .and_then(crate::model::EatssModel::solve);
        match result {
            Ok(solution) => return Ok(solution),
            Err(e @ EatssError::Exhausted { .. }) => last = e,
            Err(definitive) => return Err(definitive),
        }
    }
    Err(last)
}

/// Runs the sweep under an explicit degradation policy.
///
/// # Errors
///
/// [`PipelineError::NoMeasurablePoint`] when no configuration yields a
/// measurement; [`PipelineError`] with stage attribution on systemic
/// failures (solver errors, unbound parameters — conditions no retry or
/// fallback can repair).
pub fn run_with(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    splits: &[f64],
    warp_fractions: &[f64],
    options: &SweepOptions,
) -> Result<SweepOutcome, PipelineError> {
    let mut points = Vec::new();
    let mut infeasible = Vec::new();
    let mut failures: Vec<(EatssConfig, PipelineError)> = Vec::new();
    let mut attempted = 0usize;
    for &split in splits {
        for &frac in warp_fractions {
          for cap in [ThreadBlockCap::Virtual, ThreadBlockCap::Strict] {
            attempted += 1;
            let config = EatssConfig {
                split_factor: split,
                warp_fraction: frac,
                cap,
                ..EatssConfig::default()
            };
            let context = format!(
                "{} @ split={split} wfrac={frac} cap={cap:?}",
                program.name
            );
            let solved = match solve_with_retries(eatss, program, sizes, &config, options) {
                Ok(solution) => Some(solution),
                Err(e @ (EatssError::Unsatisfiable { .. } | EatssError::Exhausted { .. })) => {
                    infeasible.push((config.clone(), e.to_string()));
                    None
                }
                // Systemic failures (solver bugs, unbound parameters,
                // empty programs) would repeat at every point — abort.
                Err(systemic) => return Err(PipelineError::from_eatss(systemic, context)),
            };
            // Measure the solved tiles; degrade to the default tiling
            // when there are none or their measurement fails.
            let mut measured = None;
            if let Some(solution) = solved {
                match eatss.evaluate(program, &solution.tiles, sizes, &config) {
                    Ok(report) => measured = Some((solution, report)),
                    Err(e) => {
                        failures.push((
                            config.clone(),
                            PipelineError::from_evaluate(e, context.clone()),
                        ));
                    }
                }
            }
            if measured.is_none() && options.fallback_to_default {
                let fallback = EatssSolution::ppcg_default(program.max_depth());
                match eatss.evaluate(program, &fallback.tiles, sizes, &config) {
                    Ok(report) => measured = Some((fallback, report)),
                    Err(e) => {
                        failures.push((
                            config.clone(),
                            PipelineError::from_evaluate(e, format!("{context} [fallback]")),
                        ));
                    }
                }
            }
            if let Some((solution, report)) = measured {
                points.push(SweepPoint {
                    config,
                    solution,
                    report,
                });
            }
          }
        }
    }
    if points.is_empty() {
        return Err(PipelineError::NoMeasurablePoint {
            attempted,
            context: program.name.clone(),
        });
    }
    Ok(SweepOutcome {
        points,
        infeasible,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SolutionProvenance;
    use eatss_affine::parser::parse_program;
    use eatss_gpusim::GpuArch;

    fn mm() -> Program {
        parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap()
    }

    #[test]
    fn paper_sweep_produces_points_and_best() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let out = eatss
            .sweep(&mm(), &sizes, &PAPER_SPLITS, &[0.5])
            .unwrap();
        // All six configurations are feasible at this size: no fallbacks,
        // no bookkeeping entries.
        assert_eq!(out.points.len(), 6);
        assert!(out.infeasible.is_empty() && out.failures.is_empty());
        assert!(out
            .points
            .iter()
            .all(|p| p.solution.provenance != SolutionProvenance::DefaultFallback));
        let best = out.best_by_ppw().unwrap();
        assert!(best.report.valid);
        assert!(best.report.ppw > 0.0);
        // best-by-ppw is at least as good as every other point.
        for p in &out.points {
            assert!(best.report.ppw >= p.report.ppw);
        }
    }

    #[test]
    fn infeasible_fractions_degrade_to_fallback_points() {
        let eatss = Eatss::new(GpuArch::ga100());
        // Tiny problem: WAF=32 has no aligned tile below the extents.
        let sizes = ProblemSizes::new([("M", 8), ("N", 8), ("P", 8)]);
        let out = eatss
            .sweep(&mm(), &sizes, &[0.5], &[1.0, 0.125])
            .unwrap();
        // The two infeasible cap variants are recorded AND measurable via
        // the 32^d fallback, so every configuration yields a point.
        assert_eq!(out.infeasible.len(), 2);
        assert_eq!(out.points.len(), 4);
        assert!(out.failures.is_empty());
        let fallbacks: Vec<_> = out
            .points
            .iter()
            .filter(|p| p.solution.provenance == SolutionProvenance::DefaultFallback)
            .collect();
        assert_eq!(fallbacks.len(), 2);
        for p in &fallbacks {
            assert!((p.config.warp_fraction - 1.0).abs() < 1e-12);
            assert_eq!(p.solution.tiles.sizes(), &[32, 32, 32]);
            assert_eq!(p.solution.objective, 0);
            assert!(p.report.valid, "fallback points are measurable");
        }
        // The genuinely solved points carry full provenance.
        assert!(out
            .points
            .iter()
            .filter(|p| (p.config.warp_fraction - 0.125).abs() < 1e-12)
            .all(|p| p.solution.provenance == SolutionProvenance::Solved));
    }

    #[test]
    fn all_infeasible_still_yields_fallback_measurements() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 3), ("N", 3), ("P", 3)]);
        let out = eatss.sweep(&mm(), &sizes, &[0.5], &[1.0]).unwrap();
        assert_eq!(out.infeasible.len(), 2);
        assert_eq!(out.points.len(), 2);
        assert!(out
            .points
            .iter()
            .all(|p| p.solution.provenance == SolutionProvenance::DefaultFallback));
        assert!(out.best_by_ppw().is_some());
    }

    #[test]
    fn disabling_fallback_restores_hard_failure() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 3), ("N", 3), ("P", 3)]);
        let opts = SweepOptions {
            fallback_to_default: false,
            ..SweepOptions::default()
        };
        let err = sweep_with(&eatss, &sizes, &opts).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::NoMeasurablePoint { attempted: 2, .. }
        ));
    }

    fn sweep_with(
        eatss: &Eatss,
        sizes: &ProblemSizes,
        opts: &SweepOptions,
    ) -> Result<SweepOutcome, PipelineError> {
        run_with(eatss, &mm(), sizes, &[0.5], &[1.0], opts)
    }

    #[test]
    fn exhausted_budget_retries_then_degrades() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        // A ladder whose every rung has a zero budget: each point stays
        // exhausted and must degrade to a measured fallback.
        let opts = SweepOptions {
            attempts: vec![SolveAttempt {
                node_limit: 0,
                deadline: None,
                coarsen: false,
            }],
            fallback_to_default: true,
        };
        let out = sweep_with(&eatss, &sizes, &opts).unwrap();
        assert_eq!(out.points.len(), 2);
        assert!(out
            .points
            .iter()
            .all(|p| p.solution.provenance == SolutionProvenance::DefaultFallback));
        assert_eq!(out.infeasible.len(), 2);
        assert!(out.infeasible[0].1.contains("budget exhausted"));
        // With an escalated second rung the same points solve fully.
        let out = sweep_with(
            &eatss,
            &sizes,
            &SweepOptions {
                attempts: vec![
                    SolveAttempt {
                        node_limit: 0,
                        deadline: None,
                        coarsen: false,
                    },
                    SolveAttempt {
                        node_limit: 2_000_000,
                        deadline: None,
                        coarsen: false,
                    },
                ],
                fallback_to_default: true,
            },
        )
        .unwrap();
        assert!(out
            .points
            .iter()
            .all(|p| p.solution.provenance == SolutionProvenance::Solved));
        assert!(out.infeasible.is_empty());
    }

    #[test]
    fn best_selectors_agree_on_validity() {
        let eatss = Eatss::new(GpuArch::xavier());
        let sizes = ProblemSizes::new([("M", 1024), ("N", 1024), ("P", 1024)]);
        let out = eatss.sweep(&mm(), &sizes, &PAPER_SPLITS, &[0.5]).unwrap();
        assert!(out.best_by_perf().is_some());
        assert!(out.best_by_energy().is_some());
        let e = out.best_by_energy().unwrap();
        for p in &out.points {
            assert!(e.report.energy_j <= p.report.energy_j);
        }
    }

    #[test]
    fn nan_reports_are_never_selected_as_best() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let mut out = eatss.sweep(&mm(), &sizes, &[0.5], &[0.5]).unwrap();
        // Regression: a valid-looking report with NaN metrics used to
        // panic the `partial_cmp(..).expect(..)` selectors.
        let mut poisoned = out.points[0].clone();
        poisoned.report.ppw = f64::NAN;
        poisoned.report.gflops = f64::NAN;
        poisoned.report.energy_j = f64::NAN;
        out.points.push(poisoned);
        let best = out.best_by_ppw().expect("finite points remain selectable");
        assert!(best.report.ppw.is_finite());
        assert!(out.best_by_perf().unwrap().report.gflops.is_finite());
        assert!(out.best_by_energy().unwrap().report.energy_j.is_finite());
        // All-NaN outcomes select nothing rather than panicking.
        let all_nan = SweepOutcome {
            points: out
                .points
                .iter()
                .map(|p| {
                    let mut p = p.clone();
                    p.report.ppw = f64::NAN;
                    p.report.gflops = f64::NAN;
                    p.report.energy_j = f64::NAN;
                    p
                })
                .collect(),
            infeasible: vec![],
            failures: vec![],
        };
        assert!(all_nan.best_by_ppw().is_none());
        assert!(all_nan.best_by_perf().is_none());
        assert!(all_nan.best_by_energy().is_none());
    }
}
