//! The EATSS configuration sweep: one solved + measured point per
//! (split factor × warp fraction) combination.
//!
//! §V-B generates three tile configurations per benchmark (three
//! shared-memory levels) and reports the best; §V-D widens the sweep with
//! warp fractions {0.125, 0.25, 0.5, 1.0} for high-dimensional kernels.
//! Infeasible combinations (empty solution spaces) are recorded, matching
//! the paper's "missing configurations".

use crate::config::{EatssConfig, ThreadBlockCap};
use crate::evaluate::EvaluateError;
use crate::model::{EatssError, EatssSolution};
use crate::Eatss;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::SimReport;

/// The shared-memory split levels of §V-B (0%, 50%, 67%).
pub const PAPER_SPLITS: [f64; 3] = [0.0, 0.5, 0.67];

/// The warp fractions of §V-D.
pub const PAPER_WARP_FRACTIONS: [f64; 4] = [0.125, 0.25, 0.5, 1.0];
// Each (split, fraction) point is additionally solved under both
// interpretations of the §IV-F thread-block bound (see
// [`ThreadBlockCap`]), and the measured best wins — mirroring how the
// paper generates a handful of candidate configurations per benchmark
// and keeps the best measured one.

/// One solved and measured configuration.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The configuration knobs.
    pub config: EatssConfig,
    /// The tile selection the solver produced.
    pub solution: EatssSolution,
    /// The simulated measurement of those tiles.
    pub report: SimReport,
}

/// All sweep results for one program.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Feasible, measured points.
    pub points: Vec<SweepPoint>,
    /// Configurations whose formulation was unsatisfiable (with reason).
    pub infeasible: Vec<(EatssConfig, String)>,
}

impl SweepOutcome {
    /// The point with the highest performance-per-watt (the paper's
    /// selection criterion).
    pub fn best_by_ppw(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.report.valid)
            .max_by(|a, b| {
                a.report
                    .ppw
                    .partial_cmp(&b.report.ppw)
                    .expect("PPW is finite for valid reports")
            })
    }

    /// The point with the highest raw throughput.
    pub fn best_by_perf(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.report.valid)
            .max_by(|a, b| {
                a.report
                    .gflops
                    .partial_cmp(&b.report.gflops)
                    .expect("GFLOP/s is finite for valid reports")
            })
    }

    /// The point with the lowest energy.
    pub fn best_by_energy(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.report.valid)
            .min_by(|a, b| {
                a.report
                    .energy_j
                    .partial_cmp(&b.report.energy_j)
                    .expect("energy is finite for valid reports")
            })
    }
}

/// Runs the sweep. Fails only if *every* combination is infeasible or a
/// systemic error (solver/compile) occurs.
pub fn run(
    eatss: &Eatss,
    program: &Program,
    sizes: &ProblemSizes,
    splits: &[f64],
    warp_fractions: &[f64],
) -> Result<SweepOutcome, EatssError> {
    let mut points = Vec::new();
    let mut infeasible = Vec::new();
    for &split in splits {
        for &frac in warp_fractions {
          for cap in [ThreadBlockCap::Virtual, ThreadBlockCap::Strict] {
            let config = EatssConfig {
                split_factor: split,
                warp_fraction: frac,
                cap,
                ..EatssConfig::default()
            };
            match eatss.select_tiles(program, sizes, &config) {
                Ok(solution) => {
                    let report = eatss
                        .evaluate(program, &solution.tiles, sizes, &config)
                        .map_err(|e: EvaluateError| EatssError::Unsatisfiable {
                            reason: e.to_string(),
                        })?;
                    points.push(SweepPoint {
                        config,
                        solution,
                        report,
                    });
                }
                Err(EatssError::Unsatisfiable { reason }) => {
                    infeasible.push((config, reason));
                }
                Err(other) => return Err(other),
            }
          }
        }
    }
    if points.is_empty() {
        return Err(EatssError::Unsatisfiable {
            reason: format!(
                "all {} sweep configurations are infeasible",
                infeasible.len()
            ),
        });
    }
    Ok(SweepOutcome { points, infeasible })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eatss_affine::parser::parse_program;
    use eatss_gpusim::GpuArch;

    fn mm() -> Program {
        parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap()
    }

    #[test]
    fn paper_sweep_produces_points_and_best() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let out = eatss
            .sweep(&mm(), &sizes, &PAPER_SPLITS, &[0.5])
            .unwrap();
        assert_eq!(out.points.len() + out.infeasible.len(), 6);
        assert!(!out.points.is_empty());
        let best = out.best_by_ppw().unwrap();
        assert!(best.report.valid);
        assert!(best.report.ppw > 0.0);
        // best-by-ppw is at least as good as every other point.
        for p in &out.points {
            assert!(best.report.ppw >= p.report.ppw);
        }
    }

    #[test]
    fn infeasible_fractions_are_recorded_not_fatal() {
        let eatss = Eatss::new(GpuArch::ga100());
        // Tiny problem: WAF=32 has no aligned tile below the extents.
        let sizes = ProblemSizes::new([("M", 8), ("N", 8), ("P", 8)]);
        let out = eatss
            .sweep(&mm(), &sizes, &[0.5], &[1.0, 0.125])
            .unwrap();
        assert_eq!(out.infeasible.len(), 2);
        assert_eq!(out.points.len(), 2);
        assert!((out.points[0].config.warp_fraction - 0.125).abs() < 1e-12);
    }

    #[test]
    fn all_infeasible_is_an_error() {
        let eatss = Eatss::new(GpuArch::ga100());
        let sizes = ProblemSizes::new([("M", 3), ("N", 3), ("P", 3)]);
        let err = eatss.sweep(&mm(), &sizes, &[0.5], &[1.0]).unwrap_err();
        assert!(matches!(err, EatssError::Unsatisfiable { .. }));
    }

    #[test]
    fn best_selectors_agree_on_validity() {
        let eatss = Eatss::new(GpuArch::xavier());
        let sizes = ProblemSizes::new([("M", 1024), ("N", 1024), ("P", 1024)]);
        let out = eatss.sweep(&mm(), &sizes, &PAPER_SPLITS, &[0.5]).unwrap();
        assert!(out.best_by_perf().is_some());
        assert!(out.best_by_energy().is_some());
        let e = out.best_by_energy().unwrap();
        for p in &out.points {
            assert!(e.report.energy_j <= p.report.energy_j);
        }
    }
}
