//! End-to-end tests of the `eatss --verify` CLI path: the oracle-backed
//! verification must run, report bitwise agreement, and fail loudly on a
//! bad configuration request.

use std::process::Command;

fn eatss() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eatss"))
}

#[test]
fn verify_flag_checks_eatss_and_default_tiles() {
    let out = eatss()
        .args(["gemm", "--verify", "--log-level", "off"])
        .output()
        .expect("spawn eatss");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "--verify failed:\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("verify EATSS"), "{stdout}");
    assert!(stdout.contains("verify 32^d"), "{stdout}");
    assert_eq!(stdout.matches("OK —").count(), 2, "{stdout}");
    assert!(stdout.contains("bitwise-equal"), "{stdout}");
}

#[test]
fn verify_seed_is_reported_for_reproducibility() {
    let out = eatss()
        .args([
            "gemm",
            "--verify",
            "--verify-seed",
            "1234",
            "--log-level",
            "off",
        ])
        .output()
        .expect("spawn eatss");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("seed 1234)"), "{stdout}");
}

#[test]
fn verify_works_on_a_time_loop_benchmark() {
    // jacobi-2d has an explicit-serial time dim: the oracle must emulate
    // per-step launches and still agree with the interpreter.
    let out = eatss()
        .args(["jacobi-2d", "--verify", "--log-level", "off"])
        .output()
        .expect("spawn eatss");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(stdout.matches("OK —").count(), 2, "{stdout}");
}

#[test]
fn bad_verify_seed_is_rejected() {
    let out = eatss()
        .args(["gemm", "--verify-seed", "not-a-number"])
        .output()
        .expect("spawn eatss");
    assert!(!out.status.success());
}
