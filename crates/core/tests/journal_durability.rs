//! Durability properties of the sharded tile-cache journal: arbitrary
//! entries survive a write→reopen round trip, a torn tail truncated at
//! *every* byte offset recovers all fully-written records, and bit-flip
//! corruption is detected, skipped, and counted — never a panic, never
//! a wrong record.

use eatss::journal::{fnv1a64, HEADER_BYTES};
use eatss::{Journal, JournalConfig, SyncPolicy};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eatss-journal-{tag}-{}-{:x}",
        std::process::id(),
        fnv1a64(tag.as_bytes())
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(shards: u32) -> JournalConfig {
    JournalConfig {
        shards,
        // The tests reopen from what reached the filesystem; syncing
        // every append only slows them down.
        sync: SyncPolicy::Never,
        ..JournalConfig::default()
    }
}

fn write_entries(dir: &std::path::Path, shards: u32, entries: &[(Vec<u8>, Vec<u8>)]) {
    let (mut journal, replayed) = Journal::open(dir, config(shards)).expect("open");
    assert!(replayed.is_empty(), "fresh directory");
    for (key, value) in entries {
        journal.append(fnv1a64(key), key, value).expect("append");
    }
    journal.flush().expect("flush");
}

/// Replay order within a shard is append order, so last-write-wins per
/// key gives the expected final state.
fn expected_map(entries: &[(Vec<u8>, Vec<u8>)]) -> BTreeMap<Vec<u8>, Vec<u8>> {
    entries.iter().cloned().collect()
}

fn replayed_map(replayed: Vec<(Vec<u8>, Vec<u8>)>) -> BTreeMap<Vec<u8>, Vec<u8>> {
    replayed.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round trip: any batch of entries (duplicate keys, empty values,
    /// binary keys, any shard count) reloads to exactly the
    /// last-write-wins map with clean recovery counters.
    #[test]
    fn entries_round_trip_through_reopen(
        shards in 1u32..6,
        entries in proptest::collection::vec(
            (
                proptest::collection::vec(0u8..=255, 0..24),
                proptest::collection::vec(0u8..=255, 0..64),
            ),
            0..40,
        ),
    ) {
        let dir = temp_dir("roundtrip");
        write_entries(&dir, shards, &entries);
        let (journal, replayed) = Journal::open(&dir, config(shards)).expect("reopen");
        prop_assert_eq!(replayed_map(replayed), expected_map(&entries));
        let stats = journal.recovery();
        prop_assert_eq!(stats.records_recovered as usize, entries.len());
        prop_assert_eq!(stats.corrupt_records_skipped, 0);
        prop_assert_eq!(stats.torn_tails_truncated, 0);
        prop_assert_eq!(stats.bytes_discarded, 0);
        drop(journal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A crash can tear the tail at any byte. For every prefix length of a
/// single-shard journal: all records fully contained in the prefix are
/// recovered, nothing else is, and the torn bytes are counted.
#[test]
fn torn_tail_recovers_every_complete_record_at_every_offset() {
    let dir = temp_dir("torn");
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0u8..5)
        .map(|i| (vec![i; 3 + i as usize], vec![0xA0 | i; 7 + i as usize]))
        .collect();
    write_entries(&dir, 1, &entries);
    let shard = dir.join("shard-000.log");
    let full = std::fs::read(&shard).expect("read shard");

    // Record boundaries: reopen after truncating to each length and
    // note where the recovered count increases.
    let mut boundaries = vec![HEADER_BYTES as usize];
    for len in HEADER_BYTES as usize..=full.len() {
        std::fs::write(&shard, &full[..len]).expect("truncate");
        let (journal, replayed) = Journal::open(&dir, config(1)).expect("reopen torn");
        let stats = journal.recovery();
        drop(journal);

        let complete = boundaries
            .iter()
            .filter(|&&b| b <= len && b > HEADER_BYTES as usize)
            .count();
        // A new boundary is discovered when recovery reports one more
        // record than the boundaries passed so far.
        let recovered = stats.records_recovered as usize;
        assert!(
            recovered == complete || recovered == complete + 1,
            "len {len}: recovered {recovered}, known boundaries {complete}"
        );
        if recovered == complete + 1 {
            boundaries.push(len);
        }
        assert_eq!(replayed.len(), recovered, "len {len}");
        for (i, (key, value)) in replayed.iter().enumerate() {
            assert_eq!((key, value), (&entries[i].0, &entries[i].1), "len {len} record {i}");
        }
        assert_eq!(stats.corrupt_records_skipped, 0, "len {len}: a torn tail is not corruption");
        let partial = len - boundaries[recovered];
        if partial > 0 {
            assert_eq!(stats.torn_tails_truncated, 1, "len {len}");
            assert_eq!(stats.bytes_discarded as usize, partial, "len {len}");
        } else {
            assert_eq!(stats.torn_tails_truncated, 0, "len {len}: clean boundary");
        }
    }
    assert_eq!(
        boundaries.len(),
        entries.len() + 1,
        "every record ends at a distinct boundary"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flipping any single bit of any record body causes exactly that
/// record (and, for a length-prefix hit, possibly the rest of the
/// shard) to be dropped and counted — never a panic, never a record
/// that decodes to wrong bytes.
#[test]
fn bit_flips_are_detected_skipped_and_counted() {
    let dir = temp_dir("bitflip");
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0u8..4)
        .map(|i| (vec![b'k', i], vec![i; 16]))
        .collect();
    write_entries(&dir, 1, &entries);
    let shard = dir.join("shard-000.log");
    let full = std::fs::read(&shard).expect("read shard");
    let expected = expected_map(&entries);

    for byte in HEADER_BYTES as usize..full.len() {
        for bit in [0u8, 3, 7] {
            let mut corrupted = full.clone();
            corrupted[byte] ^= 1 << bit;
            std::fs::write(&shard, &corrupted).expect("write corrupted");
            let (journal, replayed) = Journal::open(&dir, config(1))
                .unwrap_or_else(|e| panic!("byte {byte} bit {bit}: open must not fail: {e}"));
            let stats = journal.recovery();
            drop(journal);

            // Every record that does come back must be byte-exact.
            for (key, value) in &replayed {
                assert_eq!(
                    expected.get(key),
                    Some(value),
                    "byte {byte} bit {bit}: corrupted record surfaced"
                );
            }
            let lost = entries.len() - replayed.len();
            assert!(lost >= 1, "byte {byte} bit {bit}: flip went undetected");
            // Corrupt records are counted per record; only torn tails
            // are counted in bytes.
            assert!(
                stats.corrupt_records_skipped >= 1 || stats.torn_tails_truncated >= 1,
                "byte {byte} bit {bit}: loss not accounted: {stats:?}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Compaction preserves content and resets recovery debt: after
/// corrupting, reopening, and compacting, a further reopen is clean.
#[test]
fn compaction_after_corruption_restores_a_clean_journal() {
    let dir = temp_dir("compact");
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0u8..6)
        .map(|i| (vec![b'c', i], vec![i ^ 0x5A; 9]))
        .collect();
    write_entries(&dir, 2, &entries);

    // Tear the tail of one shard.
    for shard in [dir.join("shard-000.log"), dir.join("shard-001.log")] {
        let bytes = std::fs::read(&shard).expect("read");
        if bytes.len() > HEADER_BYTES as usize + 4 {
            std::fs::write(&shard, &bytes[..bytes.len() - 3]).expect("tear");
            break;
        }
    }

    let (mut journal, replayed) = Journal::open(&dir, config(2)).expect("reopen torn");
    assert!(journal.recovery().torn_tails_truncated >= 1);
    let survivors: Vec<(u64, Vec<u8>, Vec<u8>)> = replayed
        .into_iter()
        .map(|(k, v)| (fnv1a64(&k), k, v))
        .collect();
    journal
        .compact(survivors.iter().map(|(f, k, v)| (*f, k.as_slice(), v.clone())))
        .expect("compact");
    drop(journal);

    let (journal, replayed) = Journal::open(&dir, config(2)).expect("reopen compacted");
    let stats = journal.recovery();
    assert_eq!(stats.corrupt_records_skipped, 0);
    assert_eq!(stats.torn_tails_truncated, 0);
    assert_eq!(
        replayed_map(replayed),
        survivors.into_iter().map(|(_, k, v)| (k, v)).collect::<BTreeMap<_, _>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
