//! Differential tests: the trail/worklist/branch-and-bound engine must
//! agree with the retained naive reference engine
//! ([`eatss_smt::reference`]) on every random small formulation — same
//! sat/unsat verdicts from `check`, same optimal objective values from
//! `maximize`.
//!
//! Formulations mirror the shapes the EATSS model generator emits:
//! bounded integer variables, divisibility constraints (warp alignment),
//! product capacity constraints (shared-memory and register budgets), and
//! linear/bilinear comparisons. Objectives stay `div`/`mod`-free like the
//! paper's `COMP + GM ... + SM ...` objective. Domains are kept small so
//! the exhaustive reference finishes in microseconds per case.

use eatss_smt::{reference, IntExpr, Solver};
use proptest::prelude::*;

/// Builds a solver holding a randomized three-variable formulation and a
/// bilinear objective. `sel` bits toggle optional constraints so the mix
/// of tight/loose/unsat cases varies per case.
fn build(
    hi: [i64; 3],
    cap: i64,
    sum_cap: i64,
    modulus: i64,
    sel: u8,
) -> (Solver, IntExpr) {
    let mut s = Solver::new();
    let x = s.int_var("x", 1, hi[0]);
    let y = s.int_var("y", 1, hi[1]);
    let z = s.int_var("z", 1, hi[2]);
    // Capacity: the product of two tiles fits a budget (always on — the
    // backbone of every EATSS formulation).
    s.assert((x.clone() * y.clone()).le(cap));
    if sel & 1 != 0 {
        s.assert((x.clone() * y.clone() + y.clone() * z.clone()).le(sum_cap));
    }
    if sel & 2 != 0 {
        s.assert(x.modulo(modulus).eq_expr(0));
    }
    if sel & 4 != 0 {
        s.assert((x.clone() + y.clone()).gt(z.clone()));
    }
    if sel & 8 != 0 {
        s.assert(x.le(y.clone()));
    }
    if sel & 16 != 0 {
        // Occasionally unsatisfiable: demand more than the capacity allows.
        s.assert((x.clone() * y.clone()).gt(cap - 1));
        s.assert(x.gt(1));
        s.assert(y.gt(1));
    }
    let obj = x.clone() * y.clone() + z.clone() * IntExpr::constant(2) + y;
    (s, obj)
}

proptest! {
    /// `check` verdicts agree, and both engines' models (when sat) satisfy
    /// every asserted constraint.
    #[test]
    fn check_verdicts_match_reference(
        hx in 1i64..12, hy in 1i64..12, hz in 1i64..12,
        cap in 1i64..80, sum_cap in 1i64..120, modulus in 2i64..5,
        sel in 0u8..32,
    ) {
        let (mut s, _obj) = build([hx, hy, hz], cap, sum_cap, modulus, sel);
        let naive = reference::check(&s).expect("reference check");
        let fast = s.check().expect("fast check");
        prop_assert!(fast.complete, "no budgets configured");
        prop_assert_eq!(naive.model.is_some(), fast.model.is_some());
        for model in [&naive.model, &fast.model].into_iter().flatten() {
            for c in s.assertions() {
                prop_assert_eq!(model.eval_bool(c), Ok(true));
            }
        }
    }

    /// `maximize` reaches the same optimum as the reference's exhaustive
    /// `OBJ > best` loop, and proves it.
    #[test]
    fn maximize_optima_match_reference(
        hx in 1i64..10, hy in 1i64..10, hz in 1i64..10,
        cap in 1i64..60, sum_cap in 1i64..100, modulus in 2i64..5,
        sel in 0u8..32,
    ) {
        let (mut s, obj) = build([hx, hy, hz], cap, sum_cap, modulus, sel);
        let naive = reference::maximize(&s, &obj).expect("reference maximize");
        let fast = s.maximize(&obj).expect("fast maximize");
        prop_assert!(fast.optimal, "no budgets configured");
        prop_assert_eq!(naive.best, fast.best);
        if let (Some(best), Some(model)) = (fast.best, &fast.model) {
            prop_assert_eq!(model.eval(&obj), Ok(best));
            for c in s.assertions() {
                prop_assert_eq!(model.eval_bool(c), Ok(true));
            }
        }
    }

    /// The binary-search strategy agrees with both iterative engines.
    #[test]
    fn maximize_binary_matches_reference(
        hx in 1i64..8, hy in 1i64..8, hz in 1i64..8,
        cap in 1i64..50, sum_cap in 1i64..80, modulus in 2i64..5,
        sel in 0u8..32,
    ) {
        let (mut s, obj) = build([hx, hy, hz], cap, sum_cap, modulus, sel);
        let naive = reference::maximize(&s, &obj).expect("reference maximize");
        let hull = s.hull_bounds(&obj);
        let binary = s.maximize_binary(&obj, hull.hi()).expect("binary maximize");
        prop_assert_eq!(naive.best, binary.best);
    }
}
