//! Closed integer intervals with saturating non-linear arithmetic.
//!
//! Intervals are the abstract domain used by the solver's propagation pass:
//! every integer expression is evaluated to an [`Interval`] that is
//! guaranteed to contain the expression's value under every assignment
//! drawn from the current variable domains.

use std::fmt;

/// A closed integer interval `[lo, hi]`.
///
/// The empty interval is represented by `lo > hi` and can be obtained from
/// [`Interval::empty`]. All arithmetic saturates at `i64::MIN/4` and
/// `i64::MAX/4` so that downstream additions can never overflow; EATSS
/// formulations stay far below those magnitudes (tile products are at most
/// `1024^5 ≈ 2^50`).
///
/// # Examples
///
/// ```
/// use eatss_smt::Interval;
///
/// let a = Interval::new(2, 5);
/// let b = Interval::new(-1, 3);
/// assert_eq!(a * b, Interval::new(-5, 15));
/// assert!((a * b).contains(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: i64,
    hi: i64,
}

/// Saturation bound; keeps sums of several products representable.
const SAT: i64 = i64::MAX / 4;

fn clamp(v: i128) -> i64 {
    if v > SAT as i128 {
        SAT
    } else if v < -(SAT as i128) {
        -SAT
    } else {
        v as i64
    }
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// An inverted pair (`lo > hi`) is allowed and denotes the empty
    /// interval.
    pub fn new(lo: i64, hi: i64) -> Self {
        Interval { lo, hi }
    }

    /// The interval containing exactly `v`.
    pub fn singleton(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The canonical empty interval.
    pub fn empty() -> Self {
        Interval { lo: 1, hi: 0 }
    }

    /// The widest representable interval.
    pub fn top() -> Self {
        Interval { lo: -SAT, hi: SAT }
    }

    /// Lower bound (meaningless if [`Interval::is_empty`]).
    pub fn lo(self) -> i64 {
        self.lo
    }

    /// Upper bound (meaningless if [`Interval::is_empty`]).
    pub fn hi(self) -> i64 {
        self.hi
    }

    /// Whether the interval contains no integers.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Whether the interval is a single value.
    pub fn is_singleton(self) -> bool {
        self.lo == self.hi
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Interval of Euclidean division `self div rhs`.
    ///
    /// If `rhs` may be zero, the result is conservatively widened to
    /// [`Interval::top`] (a concrete division by zero is still reported as
    /// an error at model-evaluation time).
    pub fn div_euclid(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        if rhs.contains(0) {
            return Interval::top();
        }
        // rhs is entirely positive or entirely negative; the extrema of a
        // monotone-by-parts function lie on corner combinations. Euclidean
        // division is monotone in the dividend for fixed divisor, and the
        // divisor extremes bound the quotient magnitude.
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for a in [self.lo, self.hi] {
            for b in [rhs.lo, rhs.hi] {
                let q = a.div_euclid(b);
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        Interval::new(lo, hi)
    }

    /// Interval of Euclidean remainder `self mod rhs`.
    ///
    /// The result is always within `[0, max|rhs| - 1]`; when both operands
    /// are singletons the remainder is exact, and when the dividend interval
    /// spans fewer values than the (singleton, positive) modulus and does not
    /// wrap, the tight sub-range is returned.
    pub fn rem_euclid(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        if rhs.contains(0) {
            let m = rhs.lo.abs().max(rhs.hi.abs());
            if m == 0 {
                // Modulus is exactly zero everywhere: no valid result.
                return Interval::empty();
            }
            return Interval::new(0, m - 1);
        }
        let m_max = rhs.lo.abs().max(rhs.hi.abs());
        if self.is_singleton() && rhs.is_singleton() {
            return Interval::singleton(self.lo.rem_euclid(rhs.lo));
        }
        if rhs.is_singleton() {
            let m = rhs.lo.abs();
            let span = self.hi as i128 - self.lo as i128;
            if span < m as i128 {
                let r_lo = self.lo.rem_euclid(m);
                let r_hi = self.hi.rem_euclid(m);
                if r_lo <= r_hi {
                    return Interval::new(r_lo, r_hi);
                }
            }
            return Interval::new(0, m - 1);
        }
        Interval::new(0, m_max - 1)
    }

    /// Pointwise minimum.
    pub fn min(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        Interval::new(self.lo.min(rhs.lo), self.hi.min(rhs.hi))
    }

    /// Pointwise maximum.
    pub fn max(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        Interval::new(self.lo.max(rhs.lo), self.hi.max(rhs.hi))
    }

    /// Intersection of two intervals.
    pub fn intersect(self, rhs: Interval) -> Interval {
        Interval::new(self.lo.max(rhs.lo), self.hi.min(rhs.hi))
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Interval sum.
    fn add(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        Interval::new(
            clamp(self.lo as i128 + rhs.lo as i128),
            clamp(self.hi as i128 + rhs.hi as i128),
        )
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;

    /// Interval difference.
    fn sub(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        Interval::new(
            clamp(self.lo as i128 - rhs.hi as i128),
            clamp(self.hi as i128 - rhs.lo as i128),
        )
    }
}

impl std::ops::Neg for Interval {
    type Output = Interval;

    /// Interval negation.
    fn neg(self) -> Interval {
        if self.is_empty() {
            return Interval::empty();
        }
        Interval::new(-self.hi, -self.lo)
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;

    /// Interval product (handles mixed signs via the four corner
    /// products).
    fn mul(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        let corners = [
            self.lo as i128 * rhs.lo as i128,
            self.lo as i128 * rhs.hi as i128,
            self.hi as i128 * rhs.lo as i128,
            self.hi as i128 * rhs.hi as i128,
        ];
        let lo = corners.iter().copied().min().expect("non-empty corners");
        let hi = corners.iter().copied().max().expect("non-empty corners");
        Interval::new(clamp(lo), clamp(hi))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[]")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_are_exact_on_small_intervals() {
        let a = Interval::new(1, 3);
        let b = Interval::new(-2, 4);
        assert_eq!(a + b, Interval::new(-1, 7));
        assert_eq!(a - b, Interval::new(-3, 5));
    }

    #[test]
    fn mul_handles_mixed_signs() {
        let a = Interval::new(-2, 3);
        let b = Interval::new(-5, 1);
        // corners: 10, -2, -15, 3
        assert_eq!(a * b, Interval::new(-15, 10));
    }

    #[test]
    fn mul_of_positives_is_monotone() {
        let a = Interval::new(2, 8);
        let b = Interval::new(3, 4);
        assert_eq!(a * b, Interval::new(6, 32));
    }

    #[test]
    fn empty_propagates_through_arithmetic() {
        let e = Interval::empty();
        let a = Interval::new(0, 10);
        assert!((e + a).is_empty());
        assert!((a * e).is_empty());
        assert!((-e).is_empty());
    }

    #[test]
    fn div_by_interval_containing_zero_is_top() {
        let a = Interval::new(10, 20);
        let b = Interval::new(-1, 1);
        assert_eq!(a.div_euclid(b), Interval::top());
    }

    #[test]
    fn div_positive_is_tight_on_corners() {
        let a = Interval::new(10, 21);
        let b = Interval::new(2, 5);
        assert_eq!(a.div_euclid(b), Interval::new(2, 10));
    }

    #[test]
    fn rem_singleton_is_exact() {
        assert_eq!(
            Interval::singleton(37).rem_euclid(Interval::singleton(16)),
            Interval::singleton(5)
        );
        assert_eq!(
            Interval::singleton(-3).rem_euclid(Interval::singleton(16)),
            Interval::singleton(13)
        );
    }

    #[test]
    fn rem_narrow_dividend_is_tight() {
        // [33, 35] mod 16 = [1, 3]
        assert_eq!(
            Interval::new(33, 35).rem_euclid(Interval::singleton(16)),
            Interval::new(1, 3)
        );
        // Wrapping case falls back to [0, 15].
        assert_eq!(
            Interval::new(30, 35).rem_euclid(Interval::singleton(16)),
            Interval::new(0, 15)
        );
    }

    #[test]
    fn saturation_does_not_panic() {
        let a = Interval::new(i64::MAX / 8, i64::MAX / 8);
        let b = a * a;
        assert!(b.hi() <= i64::MAX / 4);
        let c = b + b;
        assert!(c.hi() <= i64::MAX / 2);
    }

    #[test]
    fn intersect_and_contains_agree() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        let c = a.intersect(b);
        assert_eq!(c, Interval::new(5, 10));
        for v in 0..=20 {
            assert_eq!(c.contains(v), a.contains(v) && b.contains(v));
        }
    }

    #[test]
    fn min_max_are_pointwise() {
        let a = Interval::new(1, 10);
        let b = Interval::new(4, 6);
        assert_eq!(a.min(b), Interval::new(1, 6));
        assert_eq!(a.max(b), Interval::new(4, 10));
    }
}
