//! The naive search engine, retained for differential testing.
//!
//! This is the solver core as it stood before the trail/worklist rewrite:
//! every DFS node clones the full `Vec<Domain>`, every propagation round
//! re-evaluates every constraint against freshly rebuilt hulls, and the
//! maximization loop has no bound pruning. It is deliberately kept
//! byte-for-byte dumb — its only jobs are
//!
//! * **differential testing**: the fast engine must return the same
//!   sat/unsat verdicts and the same optimal objective values on every
//!   formulation (see `crates/smt/tests/differential.rs`), and
//! * **benchmarking**: `BENCH_solver.json` reports the fast engine's
//!   node-count and wall-clock reduction against this baseline.
//!
//! The reference runs exhaustively, with no budgets: callers are expected
//! to hand it formulations the old engine could already finish (all of the
//! PolyBench formulations qualify — the pre-PR test suite solved them).

use crate::domain::Domain;
use crate::expr::{BoolExpr, IntExpr, VarId};
use crate::interval::Interval;
use crate::model::Model;
use crate::search::{assignment_of, tri_bool, Tri};
use crate::solver::{SolveError, Solver};

/// Result of a reference [`check`], with the work done to get it.
#[derive(Debug, Clone)]
pub struct ReferenceOutcome {
    /// A satisfying assignment, if one exists (the search is exhaustive,
    /// so `None` proves unsatisfiability).
    pub model: Option<Model>,
    /// Search-tree nodes expanded.
    pub nodes: u64,
}

/// Result of a reference [`maximize`].
#[derive(Debug, Clone)]
pub struct ReferenceMaximize {
    /// The optimal model (none if unsatisfiable).
    pub model: Option<Model>,
    /// The proved-optimal objective value.
    pub best: Option<i64>,
    /// Number of `check`-equivalent searches run by the `OBJ > best` loop.
    pub solver_calls: u32,
    /// Total search-tree nodes expanded across all calls.
    pub nodes: u64,
}

struct NaiveSearch<'a> {
    names: &'a [String],
    constraints: &'a [(BoolExpr, Vec<VarId>)],
    max_rounds: u32,
    descending: bool,
    nodes: u64,
}

impl NaiveSearch<'_> {
    /// Returns a satisfying assignment extending `domains`, or `None`.
    fn dfs(&mut self, mut domains: Vec<Domain>) -> Option<Vec<i64>> {
        if !self.propagate(&mut domains) {
            return None;
        }
        if let Some(values) = assignment_of(&domains) {
            let model = Model::new(values.clone(), self.names.to_vec());
            for (c, _) in self.constraints {
                match model.eval_bool(c) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => return None,
                }
            }
            return Some(values);
        }
        let (var_idx, _) = domains
            .iter()
            .enumerate()
            .filter(|(_, d)| d.len() > 1)
            .min_by_key(|(_, d)| d.len())?;
        let candidates: Vec<i64> = if self.descending {
            domains[var_idx].iter().rev().collect()
        } else {
            domains[var_idx].iter().collect()
        };
        for value in candidates {
            self.nodes += 1;
            let mut child = domains.clone();
            child[var_idx] = Domain::singleton(value);
            if let Some(values) = self.dfs(child) {
                return Some(values);
            }
        }
        None
    }

    /// Filters domains until fixpoint, rebuilding every hull for every
    /// constraint each round — the O(V·C) behaviour the fast engine
    /// replaced. Returns `false` on inconsistency.
    fn propagate(&mut self, domains: &mut [Domain]) -> bool {
        for _ in 0..self.max_rounds {
            let mut changed = false;
            for (constraint, vars) in self.constraints {
                let hulls: Vec<Interval> = domains.iter().map(Domain::hull).collect();
                match tri_bool(constraint, &hulls) {
                    Tri::False => return false,
                    Tri::True => continue,
                    Tri::Unknown => {}
                }
                for &var in vars {
                    let idx = var.index();
                    if domains[idx].len() <= 1 || domains[idx].len() > 4096 {
                        continue;
                    }
                    let mut probe = hulls.clone();
                    let before = domains[idx].len();
                    domains[idx].retain(|&v| {
                        probe[idx] = Interval::singleton(v);
                        tri_bool(constraint, &probe) != Tri::False
                    });
                    if domains[idx].len() != before {
                        changed = true;
                        if domains[idx].is_empty() {
                            return false;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        true
    }
}

/// Decides satisfiability of `solver`'s assertions with the naive engine.
/// The solver itself is untouched (no stats, no scopes).
///
/// # Errors
///
/// Returns [`SolveError::UnknownVariable`] if a constraint references a
/// variable from another solver.
pub fn check(solver: &Solver) -> Result<ReferenceOutcome, SolveError> {
    solver.validate()?;
    let constraints: Vec<(BoolExpr, Vec<VarId>)> = solver.constraint_entries().to_vec();
    run_check(solver, &constraints)
}

fn run_check(
    solver: &Solver,
    constraints: &[(BoolExpr, Vec<VarId>)],
) -> Result<ReferenceOutcome, SolveError> {
    let mut search = NaiveSearch {
        names: solver.names(),
        constraints,
        max_rounds: solver.config().max_propagation_rounds,
        descending: solver.config().descending_values,
        nodes: 0,
    };
    let found = search.dfs(solver.base_domains().to_vec());
    Ok(ReferenceOutcome {
        model: found.map(|values| Model::new(values, solver.names().to_vec())),
        nodes: search.nodes,
    })
}

/// Maximizes `objective` with the pre-PR iterative loop: find a model,
/// assert `objective > best`, re-search, repeat until unsatisfiable. No
/// incumbent pruning, no budgets. The solver itself is untouched.
///
/// # Errors
///
/// Propagates [`check`] errors, plus evaluation errors on the objective.
pub fn maximize(solver: &Solver, objective: &IntExpr) -> Result<ReferenceMaximize, SolveError> {
    solver.validate()?;
    let mut constraints: Vec<(BoolExpr, Vec<VarId>)> = solver.constraint_entries().to_vec();
    let mut best: Option<(i64, Model)> = None;
    let mut calls = 0u32;
    let mut nodes = 0u64;
    loop {
        let outcome = run_check(solver, &constraints)?;
        calls += 1;
        nodes += outcome.nodes;
        match outcome.model {
            Some(model) => {
                let value = model.eval(objective)?;
                let improve = objective.gt(value);
                let mut vars = Vec::new();
                improve.collect_vars(&mut vars);
                constraints.push((improve, vars));
                best = Some((value, model));
            }
            None => break,
        }
    }
    let (best_value, model) = match best {
        Some((v, m)) => (Some(v), Some(m)),
        None => (None, None),
    };
    Ok(ReferenceMaximize {
        model,
        best: best_value,
        solver_calls: calls,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_check_agrees_on_sat_and_unsat() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 10);
        s.assert(x.ge(5));
        let r = check(&s).unwrap();
        assert!(r.model.is_some());
        s.assert(x.lt(5));
        let r = check(&s).unwrap();
        assert!(r.model.is_none());
        assert!(r.nodes <= 10);
    }

    #[test]
    fn reference_maximize_matches_fast_engine_on_matmul_slice() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 64);
        let y = s.int_var("y", 1, 64);
        s.assert((x.clone() * y.clone()).le(100));
        let obj = x.clone() + y.clone();
        let naive = maximize(&s, &obj).unwrap();
        let fast = s.maximize(&obj).unwrap();
        assert_eq!(naive.best, Some(65));
        assert_eq!(naive.best, fast.best);
        // The reference leaves the solver untouched: still satisfiable,
        // no scopes open.
        assert!(s.check().unwrap().model.is_some());
        assert!(naive.solver_calls >= 2);
    }
}
