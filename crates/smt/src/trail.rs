//! Trail-based backtracking for the search engine.
//!
//! The original depth-first search cloned the entire `Vec<Domain>` at every
//! node. The trail replaces that with copy-on-first-write undo: a decision
//! level saves only the domains it actually narrows, and backtracking
//! restores exactly those. On EATSS formulations — a handful of variables,
//! most untouched by any single propagation — this turns the per-node cost
//! from O(total domain values) into O(changed domains).

use crate::domain::Domain;
use crate::interval::Interval;

/// Undo stack of domain overwrites, organised into decision levels.
///
/// Saves happen lazily: [`Trail::replace`] stores the previous [`Domain`]
/// only the first time a variable changes within the current level (later
/// overwrites at the same level drop the intermediate state — restoring to
/// the level entry snapshot is all backtracking needs). Mutations made with
/// no level open (root propagation) are permanent for the enclosing search,
/// which owns its working copy of the domains.
#[derive(Debug)]
pub(crate) struct Trail {
    /// Saved `(variable index, domain as of level entry)` pairs.
    saved: Vec<(u32, Domain)>,
    /// Per level: `saved` length at entry plus the level's unique id.
    marks: Vec<(usize, u64)>,
    /// Monotonically increasing level id source (ids are never reused, so
    /// a stale stamp can never alias a live level after backtracking).
    next_id: u64,
    /// Per variable: id of the level that last saved it (0 = never).
    stamp: Vec<u64>,
}

impl Trail {
    /// A trail for `num_vars` variables with no open level.
    pub(crate) fn new(num_vars: usize) -> Self {
        Trail {
            saved: Vec::new(),
            marks: Vec::new(),
            next_id: 1,
            stamp: vec![0; num_vars],
        }
    }

    /// Opens a decision level; subsequent [`Trail::replace`] calls are
    /// undone by the matching [`Trail::pop_level`].
    pub(crate) fn push_level(&mut self) {
        self.marks.push((self.saved.len(), self.next_id));
        self.next_id += 1;
    }

    /// Number of open decision levels.
    #[cfg(test)]
    pub(crate) fn depth(&self) -> usize {
        self.marks.len()
    }

    /// Replaces `domains[var]` with `new`, saving the previous domain for
    /// undo if this is the variable's first change in the current level.
    pub(crate) fn replace(&mut self, var: usize, domains: &mut [Domain], new: Domain) {
        if let Some(&(_, id)) = self.marks.last() {
            if self.stamp[var] != id {
                self.stamp[var] = id;
                let old = std::mem::replace(&mut domains[var], new);
                self.saved.push((var as u32, old));
                return;
            }
        }
        domains[var] = new;
    }

    /// Closes the innermost level, restoring every domain it narrowed and
    /// the matching hull entries.
    ///
    /// # Panics
    ///
    /// Panics if no level is open — a search-engine invariant violation.
    pub(crate) fn pop_level(&mut self, domains: &mut [Domain], hulls: &mut [Interval]) {
        let (mark, _) = self.marks.pop().expect("pop_level without push_level");
        for (var, dom) in self.saved.drain(mark..).rev() {
            let idx = var as usize;
            hulls[idx] = dom.hull();
            domains[idx] = dom;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doms(specs: &[(i64, i64)]) -> (Vec<Domain>, Vec<Interval>) {
        let d: Vec<Domain> = specs.iter().map(|&(lo, hi)| Domain::range(lo, hi)).collect();
        let h = d.iter().map(Domain::hull).collect();
        (d, h)
    }

    #[test]
    fn pop_restores_saved_domains_and_hulls() {
        let (mut d, mut h) = doms(&[(1, 10), (1, 10)]);
        let mut t = Trail::new(2);
        t.push_level();
        t.replace(0, &mut d, Domain::singleton(7));
        h[0] = d[0].hull();
        assert_eq!(d[0].as_singleton(), Some(7));
        t.pop_level(&mut d, &mut h);
        assert_eq!(d[0].len(), 10);
        assert_eq!(h[0], Interval::new(1, 10));
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn second_replace_in_same_level_keeps_entry_snapshot() {
        let (mut d, mut h) = doms(&[(1, 10)]);
        let mut t = Trail::new(1);
        t.push_level();
        t.replace(0, &mut d, Domain::range(2, 9));
        t.replace(0, &mut d, Domain::singleton(5));
        t.pop_level(&mut d, &mut h);
        // Restores the level-entry state, not the intermediate [2, 9].
        assert_eq!(d[0].len(), 10);
    }

    #[test]
    fn nested_levels_restore_in_order() {
        let (mut d, mut h) = doms(&[(1, 8), (1, 8)]);
        let mut t = Trail::new(2);
        t.push_level();
        t.replace(0, &mut d, Domain::range(1, 4));
        t.push_level();
        t.replace(0, &mut d, Domain::singleton(2));
        t.replace(1, &mut d, Domain::singleton(3));
        t.pop_level(&mut d, &mut h);
        assert_eq!(d[0].len(), 4, "inner pop restores to outer level state");
        assert_eq!(d[1].len(), 8);
        t.pop_level(&mut d, &mut h);
        assert_eq!(d[0].len(), 8);
    }

    #[test]
    fn root_mutations_are_permanent() {
        let (mut d, _h) = doms(&[(1, 8)]);
        let mut t = Trail::new(1);
        t.replace(0, &mut d, Domain::range(2, 4));
        assert_eq!(d[0].len(), 3);
        t.push_level();
        let mut h = vec![d[0].hull()];
        t.pop_level(&mut d, &mut h);
        assert_eq!(d[0].len(), 3, "root narrowing survives backtracking");
    }

    #[test]
    fn stale_stamps_do_not_alias_new_levels() {
        let (mut d, mut h) = doms(&[(1, 8)]);
        let mut t = Trail::new(1);
        t.push_level();
        t.replace(0, &mut d, Domain::range(1, 4));
        t.pop_level(&mut d, &mut h);
        // A fresh level must save again even though the stamp was set by
        // a (now dead) previous level.
        t.push_level();
        t.replace(0, &mut d, Domain::singleton(1));
        t.pop_level(&mut d, &mut h);
        assert_eq!(d[0].len(), 8);
    }
}
