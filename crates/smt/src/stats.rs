//! Solver instrumentation.

use std::fmt;
use std::time::Duration;

/// Counters accumulated across all `check` calls on one
/// [`Solver`](crate::Solver).
///
/// The paper's §V-G reports Z3 overheads (number of solver calls and
/// per-call latency); these counters let the reproduction report the same
/// quantities for the stand-in solver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `check` invocations (a `maximize` performs several).
    pub checks: u64,
    /// Search-tree nodes expanded (variable assignments tried).
    pub nodes: u64,
    /// Domain-filtering passes executed.
    pub propagations: u64,
    /// Candidate values pruned by propagation.
    pub values_pruned: u64,
    /// Backtracks taken (assignments that led to a dead end).
    pub backtracks: u64,
    /// Searches stopped by the per-call node budget.
    pub node_limit_hits: u64,
    /// Searches stopped by the wall-clock deadline.
    pub deadline_hits: u64,
    /// Searches stopped by a [`CancelToken`](crate::CancelToken).
    pub cancellations: u64,
    /// Subtrees pruned because the objective's interval upper bound could
    /// not beat the branch-and-bound incumbent.
    pub bound_prunes: u64,
    /// Full O(vars) hull constructions. The worklist engine builds the
    /// hull vector exactly once per `check` and maintains it incrementally
    /// afterwards, so this equals [`SolverStats::checks`] — the regression
    /// tests pin that invariant so per-probe rebuilds cannot creep back in.
    pub hull_rebuilds: u64,
    /// `maximize` calls whose branch-and-bound incumbent was seeded from a
    /// [`WarmStart`](crate::WarmStart) hint (warm-started maximizes).
    pub warm_seeds: u64,
    /// Warm-start hints that evaluated feasible under the current
    /// formulation and therefore contributed a reusable incumbent cut.
    pub warm_cut_hits: u64,
    /// Wall-clock time spent inside `check`.
    pub solve_time: Duration,
    /// Portion of [`SolverStats::solve_time`] spent filtering domains
    /// (worklist propagation).
    pub propagation_time: Duration,
    /// Portion of [`SolverStats::solve_time`] spent in the search proper
    /// (branching, bound checks, backtracking) — `solve_time` minus
    /// propagation.
    pub search_time: Duration,
}

impl SolverStats {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = SolverStats::default();
    }

    /// The change since an `earlier` snapshot of the same stats object
    /// (all counters are monotonic, so fieldwise subtraction is exact).
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            checks: self.checks.saturating_sub(earlier.checks),
            nodes: self.nodes.saturating_sub(earlier.nodes),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            values_pruned: self.values_pruned.saturating_sub(earlier.values_pruned),
            backtracks: self.backtracks.saturating_sub(earlier.backtracks),
            node_limit_hits: self.node_limit_hits.saturating_sub(earlier.node_limit_hits),
            deadline_hits: self.deadline_hits.saturating_sub(earlier.deadline_hits),
            cancellations: self.cancellations.saturating_sub(earlier.cancellations),
            bound_prunes: self.bound_prunes.saturating_sub(earlier.bound_prunes),
            hull_rebuilds: self.hull_rebuilds.saturating_sub(earlier.hull_rebuilds),
            warm_seeds: self.warm_seeds.saturating_sub(earlier.warm_seeds),
            warm_cut_hits: self.warm_cut_hits.saturating_sub(earlier.warm_cut_hits),
            solve_time: self.solve_time.saturating_sub(earlier.solve_time),
            propagation_time: self.propagation_time.saturating_sub(earlier.propagation_time),
            search_time: self.search_time.saturating_sub(earlier.search_time),
        }
    }

    /// Adds these counters to the `eatss-trace` metrics registry under
    /// `smt.*` names. Called with per-`check` deltas by the instrumented
    /// solver entry points, so at the end of a trace session the registry
    /// totals equal the accumulated `SolverStats` (the trace tests pin
    /// this). No-op while trace collection is disabled.
    pub fn flow_to_registry(&self) {
        if !eatss_trace::collecting() {
            return;
        }
        eatss_trace::counter_add("smt.checks", self.checks);
        eatss_trace::counter_add("smt.nodes", self.nodes);
        eatss_trace::counter_add("smt.propagations", self.propagations);
        eatss_trace::counter_add("smt.values_pruned", self.values_pruned);
        eatss_trace::counter_add("smt.backtracks", self.backtracks);
        eatss_trace::counter_add("smt.node_limit_hits", self.node_limit_hits);
        eatss_trace::counter_add("smt.deadline_hits", self.deadline_hits);
        eatss_trace::counter_add("smt.cancellations", self.cancellations);
        eatss_trace::counter_add("smt.bound_prunes", self.bound_prunes);
        eatss_trace::counter_add("smt.hull_rebuilds", self.hull_rebuilds);
        eatss_trace::counter_add("smt.warm_seeds", self.warm_seeds);
        eatss_trace::counter_add("smt.warm_cut_hits", self.warm_cut_hits);
        eatss_trace::counter_add("smt.solve_time_us", self.solve_time.as_micros() as u64);
        eatss_trace::counter_add(
            "smt.propagation_time_us",
            self.propagation_time.as_micros() as u64,
        );
        eatss_trace::counter_add("smt.search_time_us", self.search_time.as_micros() as u64);
    }

    /// Mean time per `check` call, or zero if none were made.
    pub fn mean_check_time(&self) -> Duration {
        if self.checks == 0 {
            Duration::ZERO
        } else {
            self.solve_time / self.checks as u32
        }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checks={} nodes={} propagations={} pruned={} backtracks={} \
             bound_prunes={} hull_rebuilds={} warm_seeds={} warm_cut_hits={} \
             node_limit_hits={} deadline_hits={} cancellations={} time={:?} \
             propagation_time={:?} search_time={:?}",
            self.checks,
            self.nodes,
            self.propagations,
            self.values_pruned,
            self.backtracks,
            self.bound_prunes,
            self.hull_rebuilds,
            self.warm_seeds,
            self.warm_cut_hits,
            self.node_limit_hits,
            self.deadline_hits,
            self.cancellations,
            self.solve_time,
            self.propagation_time,
            self.search_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_check_time_handles_zero_checks() {
        let s = SolverStats::default();
        assert_eq!(s.mean_check_time(), Duration::ZERO);
    }

    #[test]
    fn mean_check_time_divides() {
        let s = SolverStats {
            checks: 4,
            solve_time: Duration::from_millis(100),
            ..SolverStats::default()
        };
        assert_eq!(s.mean_check_time(), Duration::from_millis(25));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = SolverStats {
            checks: 1,
            nodes: 2,
            propagations: 3,
            values_pruned: 4,
            backtracks: 5,
            node_limit_hits: 6,
            deadline_hits: 7,
            cancellations: 8,
            bound_prunes: 9,
            hull_rebuilds: 10,
            warm_seeds: 11,
            warm_cut_hits: 12,
            solve_time: Duration::from_secs(1),
            propagation_time: Duration::from_millis(600),
            search_time: Duration::from_millis(400),
        };
        s.reset();
        assert_eq!(s, SolverStats::default());
    }

    #[test]
    fn display_is_nonempty() {
        let s = SolverStats::default();
        assert!(s.to_string().contains("checks=0"));
    }
}
