//! Solver instrumentation.

use std::fmt;
use std::time::Duration;

/// Counters accumulated across all `check` calls on one
/// [`Solver`](crate::Solver).
///
/// The paper's §V-G reports Z3 overheads (number of solver calls and
/// per-call latency); these counters let the reproduction report the same
/// quantities for the stand-in solver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `check` invocations (a `maximize` performs several).
    pub checks: u64,
    /// Search-tree nodes expanded (variable assignments tried).
    pub nodes: u64,
    /// Domain-filtering passes executed.
    pub propagations: u64,
    /// Candidate values pruned by propagation.
    pub values_pruned: u64,
    /// Backtracks taken (assignments that led to a dead end).
    pub backtracks: u64,
    /// Searches stopped by the per-call node budget.
    pub node_limit_hits: u64,
    /// Searches stopped by the wall-clock deadline.
    pub deadline_hits: u64,
    /// Searches stopped by a [`CancelToken`](crate::CancelToken).
    pub cancellations: u64,
    /// Subtrees pruned because the objective's interval upper bound could
    /// not beat the branch-and-bound incumbent.
    pub bound_prunes: u64,
    /// Full O(vars) hull constructions. The worklist engine builds the
    /// hull vector exactly once per `check` and maintains it incrementally
    /// afterwards, so this equals [`SolverStats::checks`] — the regression
    /// tests pin that invariant so per-probe rebuilds cannot creep back in.
    pub hull_rebuilds: u64,
    /// Wall-clock time spent inside `check`.
    pub solve_time: Duration,
    /// Portion of [`SolverStats::solve_time`] spent filtering domains
    /// (worklist propagation).
    pub propagation_time: Duration,
    /// Portion of [`SolverStats::solve_time`] spent in the search proper
    /// (branching, bound checks, backtracking) — `solve_time` minus
    /// propagation.
    pub search_time: Duration,
}

impl SolverStats {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = SolverStats::default();
    }

    /// Mean time per `check` call, or zero if none were made.
    pub fn mean_check_time(&self) -> Duration {
        if self.checks == 0 {
            Duration::ZERO
        } else {
            self.solve_time / self.checks as u32
        }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checks={} nodes={} propagations={} pruned={} backtracks={} \
             bound_prunes={} hull_rebuilds={} node_limit_hits={} \
             deadline_hits={} cancellations={} time={:?} \
             propagation_time={:?} search_time={:?}",
            self.checks,
            self.nodes,
            self.propagations,
            self.values_pruned,
            self.backtracks,
            self.bound_prunes,
            self.hull_rebuilds,
            self.node_limit_hits,
            self.deadline_hits,
            self.cancellations,
            self.solve_time,
            self.propagation_time,
            self.search_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_check_time_handles_zero_checks() {
        let s = SolverStats::default();
        assert_eq!(s.mean_check_time(), Duration::ZERO);
    }

    #[test]
    fn mean_check_time_divides() {
        let s = SolverStats {
            checks: 4,
            solve_time: Duration::from_millis(100),
            ..SolverStats::default()
        };
        assert_eq!(s.mean_check_time(), Duration::from_millis(25));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = SolverStats {
            checks: 1,
            nodes: 2,
            propagations: 3,
            values_pruned: 4,
            backtracks: 5,
            node_limit_hits: 6,
            deadline_hits: 7,
            cancellations: 8,
            bound_prunes: 9,
            hull_rebuilds: 10,
            solve_time: Duration::from_secs(1),
            propagation_time: Duration::from_millis(600),
            search_time: Duration::from_millis(400),
        };
        s.reset();
        assert_eq!(s, SolverStats::default());
    }

    #[test]
    fn display_is_nonempty() {
        let s = SolverStats::default();
        assert!(s.to_string().contains("checks=0"));
    }
}
