//! The solver's hot loop: trail-based depth-first search with worklist
//! propagation and objective-bound pruning.
//!
//! Three structural choices keep the per-node cost low (the naive engine
//! they replaced is retained verbatim in [`crate::reference`] for
//! differential testing):
//!
//! * **Trail-based undo** ([`crate::trail::Trail`]): a node saves only the
//!   domains it narrows instead of cloning the whole `Vec<Domain>`.
//! * **Worklist propagation**: interval hulls are maintained incrementally
//!   (updated when a domain changes, restored on backtrack) and an
//!   AC-3-style queue revisits only constraints watching a changed
//!   variable, instead of re-evaluating every constraint against freshly
//!   rebuilt hulls each round.
//! * **Objective-bound pruning**: when the search runs under an incumbent
//!   (branch-and-bound inside [`crate::Solver::maximize`]), any subtree
//!   whose interval upper bound on the objective cannot beat the incumbent
//!   is cut immediately.
//!
//! All three preserve exact results: propagation only removes values proven
//! inconsistent, the exhaustive search still visits every surviving
//! assignment, and bound pruning discards only subtrees the active
//! `OBJ > best` constraint would reject anyway.

use crate::domain::Domain;
use crate::expr::{BoolExpr, BoolNode, IntExpr, IntNode, VarId};
use crate::interval::Interval;
use crate::model::Model;
use crate::solver::{budget_stop, SolverConfig, StopReason};
use crate::stats::SolverStats;
use crate::trail::Trail;
use std::collections::VecDeque;
use std::time::Instant;

/// Three-valued verdict of interval constraint evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tri {
    True,
    False,
    Unknown,
}

/// Poll the clock/cancel flag every this many search nodes — often enough
/// that a 10 ms deadline is honoured promptly, rare enough that
/// `Instant::now` stays off the hot path.
const BUDGET_POLL_PERIOD: u64 = 64;

/// Domains larger than this are filtered by hull reasoning only; exact
/// per-value probing is reserved for small domains where it pays off.
const PROBE_LIMIT: usize = 4096;

/// An objective being maximized under an incumbent. The search treats
/// `objective > incumbent` as a *virtual constraint*: it sits in the
/// propagation worklist like an asserted constraint (filtering domain
/// values that cannot beat the incumbent), cuts whole subtrees whose
/// interval upper bound is `<= incumbent` at node entry, and is verified
/// exactly at every candidate leaf. This replaces the paper's growing
/// stack of asserted `OBJ > best` constraints with a single incumbent the
/// search tightens in place. `incumbent` is `None` until a first model is
/// found (the bound is inert then — any model improves on nothing).
pub(crate) struct ObjectiveBound<'a> {
    pub(crate) objective: &'a IntExpr,
    pub(crate) incumbent: Option<i64>,
}

/// Per-call search budget: node cap plus an absolute wall-clock deadline.
pub(crate) struct Budget {
    pub(crate) node_cap: u64,
    pub(crate) deadline_at: Option<Instant>,
}

/// What a [`Search`] is asked to do.
pub(crate) enum SearchMode<'a> {
    /// Find any satisfying assignment (plain `check`).
    Satisfy,
    /// Find an assignment beating a fixed incumbent (binary-search probe).
    Bounded(ObjectiveBound<'a>),
    /// Single-pass branch-and-bound maximization: improving leaves tighten
    /// the incumbent in place and the search continues to exhaustion.
    /// `floor`, when present, seeds the incumbent below a known-achievable
    /// objective value (warm start): every subtree that survives the seeded
    /// bound has hull upper bound `> floor`, so subtrees containing an
    /// optimum-valued leaf are never cut and the first optimum leaf found —
    /// the returned model — is identical to a cold search's. The seed only
    /// removes provably-suboptimal work.
    Optimize {
        objective: &'a IntExpr,
        floor: Option<i64>,
    },
}

/// One `check` call's worth of search state.
pub(crate) struct Search<'a> {
    names: &'a [String],
    constraints: &'a [(BoolExpr, Vec<VarId>)],
    config: &'a SolverConfig,
    stats: &'a mut SolverStats,
    /// Working copy of the variable domains (cloned once per check; all
    /// further narrowing goes through the trail).
    domains: Vec<Domain>,
    /// Interval hull of every domain, maintained incrementally: updated on
    /// narrowing, restored from the trailed domain on backtrack.
    hulls: Vec<Interval>,
    trail: Trail,
    /// Constraint indices watching each variable.
    watchers: Vec<Vec<u32>>,
    /// Dirty-constraint worklist plus its membership flags.
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    nodes_at_entry: u64,
    node_cap: u64,
    deadline_at: Option<Instant>,
    stop: Option<StopReason>,
    bound: Option<ObjectiveBound<'a>>,
    /// Variables of the bound objective (watch the virtual constraint).
    bound_vars: Vec<VarId>,
    /// Branch-and-bound mode: an improving leaf does not end the search —
    /// it becomes the new incumbent and the search continues, so one
    /// exhaustive pass proves optimality (no restart per improvement).
    optimize: bool,
    /// Best (objective value, assignment) found so far in optimize mode.
    best: Option<(i64, Vec<i64>)>,
    /// Number of incumbent improvements in optimize mode.
    improvements: u32,
    /// Set when an improving leaf was just recorded: the search unwinds
    /// to the root and re-dives under the tightened incumbent, so that
    /// bound filtering is applied *at the root* (where narrows are
    /// permanent) instead of being re-derived and popped per subtree.
    restart: bool,
}

impl<'a> Search<'a> {
    pub(crate) fn new(
        names: &'a [String],
        base_domains: &[Domain],
        constraints: &'a [(BoolExpr, Vec<VarId>)],
        config: &'a SolverConfig,
        stats: &'a mut SolverStats,
        budget: Budget,
        mode: SearchMode<'a>,
    ) -> Self {
        let Budget {
            node_cap,
            deadline_at,
        } = budget;
        let (bound, optimize) = match mode {
            SearchMode::Satisfy => (None, false),
            SearchMode::Bounded(b) => (Some(b), false),
            SearchMode::Optimize { objective, floor } => (
                Some(ObjectiveBound {
                    objective,
                    incumbent: floor,
                }),
                true,
            ),
        };
        let domains = base_domains.to_vec();
        // The only full O(V) hull construction in a check: every later
        // update is per-variable. `SolverStats::hull_rebuilds` counts these
        // so a regression back to per-round rebuilds is detectable.
        let hulls: Vec<Interval> = domains.iter().map(Domain::hull).collect();
        stats.hull_rebuilds += 1;
        let mut watchers = vec![Vec::new(); names.len()];
        for (ci, (_, vars)) in constraints.iter().enumerate() {
            for v in vars {
                watchers[v.index()].push(ci as u32);
            }
        }
        // The incumbent bound is a virtual constraint at index
        // `constraints.len()`: the objective's variables watch it so the
        // worklist revisits it like any asserted constraint.
        let mut bound_vars = Vec::new();
        if let Some(b) = &bound {
            b.objective.collect_vars(&mut bound_vars);
            for v in &bound_vars {
                watchers[v.index()].push(constraints.len() as u32);
            }
        }
        let nodes_at_entry = stats.nodes;
        Search {
            names,
            constraints,
            config,
            stats,
            domains,
            hulls,
            trail: Trail::new(names.len()),
            watchers,
            queue: VecDeque::with_capacity(constraints.len() + 1),
            in_queue: vec![false; constraints.len() + 1],
            nodes_at_entry,
            node_cap,
            deadline_at,
            stop: None,
            bound,
            bound_vars,
            optimize,
            best: None,
            improvements: 0,
            restart: false,
        }
    }

    /// Why the search stopped early, if it did.
    pub(crate) fn stop(&self) -> Option<StopReason> {
        self.stop
    }

    /// Best (value, assignment) found in optimize mode, consuming it.
    pub(crate) fn take_best(&mut self) -> Option<(i64, Vec<i64>)> {
        self.best.take()
    }

    /// Number of incumbent improvements recorded in optimize mode.
    pub(crate) fn improvements(&self) -> u32 {
        self.improvements
    }

    /// Runs the search to completion (or budget) and returns a satisfying
    /// assignment if one was found.
    pub(crate) fn run(&mut self) -> Option<Vec<i64>> {
        // Seed the worklist with every constraint (plus the virtual
        // incumbent bound): the root propagation must consider all once.
        for ci in 0..self.constraints.len() {
            self.enqueue(ci as u32);
        }
        if self.bound.is_some() {
            self.enqueue(self.constraints.len() as u32);
        }
        loop {
            let found = self.dfs();
            // Branch-and-bound re-dive: an improving leaf unwinds to the
            // root, where only the tightened incumbent bound needs
            // re-propagating (its filtering cascades through the
            // watchers, and root-level narrows are permanent — pruning
            // learned in earlier dives is never re-derived). Everything
            // else about the root state is already at fixpoint.
            if self.optimize && self.restart && self.stop.is_none() {
                self.restart = false;
                self.enqueue(self.constraints.len() as u32);
                continue;
            }
            return found;
        }
    }

    fn nodes_used(&self) -> u64 {
        self.stats.nodes - self.nodes_at_entry
    }

    /// Checks all budgets; sets [`Search::stop`] and returns `true` if
    /// any is exhausted. Node limit is exact; clock and cancellation are
    /// polled every [`BUDGET_POLL_PERIOD`] nodes.
    fn out_of_budget(&mut self) -> bool {
        if self.stop.is_some() {
            return true;
        }
        if self.nodes_used() >= self.node_cap {
            self.stop = Some(StopReason::NodeLimit);
            return true;
        }
        if self.nodes_used().is_multiple_of(BUDGET_POLL_PERIOD) {
            if let Some(reason) = budget_stop(self.deadline_at, self.config.cancel.as_ref()) {
                self.stop = Some(reason);
                return true;
            }
        }
        false
    }

    fn enqueue(&mut self, ci: u32) {
        if !self.in_queue[ci as usize] {
            self.in_queue[ci as usize] = true;
            self.queue.push_back(ci);
        }
    }

    fn enqueue_watchers(&mut self, var: usize) {
        for wi in 0..self.watchers[var].len() {
            let ci = self.watchers[var][wi];
            if !self.in_queue[ci as usize] {
                self.in_queue[ci as usize] = true;
                self.queue.push_back(ci);
            }
        }
    }

    fn clear_queue(&mut self) {
        while let Some(ci) = self.queue.pop_front() {
            self.in_queue[ci as usize] = false;
        }
    }

    /// Narrows `domains[var]` to `new`, through the trail, keeping the
    /// hull in sync and waking the variable's watchers.
    fn narrow(&mut self, var: usize, new: Domain) {
        self.trail.replace(var, &mut self.domains, new);
        self.hulls[var] = self.domains[var].hull();
        self.enqueue_watchers(var);
    }

    fn dfs(&mut self) -> Option<Vec<i64>> {
        // Branch-and-bound cut, before any propagation work: if the
        // interval upper bound of the objective over this subtree cannot
        // beat the incumbent, no leaf below can either. (The asserted
        // `OBJ > incumbent` constraint would also refute the subtree, but
        // only after paying for a propagation pass.)
        if let Some(b) = &self.bound {
            if let Some(incumbent) = b.incumbent {
                if bounds(b.objective, &self.hulls).hi() <= incumbent {
                    self.stats.bound_prunes += 1;
                    self.clear_queue();
                    return None;
                }
            }
        }
        if !self.propagate() {
            return None;
        }
        if let Some(values) = assignment_of(&self.domains) {
            // Every domain is a singleton; do a final exact check (interval
            // reasoning may have left some constraints undecided).
            let model = Model::new(values.clone(), self.names.to_vec());
            for (c, _) in self.constraints {
                match model.eval_bool(c) {
                    Ok(true) => {}
                    // Division by zero under this assignment: treat the
                    // candidate as violating, like Z3's total-function
                    // semantics never would satisfy our guarded uses.
                    Ok(false) | Err(_) => return None,
                }
            }
            // Exact strict-improvement check: the incumbent bound admits
            // only models that beat it, matching the semantics of the
            // paper's asserted `OBJ > best` constraint.
            if let Some(b) = &self.bound {
                let improves = match model.eval(b.objective) {
                    Ok(v) if b.incumbent.is_none_or(|inc| v > inc) => Some(v),
                    Ok(_) | Err(_) => None,
                };
                let Some(value) = improves else {
                    self.stats.bound_prunes += 1;
                    return None;
                };
                if self.optimize {
                    // Branch-and-bound: record the improvement, tighten
                    // the incumbent in place, and unwind to the root for
                    // a re-dive (see `run`) — exhausting a dive without
                    // an improvement is the optimality proof.
                    if let Some(b) = &mut self.bound {
                        b.incumbent = Some(value);
                    }
                    self.best = Some((value, values));
                    self.improvements += 1;
                    self.restart = true;
                    return None;
                }
            }
            return Some(values);
        }
        // Branch on the smallest non-singleton domain.
        let (var_idx, _) = self
            .domains
            .iter()
            .enumerate()
            .filter(|(_, d)| d.len() > 1)
            .min_by_key(|(_, d)| d.len())?;
        let candidates: Vec<i64> = if self.config.descending_values {
            self.domains[var_idx].iter().rev().collect()
        } else {
            self.domains[var_idx].iter().collect()
        };
        for value in candidates {
            if self.out_of_budget() {
                return None;
            }
            self.stats.nodes += 1;
            self.trail.push_level();
            self.narrow(var_idx, Domain::singleton(value));
            if let Some(values) = self.dfs() {
                return Some(values);
            }
            self.trail.pop_level(&mut self.domains, &mut self.hulls);
            self.stats.backtracks += 1;
            if self.stop.is_some() || self.restart {
                return None;
            }
        }
        None
    }

    /// Drains the dirty-constraint worklist to fixpoint (or the visit
    /// budget). Returns `false` on inconsistency, with the queue cleared.
    fn propagate(&mut self) -> bool {
        let started = Instant::now();
        // The visit budget mirrors the old engine's `rounds × constraints`
        // worst case; hitting it merely weakens pruning, never soundness.
        let mut visits_left = (self.config.max_propagation_rounds as u64)
            .saturating_mul(self.constraints.len().max(1) as u64);
        let ok = loop {
            let Some(ci) = self.queue.pop_front() else {
                break true;
            };
            self.in_queue[ci as usize] = false;
            if visits_left == 0 {
                // Budget exhausted: drop the remaining work. Sound — the
                // search below simply branches on less-filtered domains.
                self.clear_queue();
                break true;
            }
            visits_left -= 1;
            self.stats.propagations += 1;
            let consistent = if (ci as usize) == self.constraints.len() {
                self.revise_bound()
            } else {
                self.revise(ci as usize)
            };
            if !consistent {
                self.clear_queue();
                break false;
            }
        };
        self.stats.propagation_time += started.elapsed();
        ok
    }

    /// Revises one constraint: entailment check by hulls, then exact
    /// per-value probing of each small domain it watches. Returns `false`
    /// on a wiped-out domain or a disentailed constraint.
    fn revise(&mut self, ci: usize) -> bool {
        // Re-borrow the constraint slice at its own lifetime so the watched
        // variables stay readable while `self` is mutated below.
        let constraints: &'a [(BoolExpr, Vec<VarId>)] = self.constraints;
        let (constraint, vars) = &constraints[ci];
        match tri_bool(constraint, &self.hulls) {
            Tri::False => return false,
            Tri::True => return true,
            Tri::Unknown => {}
        }
        for &var in vars {
            let idx = var.index();
            let len = self.domains[idx].len();
            if len <= 1 || len > PROBE_LIMIT {
                continue;
            }
            // Probe each candidate by pinning this variable's hull to a
            // singleton *in place* — no `hulls.clone()` per variable.
            let saved_hull = self.hulls[idx];
            let mut kept: Vec<i64> = Vec::with_capacity(len);
            for v in self.domains[idx].iter() {
                self.hulls[idx] = Interval::singleton(v);
                if tri_bool(constraint, &self.hulls) != Tri::False {
                    kept.push(v);
                }
            }
            self.hulls[idx] = saved_hull;
            if kept.len() == len {
                continue;
            }
            self.stats.values_pruned += (len - kept.len()) as u64;
            if kept.is_empty() {
                return false;
            }
            // `kept` preserves the domain's sorted order.
            self.narrow(idx, Domain::from_values(kept));
        }
        true
    }

    /// Revises the virtual `objective > incumbent` constraint: refute the
    /// subtree when the hull upper bound cannot beat the incumbent, and
    /// probe the objective's variables to drop values that cannot either.
    /// Every refutation here is incumbent-driven, so it counts toward
    /// [`SolverStats::bound_prunes`].
    fn revise_bound(&mut self) -> bool {
        let Some(b) = &self.bound else { return true };
        let objective = b.objective;
        // No incumbent yet: the virtual constraint is inert.
        let Some(incumbent) = b.incumbent else {
            return true;
        };
        let hull = bounds(objective, &self.hulls);
        if hull.is_empty() || hull.hi() <= incumbent {
            self.stats.bound_prunes += 1;
            return false;
        }
        if hull.lo() > incumbent {
            return true; // Entailed: every assignment below improves.
        }
        for vi in 0..self.bound_vars.len() {
            let idx = self.bound_vars[vi].index();
            let len = self.domains[idx].len();
            if len <= 1 || len > PROBE_LIMIT {
                continue;
            }
            let saved_hull = self.hulls[idx];
            let mut kept: Vec<i64> = Vec::with_capacity(len);
            for v in self.domains[idx].iter() {
                self.hulls[idx] = Interval::singleton(v);
                if bounds(objective, &self.hulls).hi() > incumbent {
                    kept.push(v);
                }
            }
            self.hulls[idx] = saved_hull;
            if kept.len() == len {
                continue;
            }
            self.stats.values_pruned += (len - kept.len()) as u64;
            if kept.is_empty() {
                self.stats.bound_prunes += 1;
                return false;
            }
            self.narrow(idx, Domain::from_values(kept));
        }
        true
    }
}

pub(crate) fn assignment_of(domains: &[Domain]) -> Option<Vec<i64>> {
    domains.iter().map(Domain::as_singleton).collect()
}

/// Interval evaluation of an integer expression given per-variable hulls.
pub(crate) fn bounds(expr: &IntExpr, hulls: &[Interval]) -> Interval {
    match &*expr.0 {
        IntNode::Const(v) => Interval::singleton(*v),
        IntNode::Var(id, _) => hulls
            .get(id.index())
            .copied()
            .unwrap_or_else(Interval::top),
        IntNode::Add(xs) => xs
            .iter()
            .fold(Interval::singleton(0), |acc, x| acc + bounds(x, hulls)),
        IntNode::Mul(xs) => xs
            .iter()
            .fold(Interval::singleton(1), |acc, x| acc * bounds(x, hulls)),
        IntNode::Sub(a, b) => bounds(a, hulls) - bounds(b, hulls),
        IntNode::Neg(a) => -bounds(a, hulls),
        IntNode::Div(a, b) => bounds(a, hulls).div_euclid(bounds(b, hulls)),
        IntNode::Mod(a, b) => bounds(a, hulls).rem_euclid(bounds(b, hulls)),
        IntNode::Min(a, b) => bounds(a, hulls).min(bounds(b, hulls)),
        IntNode::Max(a, b) => bounds(a, hulls).max(bounds(b, hulls)),
    }
}

pub(crate) fn tri_cmp(op: crate::expr::CmpOp, a: Interval, b: Interval) -> Tri {
    use crate::expr::CmpOp::*;
    if a.is_empty() || b.is_empty() {
        return Tri::False;
    }
    match op {
        Le => {
            if a.hi() <= b.lo() {
                Tri::True
            } else if a.lo() > b.hi() {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Lt => {
            if a.hi() < b.lo() {
                Tri::True
            } else if a.lo() >= b.hi() {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Ge => tri_cmp(Le, b, a),
        Gt => tri_cmp(Lt, b, a),
        Eq => {
            if a.is_singleton() && b.is_singleton() && a.lo() == b.lo() {
                Tri::True
            } else if a.intersect(b).is_empty() {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Ne => match tri_cmp(Eq, a, b) {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        },
    }
}

/// Kleene three-valued evaluation of a constraint under interval hulls.
pub(crate) fn tri_bool(expr: &BoolExpr, hulls: &[Interval]) -> Tri {
    match &*expr.0 {
        BoolNode::True => Tri::True,
        BoolNode::False => Tri::False,
        BoolNode::Cmp(op, a, b) => tri_cmp(*op, bounds(a, hulls), bounds(b, hulls)),
        BoolNode::And(xs) => {
            let mut any_unknown = false;
            for x in xs {
                match tri_bool(x, hulls) {
                    Tri::False => return Tri::False,
                    Tri::Unknown => any_unknown = true,
                    Tri::True => {}
                }
            }
            if any_unknown {
                Tri::Unknown
            } else {
                Tri::True
            }
        }
        BoolNode::Or(xs) => {
            let mut any_unknown = false;
            for x in xs {
                match tri_bool(x, hulls) {
                    Tri::True => return Tri::True,
                    Tri::Unknown => any_unknown = true,
                    Tri::False => {}
                }
            }
            if any_unknown {
                Tri::Unknown
            } else {
                Tri::False
            }
        }
        BoolNode::Not(a) => match tri_bool(a, hulls) {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        },
        BoolNode::Implies(a, b) => match (tri_bool(a, hulls), tri_bool(b, hulls)) {
            (Tri::False, _) | (_, Tri::True) => Tri::True,
            (Tri::True, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        },
    }
}
