//! A from-scratch solver for *non-linear integer* constraint problems over
//! bounded variables — the stand-in for the Z3 SMT solver used by the EATSS
//! paper (CGO 2024, §IV-L).
//!
//! The EATSS tile-size formulations only ever involve a handful of integer
//! variables, each bounded by a small interval (tile sizes live in
//! `[1, T_P_B]` and are multiples of the warp-alignment factor), combined
//! with products, sums and comparisons. Over such *finite* domains a
//! propagation + depth-first branch-and-prune search is sound and complete,
//! so it finds exactly the same satisfiable assignments Z3 would.
//!
//! The solver mirrors the Z3 workflow the paper relies on:
//!
//! * build integer expressions ([`IntExpr`]) and boolean constraints
//!   ([`BoolExpr`]),
//! * [`Solver::assert`] constraints, [`Solver::check`] satisfiability and
//!   read back a [`Model`],
//! * use [`Solver::push`]/[`Solver::pop`] scopes to iteratively assert
//!   `OBJ > best` and re-solve — the exact §IV-L loop — via
//!   [`Solver::maximize`].
//!
//! # Examples
//!
//! Solving a miniature tile-size problem (a 2-D slice of the paper's matmul
//! formulation from §IV-A):
//!
//! ```
//! use eatss_smt::Solver;
//!
//! let mut s = Solver::new();
//! let ti = s.int_var("Ti", 1, 1024);
//! let tj = s.int_var("Tj", 1, 1024);
//! // Tile sizes are multiples of the warp-alignment factor (16).
//! s.assert(ti.modulo(16).eq_expr(0));
//! s.assert(tj.modulo(16).eq_expr(0));
//! // L1 capacity: Ti*Tj <= 4096 elements.
//! s.assert((ti.clone() * tj.clone()).le(4096));
//! // Maximize the parallelism term.
//! let outcome = s.maximize(&(ti.clone() * tj.clone()))?;
//! let model = outcome.model.expect("formulation is satisfiable");
//! assert_eq!(model.eval(&(ti * tj))?, 4096);
//! # Ok::<(), eatss_smt::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod expr;
mod interval;
mod model;
pub mod reference;
mod search;
mod smtlib;
mod solver;
mod stats;
mod trail;

pub use domain::Domain;
pub use expr::{BoolExpr, CmpOp, IntExpr, VarId};
pub use interval::Interval;
pub use model::Model;
pub use smtlib::to_smtlib;
pub use solver::{
    CancelToken, MaximizeOutcome, SolveError, SolveResult, Solver, SolverConfig, StopReason,
    WarmStart,
};
pub use stats::SolverStats;
