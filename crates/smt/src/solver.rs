//! The constraint solver's public API: variables, assertions, scopes, and
//! the paper's iterative maximization loop.
//!
//! The search itself lives in the `search` module (trail-based DFS with
//! worklist propagation and objective-bound pruning); the pre-rewrite
//! engine is retained in [`crate::reference`] for differential testing.

use crate::domain::Domain;
use crate::expr::{BoolExpr, IntExpr, VarId};
use crate::interval::Interval;
use crate::model::Model;
use crate::search::{bounds, Budget, ObjectiveBound, Search, SearchMode};
use crate::stats::SolverStats;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors reported by the solver and by model evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// An expression mentions a variable not registered with this solver.
    UnknownVariable(String),
    /// A `div` or `mod` divisor evaluated to zero.
    DivisionByZero,
    /// [`Solver::pop`] was called with no matching [`Solver::push`].
    PopWithoutPush,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::UnknownVariable(name) => {
                write!(f, "expression mentions unregistered variable `{name}`")
            }
            SolveError::DivisionByZero => write!(f, "division by zero during evaluation"),
            SolveError::PopWithoutPush => write!(f, "pop called without a matching push"),
        }
    }
}

impl Error for SolveError {}

/// Why a search stopped before exhausting the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The per-call node budget was exhausted.
    NodeLimit,
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was triggered from outside.
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::NodeLimit => write!(f, "node limit"),
            StopReason::Deadline => write!(f, "deadline"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A shareable flag that aborts an in-flight search cooperatively.
///
/// Clone the token, hand one copy to [`SolverConfig::cancel`], and call
/// [`CancelToken::cancel`] from another thread (or a signal handler) to
/// stop the search at the next budget checkpoint. The solver reports the
/// interruption as `complete = false` with [`StopReason::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation of every search holding this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Tunable limits for the search.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum search-tree nodes per `check` call before giving up
    /// (`complete = false` in the result).
    pub node_limit: u64,
    /// Wall-clock budget. For a plain [`Solver::check`] it bounds that
    /// call; for [`Solver::maximize`] / [`Solver::minimize`] /
    /// [`Solver::maximize_binary`] it bounds the *whole* optimization
    /// loop, which then returns its best-so-far model with
    /// `complete = false` (anytime solving). [`Solver::enumerate`] is
    /// likewise bounded as a whole.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation flag, checked at the same cadence as the
    /// deadline.
    pub cancel: Option<CancelToken>,
    /// Propagation budget per search node, measured in constraint visits
    /// relative to a full pass (the worklist engine stops filtering after
    /// `max_propagation_rounds × constraints` visits — weaker pruning,
    /// never unsoundness).
    pub max_propagation_rounds: u32,
    /// Try larger values first (helps the maximization loop converge in
    /// few iterations, like Z3's default behaviour on these formulations).
    pub descending_values: bool,
}

impl PartialEq for SolverConfig {
    fn eq(&self, other: &Self) -> bool {
        let token_eq = match (&self.cancel, &other.cancel) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(&a.0, &b.0),
            _ => false,
        };
        self.node_limit == other.node_limit
            && self.deadline == other.deadline
            && token_eq
            && self.max_propagation_rounds == other.max_propagation_rounds
            && self.descending_values == other.descending_values
    }
}

impl Eq for SolverConfig {}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            node_limit: 2_000_000,
            deadline: None,
            cancel: None,
            max_propagation_rounds: 16,
            descending_values: true,
        }
    }
}

/// Result of a [`Solver::check`] call.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// A satisfying assignment, if one was found.
    pub model: Option<Model>,
    /// `true` if the search was exhaustive: a `None` model then proves
    /// unsatisfiability. `false` means a budget was exhausted (see
    /// [`SolveResult::stop`]).
    pub complete: bool,
    /// Why the search stopped early, when `complete` is `false`.
    pub stop: Option<StopReason>,
}

/// Result of a [`Solver::maximize`] call.
#[derive(Debug, Clone)]
pub struct MaximizeOutcome {
    /// The best model found (none if the constraints are unsatisfiable).
    pub model: Option<Model>,
    /// Objective value of [`MaximizeOutcome::model`].
    pub best: Option<i64>,
    /// Number of `check` calls performed by the §IV-L loop.
    pub solver_calls: u32,
    /// Whether optimality was proved (final `check` was exhaustive-unsat).
    pub optimal: bool,
    /// `true` if no budget interrupted the loop. `false` means the
    /// outcome is *anytime*: the model (if any) is feasible but possibly
    /// suboptimal, and a `None` model does not prove unsatisfiability.
    pub complete: bool,
    /// Why the loop stopped early, when `complete` is `false`.
    pub stop: Option<StopReason>,
}

/// Reusable warm-start state for [`Solver::maximize_warm`]: the models of
/// previous maximizations over *structurally similar* formulations (e.g.
/// the sweep points of one kernel, which share every constraint except
/// tile bounds).
///
/// A hint is only ever used after being re-validated against the current
/// formulation — each hinted value must lie in its variable's base domain
/// and the full assignment must satisfy every asserted constraint exactly
/// (via [`Model::eval_bool`]). A feasible hint with objective value `v`
/// proves `v` is achievable, so the branch-and-bound incumbent can start
/// at `v - 1` instead of at "nothing yet": subtrees whose objective hull
/// cannot exceed `v - 1` are cut before any propagation is paid for.
/// Because `v ≤ optimum`, no subtree containing an optimum-valued leaf is
/// ever cut, and the deterministic DFS reaches the same first optimum
/// leaf as a cold search — warm starting changes how much work is pruned,
/// never the returned model, optimum, or verdict. Stale, foreign, or
/// infeasible hints are silently skipped, so sharing one handle across
/// threads (even racily snapshotted) is sound.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// Most-recent-last ring of full variable assignments, stored by name
    /// so they survive re-built solvers with the same variable layout.
    hints: Vec<Vec<(String, i64)>>,
}

impl WarmStart {
    /// Hints retained; older ones are evicted first.
    pub const MAX_HINTS: usize = 8;

    /// An empty handle (the first maximize through it runs cold).
    pub fn new() -> Self {
        WarmStart::default()
    }

    /// Records a solved model as a hint for future maximizations.
    /// Duplicate assignments are not stored twice.
    pub fn observe(&mut self, model: &Model) {
        let bindings: Vec<(String, i64)> = model
            .bindings()
            .map(|(n, v)| (n.to_owned(), v))
            .collect();
        if self.hints.contains(&bindings) {
            return;
        }
        if self.hints.len() == Self::MAX_HINTS {
            self.hints.remove(0);
        }
        self.hints.push(bindings);
    }

    /// Number of retained hints.
    pub fn len(&self) -> usize {
        self.hints.len()
    }

    /// Whether no hints are retained.
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
    }
}

/// A finite-domain non-linear integer constraint solver.
///
/// See the [crate docs](crate) for the role this plays in the EATSS
/// reproduction and a worked example.
#[derive(Debug)]
pub struct Solver {
    names: Vec<String>,
    base_domains: Vec<Domain>,
    constraints: Vec<(BoolExpr, Vec<VarId>)>,
    scopes: Vec<usize>,
    stats: SolverStats,
    config: SolverConfig,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with default limits.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with explicit limits.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            names: Vec::new(),
            base_domains: Vec::new(),
            constraints: Vec::new(),
            scopes: Vec::new(),
            stats: SolverStats::default(),
            config,
        }
    }

    /// Registers an integer variable ranging over `[lo, hi]` and returns an
    /// expression handle for it.
    ///
    /// An inverted range (`lo > hi`) yields an empty domain, making the
    /// whole problem unsatisfiable — mirroring Z3's behaviour when bounds
    /// conflict.
    pub fn int_var(&mut self, name: &str, lo: i64, hi: i64) -> IntExpr {
        self.int_var_in(name, Domain::range(lo, hi))
    }

    /// Registers an integer variable with an explicit candidate set.
    pub fn int_var_in(&mut self, name: &str, domain: Domain) -> IntExpr {
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.base_domains.push(domain);
        IntExpr::var(id, name)
    }

    /// Number of registered variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Adds a constraint to the current scope.
    pub fn assert(&mut self, constraint: BoolExpr) {
        let mut vars = Vec::new();
        constraint.collect_vars(&mut vars);
        self.constraints.push((constraint, vars));
    }

    /// Opens a backtracking scope ([`Solver::pop`] removes constraints
    /// asserted after the matching `push`).
    pub fn push(&mut self) {
        self.scopes.push(self.constraints.len());
    }

    /// Closes the most recent scope.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::PopWithoutPush`] if no scope is open.
    pub fn pop(&mut self) -> Result<(), SolveError> {
        let mark = self.scopes.pop().ok_or(SolveError::PopWithoutPush)?;
        self.constraints.truncate(mark);
        Ok(())
    }

    /// Accumulated search statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// The active limits.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Replaces the limits for subsequent calls.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config;
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The constraints currently asserted, in assertion order.
    pub fn assertions(&self) -> impl Iterator<Item = &BoolExpr> + '_ {
        self.constraints.iter().map(|(c, _)| c)
    }

    /// Registered variable names in registration order.
    pub fn var_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.names.iter().map(String::as_str)
    }

    /// Domain of a registered variable, if `var` belongs to this solver.
    pub fn domain_of(&self, var: VarId) -> Option<&Domain> {
        self.base_domains.get(var.index())
    }

    pub(crate) fn names(&self) -> &[String] {
        &self.names
    }

    pub(crate) fn base_domains(&self) -> &[Domain] {
        &self.base_domains
    }

    pub(crate) fn constraint_entries(&self) -> &[(BoolExpr, Vec<VarId>)] {
        &self.constraints
    }

    pub(crate) fn validate(&self) -> Result<(), SolveError> {
        for (c, vars) in &self.constraints {
            for v in vars {
                if v.index() >= self.names.len() {
                    return Err(SolveError::UnknownVariable(format!(
                        "var#{} in `{}`",
                        v.index(),
                        c
                    )));
                }
            }
        }
        Ok(())
    }

    /// Interval-evaluates an integer expression under the variables'
    /// base domains — a sound (possibly loose) bound on its value over
    /// the whole space, useful as the `hi` hint for
    /// [`Solver::maximize_binary`].
    pub fn hull_bounds(&self, expr: &IntExpr) -> Interval {
        let hulls: Vec<Interval> = self.base_domains.iter().map(Domain::hull).collect();
        bounds(expr, &hulls)
    }

    /// Decides satisfiability of the asserted constraints.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::UnknownVariable`] if a constraint references a
    /// variable from another solver.
    pub fn check(&mut self) -> Result<SolveResult, SolveError> {
        let deadline_at = self.config.deadline.map(|d| Instant::now() + d);
        self.check_inner(deadline_at, self.config.node_limit, SearchMode::Satisfy)
    }

    /// [`Solver::check`] against an absolute deadline, an explicit node
    /// budget, and an optional branch-and-bound incumbent. The optimization
    /// loops compute the deadline once at entry so the budget is global
    /// across all their `check` calls; [`Solver::enumerate`] additionally
    /// shrinks the node budget as models are found.
    fn check_inner(
        &mut self,
        deadline_at: Option<Instant>,
        node_cap: u64,
        mode: SearchMode<'_>,
    ) -> Result<SolveResult, SolveError> {
        self.validate()?;
        let mut span = eatss_trace::span("smt", "check");
        let stats_before = if span.is_active() { Some(self.stats.clone()) } else { None };
        let started = Instant::now();
        self.stats.checks += 1;
        if let Some(reason) = budget_stop(deadline_at, self.config.cancel.as_ref()) {
            self.record_stop(reason);
            self.stats.solve_time += started.elapsed();
            finish_solver_span(&mut span, stats_before.as_ref(), &self.stats, Some(reason), false);
            return Ok(SolveResult {
                model: None,
                complete: false,
                stop: Some(reason),
            });
        }
        let propagation_before = self.stats.propagation_time;
        let mut search = Search::new(
            &self.names,
            &self.base_domains,
            &self.constraints,
            &self.config,
            &mut self.stats,
            Budget {
                node_cap,
                deadline_at,
            },
            mode,
        );
        let found = search.run();
        let stop = search.stop();
        if let Some(reason) = stop {
            self.record_stop(reason);
        }
        let model = found.map(|values| Model::new(values, self.names.clone()));
        let elapsed = started.elapsed();
        self.stats.solve_time += elapsed;
        let propagation_delta = self
            .stats
            .propagation_time
            .saturating_sub(propagation_before);
        self.stats.search_time += elapsed.saturating_sub(propagation_delta);
        finish_solver_span(&mut span, stats_before.as_ref(), &self.stats, stop, model.is_some());
        Ok(SolveResult {
            model,
            complete: stop.is_none(),
            stop,
        })
    }

    fn record_stop(&mut self, reason: StopReason) {
        match reason {
            StopReason::NodeLimit => self.stats.node_limit_hits += 1,
            StopReason::Deadline => self.stats.deadline_hits += 1,
            StopReason::Cancelled => self.stats.cancellations += 1,
        }
    }

    /// Maximizes `objective` with the paper's §IV-L improvement semantics
    /// upgraded to single-pass branch-and-bound: one exhaustive search in
    /// which every improving leaf becomes the new *incumbent* and the
    /// search continues, so exhausting the tree proves optimality without
    /// restarting a `check` per improvement (no repeated hull builds or
    /// root propagations). Inside the search the incumbent acts as a
    /// virtual `objective > best` constraint — it filters domain values in
    /// propagation, cuts subtrees whose interval upper bound cannot beat
    /// it before any propagation is paid for (counted in
    /// [`SolverStats::bound_prunes`]), and is verified exactly at every
    /// candidate leaf. Optima are identical to the paper's
    /// asserted-constraint loop (the retained [`crate::reference`] engine);
    /// [`MaximizeOutcome::solver_calls`] reports `improvements + 1`, the
    /// number of `check` calls the §IV-L loop would have made.
    ///
    /// # Errors
    ///
    /// Propagates [`Solver::check`] errors.
    pub fn maximize(&mut self, objective: &IntExpr) -> Result<MaximizeOutcome, SolveError> {
        self.maximize_impl(objective, None)
    }

    /// [`Solver::maximize`] seeded from previous solutions of structurally
    /// similar formulations. Each hint in `warm` is re-validated against
    /// *this* solver's base domains and asserted constraints; the best
    /// feasible hint value `v` seeds the branch-and-bound incumbent at
    /// `v - 1`, so the search starts with the pruning power a cold run
    /// only earns after climbing to `v` itself. Results are identical to
    /// a cold [`Solver::maximize`] — same model, same optimum, same
    /// verdict (see [`WarmStart`] for the argument) — only
    /// [`MaximizeOutcome::solver_calls`] (improvements actually taken) and
    /// the work counters shrink. Hints used/validated are counted in
    /// [`SolverStats::warm_seeds`] / [`SolverStats::warm_cut_hits`].
    ///
    /// On success the returned model is *not* auto-recorded; call
    /// [`WarmStart::observe`] with it to extend the hint set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Solver::maximize`].
    pub fn maximize_warm(
        &mut self,
        objective: &IntExpr,
        warm: &WarmStart,
    ) -> Result<MaximizeOutcome, SolveError> {
        self.validate()?;
        let floor = self.warm_floor(objective, warm);
        self.maximize_impl(objective, floor)
    }

    /// Best feasible hint value minus one, or `None` when no hint survives
    /// re-validation. Hints missing a variable of this solver, binding a
    /// value outside its base domain, violating any asserted constraint,
    /// or failing to evaluate are skipped — never trusted.
    fn warm_floor(&mut self, objective: &IntExpr, warm: &WarmStart) -> Option<i64> {
        let mut best: Option<i64> = None;
        let mut hits = 0u64;
        'hints: for hint in &warm.hints {
            let mut values = Vec::with_capacity(self.names.len());
            for (name, domain) in self.names.iter().zip(&self.base_domains) {
                let Some(&(_, v)) = hint.iter().find(|(n, _)| n == name) else {
                    continue 'hints;
                };
                if !domain.contains(v) {
                    continue 'hints;
                }
                values.push(v);
            }
            let model = Model::new(values, self.names.clone());
            for (c, _) in &self.constraints {
                if !matches!(model.eval_bool(c), Ok(true)) {
                    continue 'hints;
                }
            }
            let Ok(v) = model.eval(objective) else {
                continue 'hints;
            };
            hits += 1;
            best = Some(best.map_or(v, |b: i64| b.max(v)));
        }
        self.stats.warm_cut_hits += hits;
        let floor = best.map(|v| v.saturating_sub(1));
        if floor.is_some() {
            self.stats.warm_seeds += 1;
        }
        floor
    }

    fn maximize_impl(
        &mut self,
        objective: &IntExpr,
        floor: Option<i64>,
    ) -> Result<MaximizeOutcome, SolveError> {
        self.validate()?;
        let mut span = eatss_trace::span("smt", "maximize");
        let stats_before = if span.is_active() { Some(self.stats.clone()) } else { None };
        if span.is_active() {
            if let Some(f) = floor {
                span.arg("warm_floor", f);
            }
        }
        let deadline_at = self.config.deadline.map(|d| Instant::now() + d);
        let started = Instant::now();
        self.stats.checks += 1;
        if let Some(reason) = budget_stop(deadline_at, self.config.cancel.as_ref()) {
            self.record_stop(reason);
            self.stats.solve_time += started.elapsed();
            finish_solver_span(&mut span, stats_before.as_ref(), &self.stats, Some(reason), false);
            return Ok(MaximizeOutcome {
                model: None,
                best: None,
                solver_calls: 1,
                optimal: false,
                complete: false,
                stop: Some(reason),
            });
        }
        let propagation_before = self.stats.propagation_time;
        let mut search = Search::new(
            &self.names,
            &self.base_domains,
            &self.constraints,
            &self.config,
            &mut self.stats,
            Budget {
                node_cap: self.config.node_limit,
                deadline_at,
            },
            SearchMode::Optimize { objective, floor },
        );
        // In optimize mode the search never returns from `run` with a
        // model — improving leaves are recorded and the search continues.
        let none = search.run();
        debug_assert!(none.is_none());
        let best = search.take_best();
        let improvements = search.improvements();
        let stop = search.stop();
        if let Some(reason) = stop {
            self.record_stop(reason);
        }
        let elapsed = started.elapsed();
        eatss_trace::histogram("smt.maximize_us").record(elapsed.as_micros() as u64);
        self.stats.solve_time += elapsed;
        let propagation_delta = self
            .stats
            .propagation_time
            .saturating_sub(propagation_before);
        self.stats.search_time += elapsed.saturating_sub(propagation_delta);
        let (best_value, model) = match best {
            Some((v, values)) => (Some(v), Some(Model::new(values, self.names.clone()))),
            None => (None, None),
        };
        finish_solver_span(&mut span, stats_before.as_ref(), &self.stats, stop, model.is_some());
        if span.is_active() {
            if let Some(v) = best_value {
                span.arg("best", v);
            }
            span.arg("solver_calls", improvements + 1);
        }
        Ok(MaximizeOutcome {
            model,
            best: best_value,
            solver_calls: improvements + 1,
            optimal: stop.is_none(),
            complete: stop.is_none(),
            stop,
        })
    }

    /// Maximizes `objective` by binary search over its value range instead
    /// of the paper's linear `OBJ > best` loop — an extension that needs
    /// `O(log range)` solver calls. Produces the same optimum as
    /// [`Solver::maximize`]; exposed so the ablation benches can compare
    /// the two strategies (§V-G discusses solver-call counts). Each probe
    /// also prunes by its own bound (subtrees that cannot exceed the
    /// probed midpoint).
    ///
    /// `hi` must be an upper bound on the objective over the feasible
    /// space (e.g. from interval arithmetic); values above it are never
    /// probed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Solver::maximize`].
    pub fn maximize_binary(
        &mut self,
        objective: &IntExpr,
        hi: i64,
    ) -> Result<MaximizeOutcome, SolveError> {
        // The inner `check` calls carry the counter deltas into the
        // registry; this outer span only groups the probes.
        let mut span = eatss_trace::span("smt", "maximize_binary");
        let deadline_at = self.config.deadline.map(|d| Instant::now() + d);
        let mut calls = 0u32;
        // First find any model to anchor the lower bound.
        let first = self.check_inner(deadline_at, self.config.node_limit, SearchMode::Satisfy)?;
        calls += 1;
        let Some(first_model) = first.model else {
            span.arg("solver_calls", calls);
            span.arg("sat", false);
            return Ok(MaximizeOutcome {
                model: None,
                best: None,
                solver_calls: calls,
                optimal: first.complete,
                complete: first.stop.is_none(),
                stop: first.stop,
            });
        };
        let mut best_value = first_model.eval(objective)?;
        let mut best_model = first_model;
        let mut stop: Option<StopReason> = None;
        let mut lo = best_value; // known achievable
        let mut hi = hi.max(lo);
        while lo < hi {
            if let Some(reason) = budget_stop(deadline_at, self.config.cancel.as_ref()) {
                self.record_stop(reason);
                stop = Some(reason);
                break;
            }
            // Probe the upper half: is there a model with value > mid?
            // The incumbent bound enforces strict improvement over `mid`
            // inside the search (propagation filtering plus an exact leaf
            // check), so no `objective > mid` assertion needs pushing.
            let mid = lo + (hi - lo) / 2;
            let bound = SearchMode::Bounded(ObjectiveBound {
                objective,
                incumbent: Some(mid),
            });
            let result = self.check_inner(deadline_at, self.config.node_limit, bound)?;
            calls += 1;
            match result.model {
                Some(model) => {
                    let value = model.eval(objective)?;
                    best_value = value.max(best_value);
                    best_model = model;
                    lo = best_value;
                }
                None => {
                    // The half is treated as empty either way; an
                    // interrupted probe just forfeits the optimality proof.
                    stop = stop.or(result.stop);
                    hi = mid;
                }
            }
        }
        span.arg("solver_calls", calls);
        span.arg("sat", true);
        span.arg("best", best_value);
        Ok(MaximizeOutcome {
            model: Some(best_model),
            best: Some(best_value),
            solver_calls: calls,
            optimal: stop.is_none(),
            complete: stop.is_none(),
            stop,
        })
    }

    /// Minimizes `objective` (implemented as maximization of its negation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Solver::maximize`].
    pub fn minimize(&mut self, objective: &IntExpr) -> Result<MaximizeOutcome, SolveError> {
        let neg = -objective.clone();
        let mut outcome = self.maximize(&neg)?;
        outcome.best = outcome.best.map(|v| -v);
        Ok(outcome)
    }

    /// Enumerates up to `max_models` distinct satisfying assignments by
    /// adding blocking clauses. Intended for tests and small spaces.
    ///
    /// Blocking clauses range over the variables actually mentioned by the
    /// asserted constraints, so models are distinct *projections onto the
    /// constrained variables* — an unconstrained auxiliary variable no
    /// longer multiplies the model count (or the clause size) by its domain
    /// size. When no variable is constrained at all, every variable counts,
    /// preserving full cross-product enumeration.
    ///
    /// Enumeration is anytime like `check`/`maximize`: the node budget and
    /// deadline apply to the whole enumeration, and the models found before
    /// a budget ran out are returned.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Solver::check`].
    pub fn enumerate(&mut self, max_models: usize) -> Result<Vec<Model>, SolveError> {
        let deadline_at = self.config.deadline.map(|d| Instant::now() + d);
        let nodes_at_entry = self.stats.nodes;
        // The blocking-clause support set: variables constrained *before*
        // enumeration begins (blocking clauses added below never widen it).
        let mut constrained = vec![false; self.names.len()];
        for (_, vars) in &self.constraints {
            for v in vars {
                if let Some(flag) = constrained.get_mut(v.index()) {
                    *flag = true;
                }
            }
        }
        let targets: Vec<usize> = if constrained.iter().any(|&c| c) {
            (0..self.names.len()).filter(|&i| constrained[i]).collect()
        } else {
            (0..self.names.len()).collect()
        };
        self.push();
        let mut models = Vec::new();
        while models.len() < max_models {
            let used = self.stats.nodes - nodes_at_entry;
            let Some(remaining) = self.config.node_limit.checked_sub(used).filter(|&r| r > 0)
            else {
                self.record_stop(StopReason::NodeLimit);
                break;
            };
            let result = match self.check_inner(deadline_at, remaining, SearchMode::Satisfy) {
                Ok(r) => r,
                Err(e) => {
                    self.pop()?;
                    return Err(e);
                }
            };
            let Some(model) = result.model else { break };
            let blocking = BoolExpr::any(targets.iter().map(|&i| {
                let id = VarId(i as u32);
                let var = IntExpr::var(id, &self.names[i]);
                let v = model.value_of(id).expect("model covers all vars");
                var.ne_expr(v)
            }));
            models.push(model);
            self.assert(blocking);
        }
        self.pop()?;
        Ok(models)
    }
}

/// Attaches the per-call [`SolverStats`] delta to a solver span and flows
/// it into the trace metrics registry. `before` is `None` (and everything
/// is skipped) when the span was created with collection disabled, so the
/// untraced hot path pays nothing beyond one atomic load.
fn finish_solver_span(
    span: &mut eatss_trace::Span,
    before: Option<&SolverStats>,
    after: &SolverStats,
    stop: Option<StopReason>,
    sat: bool,
) {
    let Some(before) = before else { return };
    let delta = after.delta_since(before);
    delta.flow_to_registry();
    span.arg("nodes", delta.nodes);
    span.arg("propagations", delta.propagations);
    span.arg("values_pruned", delta.values_pruned);
    span.arg("backtracks", delta.backtracks);
    span.arg("bound_prunes", delta.bound_prunes);
    span.arg("hull_rebuilds", delta.hull_rebuilds);
    span.arg("propagation_us", delta.propagation_time.as_micros() as u64);
    span.arg("search_us", delta.search_time.as_micros() as u64);
    span.arg("sat", sat);
    span.arg("complete", stop.is_none());
    if let Some(reason) = stop {
        span.arg("stop", reason.to_string());
    }
}

/// Polls the external budgets (cancellation wins over deadline).
pub(crate) fn budget_stop(
    deadline_at: Option<Instant>,
    cancel: Option<&CancelToken>,
) -> Option<StopReason> {
    if cancel.is_some_and(CancelToken::is_cancelled) {
        return Some(StopReason::Cancelled);
    }
    if deadline_at.is_some_and(|at| Instant::now() >= at) {
        return Some(StopReason::Deadline);
    }
    None
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 10);
        s.assert(x.ge(5));
        let r = s.check().unwrap();
        assert!(r.complete);
        let m = r.model.unwrap();
        assert!(m.value_of_name("x").unwrap() >= 5);

        s.assert(x.lt(5));
        let r = s.check().unwrap();
        assert!(r.complete);
        assert!(r.model.is_none());
    }

    #[test]
    fn empty_domain_is_unsat() {
        let mut s = Solver::new();
        let _ = s.int_var("x", 10, 1);
        let r = s.check().unwrap();
        assert!(r.model.is_none());
        assert!(r.complete);
    }

    #[test]
    fn nonlinear_product_constraint() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 100);
        let y = s.int_var("y", 1, 100);
        s.assert((x.clone() * y.clone()).eq_expr(91)); // 7 * 13
        s.assert(x.gt(1));
        s.assert(x.lt(y.clone()));
        let m = s.check().unwrap().model.unwrap();
        assert_eq!(m.value_of_name("x"), Some(7));
        assert_eq!(m.value_of_name("y"), Some(13));
    }

    #[test]
    fn divisibility_constraints() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 64);
        s.assert(x.modulo(16).eq_expr(0));
        s.assert(x.modulo(3).eq_expr(0));
        let m = s.check().unwrap().model.unwrap();
        assert_eq!(m.value_of_name("x"), Some(48));
    }

    #[test]
    fn maximize_follows_paper_loop() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 64);
        let y = s.int_var("y", 1, 64);
        s.assert((x.clone() * y.clone()).le(100));
        let obj = x.clone() + y.clone();
        let out = s.maximize(&obj).unwrap();
        assert!(out.optimal);
        // Best of x + y with x*y <= 100 and x,y in [1,64]: x=1, y=64 -> 65.
        assert_eq!(out.best, Some(65));
        assert!(out.solver_calls >= 2, "at least one improve + final unsat");
        // The scope was popped: the original problem is still satisfiable.
        assert!(s.check().unwrap().model.is_some());
    }

    #[test]
    fn maximize_unsat_returns_no_model() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 10);
        s.assert(x.gt(20));
        let out = s.maximize(&x).unwrap();
        assert!(out.model.is_none());
        assert_eq!(out.best, None);
        assert_eq!(out.solver_calls, 1);
        assert!(out.optimal);
    }

    #[test]
    fn minimize_negates_correctly() {
        let mut s = Solver::new();
        let x = s.int_var("x", 3, 10);
        let out = s.minimize(&x).unwrap();
        assert_eq!(out.best, Some(3));
    }

    #[test]
    fn paper_matmul_example_formulation() {
        // §IV-A: maximize Ti*Tj + (2*16*Tj) subject to the GA100 FP64
        // constraints with a 50% split and WARP_ALIGNMENT_FACTOR = 16:
        //   Bsize*3*2 <= 64K, Ti*Tj + Tk*Tj <= 12288, Ti*Tk <= 12288.
        // The paper reports the solution Ti=16, Tj=384, Tk=16.
        let mut s = Solver::new();
        let cap = 12_288; // 96 KiB / 8 bytes (FP64 elements)
        let ti = s.int_var("Ti", 1, 1024);
        let tj = s.int_var("Tj", 1, 1024);
        let tk = s.int_var("Tk", 1, 1024);
        for t in [&ti, &tj, &tk] {
            s.assert(t.modulo(16).eq_expr(0));
        }
        let bsize = ti.clone() * tj.clone();
        s.assert((bsize.clone() * IntExpr::constant(3) * IntExpr::constant(2)).le(65_536));
        s.assert((ti.clone() * tj.clone() + tk.clone() * tj.clone()).le(cap));
        s.assert((ti.clone() * tk.clone()).le(cap));
        let obj = bsize + IntExpr::constant(2 * 16) * tj.clone();
        let out = s.maximize(&obj).unwrap();
        assert!(out.optimal);
        let m = out.model.unwrap();
        let (i, j, k) = (
            m.value_of_name("Ti").unwrap(),
            m.value_of_name("Tj").unwrap(),
            m.value_of_name("Tk").unwrap(),
        );
        // Optimality: the paper's solution value is a lower bound on ours.
        let paper = 16 * 384 + 32 * 384;
        assert!(out.best.unwrap() >= paper, "found {i},{j},{k}");
        // And our solution must satisfy all constraints.
        assert!(i * j + k * j <= cap && i * k <= cap);
        assert_eq!(out.best.unwrap(), i * j + 32 * j);
    }

    #[test]
    fn push_pop_scopes() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        s.assert(x.ge(1));
        s.push();
        s.assert(x.le(0));
        assert!(s.check().unwrap().model.is_none());
        s.pop().unwrap();
        assert!(s.check().unwrap().model.is_some());
        assert!(matches!(s.pop(), Err(SolveError::PopWithoutPush)));
    }

    #[test]
    fn enumerate_finds_all_models() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 3);
        let y = s.int_var("y", 1, 3);
        s.assert(x.lt(y.clone()));
        let models = s.enumerate(100).unwrap();
        // (1,2), (1,3), (2,3)
        assert_eq!(models.len(), 3);
        // Enumeration must not leave blocking clauses behind.
        assert!(s.check().unwrap().model.is_some());
    }

    #[test]
    fn node_limit_reports_incomplete() {
        let mut s = Solver::with_config(SolverConfig {
            node_limit: 0,
            ..SolverConfig::default()
        });
        let x = s.int_var("x", 1, 1000);
        let y = s.int_var("y", 1, 1000);
        // Interval propagation cannot decide this (the mod image always
        // contains 3 while either variable is non-singleton), so the solver
        // must branch — which the zero node budget forbids.
        s.assert(
            (x.clone() * IntExpr::constant(31) + y.clone() * IntExpr::constant(17))
                .modulo(97)
                .eq_expr(3),
        );
        let r = s.check().unwrap();
        assert!(r.model.is_none());
        assert!(!r.complete, "limit must be reported as incomplete");
        assert_eq!(r.stop, Some(StopReason::NodeLimit));
        assert_eq!(s.stats().node_limit_hits, 1);
    }

    #[test]
    fn zero_deadline_reports_deadline_stop() {
        let mut s = Solver::with_config(SolverConfig {
            deadline: Some(Duration::ZERO),
            ..SolverConfig::default()
        });
        let x = s.int_var("x", 1, 10);
        s.assert(x.ge(1));
        let r = s.check().unwrap();
        assert!(!r.complete);
        assert_eq!(r.stop, Some(StopReason::Deadline));
        assert_eq!(s.stats().deadline_hits, 1);
        // An expired budget proves nothing: the problem is satisfiable.
        s.set_config(SolverConfig::default());
        assert!(s.check().unwrap().model.is_some());
    }

    #[test]
    fn cancelled_token_stops_check() {
        let token = CancelToken::new();
        token.cancel();
        let mut s = Solver::with_config(SolverConfig {
            cancel: Some(token),
            ..SolverConfig::default()
        });
        let x = s.int_var("x", 1, 10);
        s.assert(x.ge(1));
        let r = s.check().unwrap();
        assert!(r.model.is_none());
        assert!(!r.complete);
        assert_eq!(r.stop, Some(StopReason::Cancelled));
        assert_eq!(s.stats().cancellations, 1);
    }

    /// Builds the §IV-A matmul formulation with a configurable
    /// warp-alignment factor (smaller factor → larger search space).
    fn matmul_formulation(config: SolverConfig, waf: i64) -> (Solver, IntExpr) {
        let mut s = Solver::with_config(config);
        let cap = 12_288;
        let ti = s.int_var("Ti", 1, 1024);
        let tj = s.int_var("Tj", 1, 1024);
        let tk = s.int_var("Tk", 1, 1024);
        for t in [&ti, &tj, &tk] {
            s.assert(t.modulo(waf).eq_expr(0));
        }
        let bsize = ti.clone() * tj.clone();
        s.assert((bsize.clone() * IntExpr::constant(3) * IntExpr::constant(2)).le(65_536));
        s.assert((ti.clone() * tj.clone() + tk.clone() * tj.clone()).le(cap));
        s.assert((ti * tk).le(cap));
        let obj = bsize + IntExpr::constant(2 * 16) * tj;
        (s, obj)
    }

    #[test]
    fn maximize_under_deadline_is_anytime_on_matmul() {
        // A 10 ms budget cannot prove optimality over the waf=2 space
        // (512 candidate values per tile variable), but the first models
        // arrive well within it — so `maximize` must return a feasible,
        // possibly suboptimal model and flag the outcome incomplete.
        let (mut s, obj) = matmul_formulation(
            SolverConfig {
                deadline: Some(Duration::from_millis(10)),
                ..SolverConfig::default()
            },
            2,
        );
        let out = s.maximize(&obj).unwrap();
        assert!(!out.complete, "10ms cannot prove optimality here");
        assert!(!out.optimal);
        assert_eq!(out.stop, Some(StopReason::Deadline));
        let m = out.model.expect("anytime: best-so-far model returned");
        // The returned model must satisfy the full formulation.
        let (i, j, k) = (
            m.value_of_name("Ti").unwrap(),
            m.value_of_name("Tj").unwrap(),
            m.value_of_name("Tk").unwrap(),
        );
        assert!(i % 2 == 0 && j % 2 == 0 && k % 2 == 0);
        assert!(i * j * 6 <= 65_536);
        assert!(i * j + k * j <= 12_288 && i * k <= 12_288);
        assert_eq!(out.best.unwrap(), i * j + 32 * j);
        assert!(s.stats().deadline_hits >= 1);
        // Scope hygiene: the formulation itself is still satisfiable
        // once the budget is lifted.
        s.set_config(SolverConfig::default());
        assert!(s.check().unwrap().model.is_some());
    }

    #[test]
    fn maximize_with_cancelled_token_reports_cancellation() {
        let token = CancelToken::new();
        token.cancel();
        let (mut s, obj) = matmul_formulation(
            SolverConfig {
                cancel: Some(token),
                ..SolverConfig::default()
            },
            16,
        );
        let out = s.maximize(&obj).unwrap();
        assert!(out.model.is_none(), "cancelled before any model was found");
        assert!(!out.complete);
        assert_eq!(out.stop, Some(StopReason::Cancelled));
    }

    #[test]
    fn maximize_binary_honours_deadline() {
        // waf=1 (full 1024^3 space) and a sub-millisecond budget: the
        // binary probes cannot all finish, in debug or release builds.
        let (mut s, obj) = matmul_formulation(
            SolverConfig {
                deadline: Some(Duration::from_micros(500)),
                ..SolverConfig::default()
            },
            1,
        );
        let hull = s.hull_bounds(&obj);
        let out = s.maximize_binary(&obj, hull.hi()).unwrap();
        assert!(!out.complete);
        assert_eq!(out.stop, Some(StopReason::Deadline));
        // Scopes fully popped even on the interrupted path.
        assert!(matches!(s.pop(), Err(SolveError::PopWithoutPush)));
    }

    #[test]
    fn config_equality_ignores_distinct_but_both_none_tokens() {
        let a = SolverConfig::default();
        let b = SolverConfig::default();
        assert_eq!(a, b);
        let t = CancelToken::new();
        let c = SolverConfig {
            cancel: Some(t.clone()),
            ..SolverConfig::default()
        };
        let d = SolverConfig {
            cancel: Some(t),
            ..SolverConfig::default()
        };
        assert_eq!(c, d);
        let e = SolverConfig {
            cancel: Some(CancelToken::new()),
            ..SolverConfig::default()
        };
        assert_ne!(c, e, "distinct tokens are distinct configs");
    }

    #[test]
    fn foreign_variable_is_an_error() {
        let mut a = Solver::new();
        let mut b = Solver::new();
        b.int_var("p", 0, 1);
        b.int_var("q", 0, 1);
        let foreign = b.int_var("r", 0, 1);
        a.assert(foreign.ge(0));
        assert!(matches!(
            a.check(),
            Err(SolveError::UnknownVariable(_))
        ));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 100);
        s.assert(x.modulo(7).eq_expr(0));
        let _ = s.check().unwrap();
        let _ = s.check().unwrap();
        assert_eq!(s.stats().checks, 2);
        s.reset_stats();
        assert_eq!(s.stats().checks, 0);
    }

    #[test]
    fn implies_and_or_constraints() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let y = s.int_var("y", 0, 10);
        s.assert(x.gt(5).implies(y.eq_expr(0)));
        s.assert(x.gt(5).or(x.eq_expr(0)));
        s.assert(y.ge(0));
        let m = s.check().unwrap().model.unwrap();
        let (xv, yv) = (
            m.value_of_name("x").unwrap(),
            m.value_of_name("y").unwrap(),
        );
        assert!((xv > 5 && yv == 0) || xv == 0);
    }

    #[test]
    fn min_max_expressions_constrain() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 20);
        let y = s.int_var("y", 1, 20);
        s.assert(x.min(y.clone()).eq_expr(5));
        s.assert(x.max(y.clone()).eq_expr(9));
        let m = s.check().unwrap().model.unwrap();
        let (xv, yv) = (
            m.value_of_name("x").unwrap(),
            m.value_of_name("y").unwrap(),
        );
        assert_eq!(xv.min(yv), 5);
        assert_eq!(xv.max(yv), 9);
    }

    #[test]
    fn maximize_binary_matches_iterative() {
        let build = || {
            let mut s = Solver::new();
            let x = s.int_var("x", 1, 64);
            let y = s.int_var("y", 1, 64);
            s.assert((x.clone() * y.clone()).le(100));
            s.assert(x.modulo(4).eq_expr(0));
            let obj = x.clone() * y.clone() + y;
            (s, obj)
        };
        let (mut a, obj_a) = build();
        let linear = a.maximize(&obj_a).unwrap();
        let (mut b, obj_b) = build();
        let binary = b.maximize_binary(&obj_b, 64 * 64 + 64).unwrap();
        assert_eq!(linear.best, binary.best);
        assert!(binary.optimal);
        // log2(range) probes: far fewer than a fine-grained linear climb
        // would need in the worst case.
        assert!(binary.solver_calls <= 16, "{} calls", binary.solver_calls);
    }

    #[test]
    fn maximize_binary_unsat_and_scope_hygiene() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 10);
        s.assert(x.gt(100));
        let out = s.maximize_binary(&x, 10).unwrap();
        assert!(out.model.is_none());
        assert!(out.optimal);
        // Scopes fully popped: the base problem is still just the assert.
        assert!(s.check().unwrap().model.is_none());
        assert!(matches!(s.pop(), Err(SolveError::PopWithoutPush)));
    }

    #[test]
    fn maximize_binary_with_tight_hint() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 1000);
        s.assert(x.modulo(7).eq_expr(0));
        // hi below the true optimum is corrected by the achieved value.
        let out = s.maximize_binary(&x, 994).unwrap();
        assert_eq!(out.best, Some(994));
    }

    /// Brute-force cross-check on a small non-linear problem.
    #[test]
    fn matches_brute_force_on_small_space() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 12);
        let y = s.int_var("y", 1, 12);
        let z = s.int_var("z", 1, 12);
        s.assert((x.clone() * y.clone() * z.clone()).le(50));
        s.assert((x.clone() + y.clone()).gt(z.clone()));
        s.assert(x.modulo(2).eq_expr(0));
        let obj = x.clone() * y.clone() + z.clone();
        let out = s.maximize(&obj).unwrap();
        let mut best = i64::MIN;
        for xv in 1..=12i64 {
            for yv in 1..=12i64 {
                for zv in 1..=12i64 {
                    if xv * yv * zv <= 50 && xv + yv > zv && xv % 2 == 0 {
                        best = best.max(xv * yv + zv);
                    }
                }
            }
        }
        assert_eq!(out.best, Some(best));
    }

    #[test]
    fn hull_rebuilds_once_per_check_regression() {
        // Regression guard for the O(V·C) hull rebuild: the worklist
        // engine builds the hull vector exactly once per `check` and
        // maintains it incrementally. If per-round or per-probe rebuilds
        // return, this count explodes past `checks`.
        let (mut s, obj) = matmul_formulation(SolverConfig::default(), 16);
        let out = s.maximize(&obj).unwrap();
        assert!(out.optimal);
        let _ = s.check().unwrap();
        let stats = s.stats();
        assert_eq!(stats.checks, 2, "maximize is a single search pass");
        assert_eq!(
            stats.hull_rebuilds, stats.checks,
            "hulls must be built once per check, then maintained incrementally"
        );
    }

    #[test]
    fn maximize_prunes_with_incumbent_bound() {
        let (mut s, obj) = matmul_formulation(SolverConfig::default(), 16);
        let out = s.maximize(&obj).unwrap();
        assert!(out.optimal);
        assert!(
            s.stats().bound_prunes > 0,
            "branch-and-bound must cut subtrees that cannot beat the incumbent"
        );
    }

    #[test]
    fn timing_counters_partition_solve_time() {
        let (mut s, obj) = matmul_formulation(SolverConfig::default(), 16);
        let _ = s.maximize(&obj).unwrap();
        let stats = s.stats();
        assert!(stats.solve_time > Duration::ZERO);
        assert!(stats.propagation_time > Duration::ZERO);
    }

    #[test]
    fn enumerate_ignores_unconstrained_auxiliary_variables() {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 3);
        let y = s.int_var("y", 1, 3);
        // 1000 spectator values that no constraint mentions.
        let _aux = s.int_var("aux", 1, 1000);
        s.assert(x.lt(y.clone()));
        let models = s.enumerate(10_000).unwrap();
        // Distinct projections onto {x, y}: (1,2), (1,3), (2,3) — not
        // 3 × 1000 cross-products with the spectator.
        assert_eq!(models.len(), 3);
        assert!(s.check().unwrap().model.is_some());
    }

    #[test]
    fn enumerate_without_constraints_keeps_cross_product() {
        let mut s = Solver::new();
        let _x = s.int_var("x", 1, 2);
        let _y = s.int_var("y", 1, 3);
        let models = s.enumerate(100).unwrap();
        assert_eq!(models.len(), 6);
    }

    #[test]
    fn enumerate_is_anytime_under_node_budget() {
        let mut s = Solver::with_config(SolverConfig {
            node_limit: 40,
            ..SolverConfig::default()
        });
        let x = s.int_var("x", 1, 100);
        let y = s.int_var("y", 1, 100);
        s.assert((x.clone() + y.clone()).ge(2));
        let models = s.enumerate(10_000).unwrap();
        // The budget is cumulative across the whole enumeration: some
        // models are found, then the search stops instead of spinning
        // through all 10^4 assignments.
        assert!(!models.is_empty(), "anytime: partial results returned");
        assert!(models.len() < 10_000);
        assert!(s.stats().node_limit_hits >= 1);
        // Blocking clauses fully popped.
        assert!(matches!(s.pop(), Err(SolveError::PopWithoutPush)));
    }

    #[test]
    fn warm_maximize_matches_cold_solve_bitwise() {
        // Cold solve, observe the optimum, then re-solve a fresh but
        // identical formulation warm: the returned model, objective value
        // and optimality flag must be bit-identical — the floor only
        // removes provably-suboptimal work, never the optimum leaf.
        let (mut cold, obj) = matmul_formulation(SolverConfig::default(), 16);
        let cold_out = cold.maximize(&obj).unwrap();
        assert!(cold_out.optimal);
        let cold_model = cold_out.model.clone().unwrap();

        let mut warm_start = WarmStart::new();
        warm_start.observe(&cold_model);

        let (mut warm, obj2) = matmul_formulation(SolverConfig::default(), 16);
        let warm_out = warm.maximize_warm(&obj2, &warm_start).unwrap();
        assert_eq!(warm_out.best, cold_out.best);
        assert_eq!(warm_out.optimal, cold_out.optimal);
        let warm_model = warm_out.model.unwrap();
        let cold_bindings: Vec<_> = cold_model.bindings().map(|(n, v)| (n.to_owned(), v)).collect();
        let warm_bindings: Vec<_> = warm_model.bindings().map(|(n, v)| (n.to_owned(), v)).collect();
        assert_eq!(warm_bindings, cold_bindings);
        // The warm run starts at the optimum's floor, so it needs at most
        // as many improvement passes as the cold run.
        assert!(warm_out.solver_calls <= cold_out.solver_calls);
        assert_eq!(warm.stats().warm_seeds, 1);
        assert!(warm.stats().warm_cut_hits >= 1);
    }

    #[test]
    fn warm_start_skips_unusable_hints() {
        // Hints that are infeasible, bind values outside the base domains,
        // or miss variables entirely contribute no floor — the maximize
        // then runs exactly like a cold solve and still finds the optimum.
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 64);
        let y = s.int_var("y", 1, 64);
        s.assert((x.clone() * y.clone()).le(100));
        let obj = x.clone() + y.clone();

        let mut warm = WarmStart::new();
        // Infeasible: x*y = 50*50 violates the capacity constraint.
        warm.observe(&Model::new(
            vec![50, 50],
            vec!["x".to_owned(), "y".to_owned()],
        ));
        // Out of domain: y = 200 > 64.
        warm.observe(&Model::new(
            vec![1, 200],
            vec!["x".to_owned(), "y".to_owned()],
        ));
        // Foreign formulation: misses `y` entirely.
        warm.observe(&Model::new(vec![3], vec!["x".to_owned()]));

        let out = s.maximize_warm(&obj, &warm).unwrap();
        assert!(out.optimal);
        assert_eq!(out.best, Some(65));
        assert_eq!(s.stats().warm_seeds, 0, "no usable hint, no seed");
        assert_eq!(s.stats().warm_cut_hits, 0);
    }

    #[test]
    fn warm_start_feasible_suboptimal_hint_still_finds_optimum() {
        // A feasible-but-suboptimal hint seeds a floor strictly below its
        // own value; the search must still climb to the true optimum.
        let mut s = Solver::new();
        let x = s.int_var("x", 1, 64);
        let y = s.int_var("y", 1, 64);
        s.assert((x.clone() * y.clone()).le(100));
        let obj = x.clone() + y.clone();

        let mut warm = WarmStart::new();
        warm.observe(&Model::new(
            vec![2, 50],
            vec!["x".to_owned(), "y".to_owned()],
        ));
        let out = s.maximize_warm(&obj, &warm).unwrap();
        assert!(out.optimal);
        assert_eq!(out.best, Some(65));
        assert_eq!(s.stats().warm_seeds, 1);
        assert_eq!(s.stats().warm_cut_hits, 1);
    }

    #[test]
    fn warm_start_observe_dedups_and_evicts_oldest() {
        let mut warm = WarmStart::new();
        let names = vec!["x".to_owned()];
        let m = Model::new(vec![7], names.clone());
        warm.observe(&m);
        warm.observe(&m);
        assert_eq!(warm.len(), 1, "identical bindings are deduplicated");
        for v in 0..(WarmStart::MAX_HINTS as i64 + 4) {
            warm.observe(&Model::new(vec![v], names.clone()));
        }
        assert_eq!(warm.len(), WarmStart::MAX_HINTS, "bounded ring of hints");
    }
}
