//! Integer and boolean expression trees.
//!
//! Expressions are cheap, reference-counted trees built with ordinary Rust
//! operators (`+`, `-`, `*`) plus comparison combinators, mirroring the way
//! the paper's model generator emits Z3 terms.

use std::fmt;
use std::rc::Rc;

/// Identifier of an integer variable registered with a
/// [`Solver`](crate::Solver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Index of the variable in the solver's registration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug)]
pub(crate) enum IntNode {
    Const(i64),
    Var(VarId, String),
    Add(Vec<IntExpr>),
    Mul(Vec<IntExpr>),
    Sub(IntExpr, IntExpr),
    Neg(IntExpr),
    Div(IntExpr, IntExpr),
    Mod(IntExpr, IntExpr),
    Min(IntExpr, IntExpr),
    Max(IntExpr, IntExpr),
}

/// An integer-valued expression over solver variables.
///
/// `IntExpr` is a cheaply clonable handle (internally `Rc`). Build leaves
/// via [`Solver::int_var`](crate::Solver::int_var) and
/// [`IntExpr::constant`], then combine with `+`, `-`, `*`,
/// [`IntExpr::div`], [`IntExpr::modulo`], [`IntExpr::min`],
/// [`IntExpr::max`], and compare with [`IntExpr::le`] and friends.
///
/// # Examples
///
/// ```
/// use eatss_smt::{IntExpr, Solver};
///
/// let mut s = Solver::new();
/// let x = s.int_var("x", 0, 10);
/// let expr = x.clone() * IntExpr::constant(3) + x;
/// assert_eq!(expr.to_string(), "((x * 3) + x)");
/// ```
#[derive(Debug, Clone)]
pub struct IntExpr(pub(crate) Rc<IntNode>);

impl IntExpr {
    /// A constant expression.
    pub fn constant(v: i64) -> Self {
        IntExpr(Rc::new(IntNode::Const(v)))
    }

    pub(crate) fn var(id: VarId, name: &str) -> Self {
        IntExpr(Rc::new(IntNode::Var(id, name.to_owned())))
    }

    /// Sum of an iterator of expressions (0 if empty).
    pub fn sum<I: IntoIterator<Item = IntExpr>>(terms: I) -> Self {
        let v: Vec<IntExpr> = terms.into_iter().collect();
        match v.len() {
            0 => IntExpr::constant(0),
            1 => v.into_iter().next().expect("len checked"),
            _ => IntExpr(Rc::new(IntNode::Add(v))),
        }
    }

    /// Product of an iterator of expressions (1 if empty).
    pub fn product<I: IntoIterator<Item = IntExpr>>(factors: I) -> Self {
        let v: Vec<IntExpr> = factors.into_iter().collect();
        match v.len() {
            0 => IntExpr::constant(1),
            1 => v.into_iter().next().expect("len checked"),
            _ => IntExpr(Rc::new(IntNode::Mul(v))),
        }
    }

    /// Euclidean division `self div rhs`.
    pub fn div(&self, rhs: impl Into<IntExpr>) -> IntExpr {
        IntExpr(Rc::new(IntNode::Div(self.clone(), rhs.into())))
    }

    /// Euclidean remainder `self mod rhs` (always non-negative for a
    /// positive modulus).
    pub fn modulo(&self, rhs: impl Into<IntExpr>) -> IntExpr {
        IntExpr(Rc::new(IntNode::Mod(self.clone(), rhs.into())))
    }

    /// Pointwise minimum.
    pub fn min(&self, rhs: impl Into<IntExpr>) -> IntExpr {
        IntExpr(Rc::new(IntNode::Min(self.clone(), rhs.into())))
    }

    /// Pointwise maximum.
    pub fn max(&self, rhs: impl Into<IntExpr>) -> IntExpr {
        IntExpr(Rc::new(IntNode::Max(self.clone(), rhs.into())))
    }

    /// Constraint `self <= rhs`.
    pub fn le(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Le, self.clone(), rhs.into())
    }

    /// Constraint `self < rhs`.
    pub fn lt(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Lt, self.clone(), rhs.into())
    }

    /// Constraint `self >= rhs`.
    pub fn ge(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Ge, self.clone(), rhs.into())
    }

    /// Constraint `self > rhs`.
    pub fn gt(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Gt, self.clone(), rhs.into())
    }

    /// Constraint `self == rhs`.
    ///
    /// Named `eq_expr` to avoid shadowing `PartialEq::eq` in method
    /// resolution.
    pub fn eq_expr(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Eq, self.clone(), rhs.into())
    }

    /// Constraint `self != rhs`.
    pub fn ne_expr(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Ne, self.clone(), rhs.into())
    }

    /// Collects the variables mentioned by this expression into `out`
    /// (deduplicated, in first-occurrence order).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match &*self.0 {
            IntNode::Const(_) => {}
            IntNode::Var(id, _) => {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
            IntNode::Add(xs) | IntNode::Mul(xs) => {
                for x in xs {
                    x.collect_vars(out);
                }
            }
            IntNode::Sub(a, b)
            | IntNode::Div(a, b)
            | IntNode::Mod(a, b)
            | IntNode::Min(a, b)
            | IntNode::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            IntNode::Neg(a) => a.collect_vars(out),
        }
    }
}

impl From<i64> for IntExpr {
    fn from(v: i64) -> Self {
        IntExpr::constant(v)
    }
}

impl From<&IntExpr> for IntExpr {
    fn from(e: &IntExpr) -> Self {
        e.clone()
    }
}

impl std::ops::Add for IntExpr {
    type Output = IntExpr;
    fn add(self, rhs: IntExpr) -> IntExpr {
        IntExpr(Rc::new(IntNode::Add(vec![self, rhs])))
    }
}

impl std::ops::Sub for IntExpr {
    type Output = IntExpr;
    fn sub(self, rhs: IntExpr) -> IntExpr {
        IntExpr(Rc::new(IntNode::Sub(self, rhs)))
    }
}

impl std::ops::Mul for IntExpr {
    type Output = IntExpr;
    fn mul(self, rhs: IntExpr) -> IntExpr {
        IntExpr(Rc::new(IntNode::Mul(vec![self, rhs])))
    }
}

impl std::ops::Neg for IntExpr {
    type Output = IntExpr;
    fn neg(self) -> IntExpr {
        IntExpr(Rc::new(IntNode::Neg(self)))
    }
}

impl fmt::Display for IntExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0 {
            IntNode::Const(v) => write!(f, "{v}"),
            IntNode::Var(_, name) => write!(f, "{name}"),
            IntNode::Add(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            IntNode::Mul(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            IntNode::Sub(a, b) => write!(f, "({a} - {b})"),
            IntNode::Neg(a) => write!(f, "(-{a})"),
            IntNode::Div(a, b) => write!(f, "({a} div {b})"),
            IntNode::Mod(a, b) => write!(f, "({a} mod {b})"),
            IntNode::Min(a, b) => write!(f, "min({a}, {b})"),
            IntNode::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

/// Comparison operator of a [`BoolExpr`] atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluates the comparison on concrete integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Le => a <= b,
            CmpOp::Lt => a < b,
            CmpOp::Ge => a >= b,
            CmpOp::Gt => a > b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

#[derive(Debug)]
pub(crate) enum BoolNode {
    True,
    False,
    Cmp(CmpOp, IntExpr, IntExpr),
    And(Vec<BoolExpr>),
    Or(Vec<BoolExpr>),
    Not(BoolExpr),
    Implies(BoolExpr, BoolExpr),
}

/// A boolean constraint over integer expressions.
///
/// # Examples
///
/// ```
/// use eatss_smt::{BoolExpr, Solver};
///
/// let mut s = Solver::new();
/// let x = s.int_var("x", 0, 100);
/// let c = x.ge(10).and(x.le(20)).or(x.eq_expr(0));
/// s.assert(c);
/// let model = s.check()?.model.expect("satisfiable");
/// let v = model.value_of_name("x").expect("x is bound");
/// assert!(v == 0 || (10..=20).contains(&v));
/// # Ok::<(), eatss_smt::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BoolExpr(pub(crate) Rc<BoolNode>);

impl BoolExpr {
    /// The constant `true`.
    pub fn tru() -> Self {
        BoolExpr(Rc::new(BoolNode::True))
    }

    /// The constant `false`.
    pub fn fals() -> Self {
        BoolExpr(Rc::new(BoolNode::False))
    }

    pub(crate) fn cmp(op: CmpOp, a: IntExpr, b: IntExpr) -> Self {
        BoolExpr(Rc::new(BoolNode::Cmp(op, a, b)))
    }

    /// Conjunction.
    pub fn and(&self, rhs: BoolExpr) -> BoolExpr {
        BoolExpr(Rc::new(BoolNode::And(vec![self.clone(), rhs])))
    }

    /// Disjunction.
    pub fn or(&self, rhs: BoolExpr) -> BoolExpr {
        BoolExpr(Rc::new(BoolNode::Or(vec![self.clone(), rhs])))
    }

    /// Negation.
    pub fn not(&self) -> BoolExpr {
        BoolExpr(Rc::new(BoolNode::Not(self.clone())))
    }

    /// Implication `self -> rhs`.
    pub fn implies(&self, rhs: BoolExpr) -> BoolExpr {
        BoolExpr(Rc::new(BoolNode::Implies(self.clone(), rhs)))
    }

    /// Conjunction of an iterator of constraints (`true` if empty).
    pub fn all<I: IntoIterator<Item = BoolExpr>>(items: I) -> BoolExpr {
        let v: Vec<BoolExpr> = items.into_iter().collect();
        match v.len() {
            0 => BoolExpr::tru(),
            1 => v.into_iter().next().expect("len checked"),
            _ => BoolExpr(Rc::new(BoolNode::And(v))),
        }
    }

    /// Disjunction of an iterator of constraints (`false` if empty).
    pub fn any<I: IntoIterator<Item = BoolExpr>>(items: I) -> BoolExpr {
        let v: Vec<BoolExpr> = items.into_iter().collect();
        match v.len() {
            0 => BoolExpr::fals(),
            1 => v.into_iter().next().expect("len checked"),
            _ => BoolExpr(Rc::new(BoolNode::Or(v))),
        }
    }

    /// Collects the variables mentioned by this constraint into `out`
    /// (deduplicated, in first-occurrence order).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match &*self.0 {
            BoolNode::True | BoolNode::False => {}
            BoolNode::Cmp(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            BoolNode::And(xs) | BoolNode::Or(xs) => {
                for x in xs {
                    x.collect_vars(out);
                }
            }
            BoolNode::Not(a) => a.collect_vars(out),
            BoolNode::Implies(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0 {
            BoolNode::True => write!(f, "true"),
            BoolNode::False => write!(f, "false"),
            BoolNode::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            BoolNode::And(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            BoolNode::Or(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            BoolNode::Not(a) => write!(f, "(not {a})"),
            BoolNode::Implies(a, b) => write!(f, "({a} => {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Solver;

    #[test]
    fn display_is_fully_parenthesized() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let y = s.int_var("y", 0, 10);
        let e = (x.clone() + y.clone()) * IntExpr::constant(2) - x.modulo(3);
        assert_eq!(e.to_string(), "(((x + y) * 2) - (x mod 3))");
        let b = x.le(y.clone()).and(y.gt(0));
        assert_eq!(b.to_string(), "((x <= y) and (y > 0))");
    }

    #[test]
    fn sum_and_product_handle_edge_arities() {
        assert_eq!(IntExpr::sum([]).to_string(), "0");
        assert_eq!(IntExpr::product([]).to_string(), "1");
        let one = IntExpr::constant(7);
        assert_eq!(IntExpr::sum([one.clone()]).to_string(), "7");
        assert_eq!(IntExpr::product([one]).to_string(), "7");
    }

    #[test]
    fn collect_vars_deduplicates_in_order() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let y = s.int_var("y", 0, 10);
        let e = x.clone() * y.clone() + x.clone() + y;
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].index(), 0);
        assert_eq!(vars[1].index(), 1);
        let b = x.gt(0).not();
        let mut bv = Vec::new();
        b.collect_vars(&mut bv);
        assert_eq!(bv.len(), 1);
    }

    #[test]
    fn cmp_op_eval_matches_semantics() {
        assert!(CmpOp::Le.eval(1, 1));
        assert!(!CmpOp::Lt.eval(1, 1));
        assert!(CmpOp::Ge.eval(2, 1));
        assert!(CmpOp::Gt.eval(2, 1));
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ne.eval(3, 4));
    }

    #[test]
    fn all_and_any_edge_cases() {
        assert_eq!(BoolExpr::all([]).to_string(), "true");
        assert_eq!(BoolExpr::any([]).to_string(), "false");
    }
}
