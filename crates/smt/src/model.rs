//! Satisfying assignments returned by the solver.

use crate::expr::{BoolExpr, BoolNode, IntExpr, IntNode, VarId};
use crate::solver::SolveError;
use std::fmt;

/// A total assignment of concrete values to the solver's variables.
///
/// Obtained from [`Solver::check`](crate::Solver::check) /
/// [`Solver::maximize`](crate::Solver::maximize); evaluate any expression
/// built from the same solver's variables against it.
///
/// # Examples
///
/// ```
/// use eatss_smt::Solver;
///
/// let mut s = Solver::new();
/// let x = s.int_var("x", 5, 5);
/// let model = s.check()?.model.expect("trivially satisfiable");
/// assert_eq!(model.eval(&(x.clone() * x))?, 25);
/// # Ok::<(), eatss_smt::SolveError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<i64>,
    names: Vec<String>,
}

impl Model {
    pub(crate) fn new(values: Vec<i64>, names: Vec<String>) -> Self {
        debug_assert_eq!(values.len(), names.len());
        Model { values, names }
    }

    /// Value assigned to `var`.
    ///
    /// Returns [`None`] if the variable does not belong to this model's
    /// solver.
    pub fn value_of(&self, var: VarId) -> Option<i64> {
        self.values.get(var.index()).copied()
    }

    /// Value assigned to the variable registered under `name`.
    pub fn value_of_name(&self, name: &str) -> Option<i64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
    }

    /// Pairs of `(name, value)` in registration order.
    pub fn bindings(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter().copied())
    }

    /// Evaluates an integer expression under this assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DivisionByZero`] if a `div`/`mod` divisor
    /// evaluates to zero, and [`SolveError::UnknownVariable`] if the
    /// expression mentions a variable not registered with the solver that
    /// produced this model.
    pub fn eval(&self, expr: &IntExpr) -> Result<i64, SolveError> {
        Ok(match &*expr.0 {
            IntNode::Const(v) => *v,
            IntNode::Var(id, name) => self
                .value_of(*id)
                .ok_or_else(|| SolveError::UnknownVariable(name.clone()))?,
            IntNode::Add(xs) => {
                let mut acc: i64 = 0;
                for x in xs {
                    acc = acc.saturating_add(self.eval(x)?);
                }
                acc
            }
            IntNode::Mul(xs) => {
                let mut acc: i64 = 1;
                for x in xs {
                    acc = acc.saturating_mul(self.eval(x)?);
                }
                acc
            }
            IntNode::Sub(a, b) => self.eval(a)?.saturating_sub(self.eval(b)?),
            IntNode::Neg(a) => -self.eval(a)?,
            IntNode::Div(a, b) => {
                let d = self.eval(b)?;
                if d == 0 {
                    return Err(SolveError::DivisionByZero);
                }
                self.eval(a)?.div_euclid(d)
            }
            IntNode::Mod(a, b) => {
                let d = self.eval(b)?;
                if d == 0 {
                    return Err(SolveError::DivisionByZero);
                }
                self.eval(a)?.rem_euclid(d)
            }
            IntNode::Min(a, b) => self.eval(a)?.min(self.eval(b)?),
            IntNode::Max(a, b) => self.eval(a)?.max(self.eval(b)?),
        })
    }

    /// Evaluates a boolean constraint under this assignment.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::eval`].
    pub fn eval_bool(&self, expr: &BoolExpr) -> Result<bool, SolveError> {
        Ok(match &*expr.0 {
            BoolNode::True => true,
            BoolNode::False => false,
            BoolNode::Cmp(op, a, b) => op.eval(self.eval(a)?, self.eval(b)?),
            BoolNode::And(xs) => {
                for x in xs {
                    if !self.eval_bool(x)? {
                        return Ok(false);
                    }
                }
                true
            }
            BoolNode::Or(xs) => {
                for x in xs {
                    if self.eval_bool(x)? {
                        return Ok(true);
                    }
                }
                false
            }
            BoolNode::Not(a) => !self.eval_bool(a)?,
            BoolNode::Implies(a, b) => !self.eval_bool(a)? || self.eval_bool(b)?,
        })
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, v)) in self.bindings().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name} = {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Solver;

    fn fixed_model() -> (Model, IntExpr, IntExpr) {
        let mut s = Solver::new();
        let x = s.int_var("x", 7, 7);
        let y = s.int_var("y", 3, 3);
        let m = s
            .check()
            .expect("no limits hit")
            .model
            .expect("fixed domains are satisfiable");
        (m, x, y)
    }

    #[test]
    fn eval_arithmetic() {
        let (m, x, y) = fixed_model();
        assert_eq!(m.eval(&(x.clone() + y.clone())).unwrap(), 10);
        assert_eq!(m.eval(&(x.clone() - y.clone())).unwrap(), 4);
        assert_eq!(m.eval(&(x.clone() * y.clone())).unwrap(), 21);
        assert_eq!(m.eval(&x.div(y.clone())).unwrap(), 2);
        assert_eq!(m.eval(&x.modulo(y.clone())).unwrap(), 1);
        assert_eq!(m.eval(&x.min(y.clone())).unwrap(), 3);
        assert_eq!(m.eval(&x.max(y.clone())).unwrap(), 7);
        assert_eq!(m.eval(&(-x)).unwrap(), -7);
    }

    #[test]
    fn eval_bool_connectives() {
        let (m, x, y) = fixed_model();
        assert!(m.eval_bool(&x.gt(y.clone())).unwrap());
        assert!(m.eval_bool(&x.gt(y.clone()).and(y.ge(3))).unwrap());
        assert!(m.eval_bool(&x.lt(y.clone()).or(y.eq_expr(3))).unwrap());
        assert!(m.eval_bool(&x.lt(y.clone()).not()).unwrap());
        assert!(m.eval_bool(&x.lt(y.clone()).implies(y.gt(100))).unwrap());
        assert!(!m.eval_bool(&x.gt(y).implies(x.eq_expr(0))).unwrap());
    }

    #[test]
    fn division_by_zero_is_reported() {
        let (m, x, _) = fixed_model();
        let zero = IntExpr::constant(0);
        assert!(matches!(
            m.eval(&x.div(zero.clone())),
            Err(SolveError::DivisionByZero)
        ));
        assert!(matches!(
            m.eval(&x.modulo(zero)),
            Err(SolveError::DivisionByZero)
        ));
    }

    #[test]
    fn unknown_variable_is_reported() {
        let (m, _, _) = fixed_model();
        let mut other = Solver::new();
        other.int_var("a", 0, 10);
        other.int_var("b", 0, 10);
        let foreign = other.int_var("c", 0, 10);
        assert!(matches!(
            m.eval(&foreign),
            Err(SolveError::UnknownVariable(name)) if name == "c"
        ));
    }

    #[test]
    fn bindings_and_display() {
        let (m, _, _) = fixed_model();
        let pairs: Vec<_> = m.bindings().collect();
        assert_eq!(pairs, vec![("x", 7), ("y", 3)]);
        assert_eq!(m.to_string(), "{x = 7, y = 3}");
        assert_eq!(m.value_of_name("y"), Some(3));
        assert_eq!(m.value_of_name("zz"), None);
    }

    #[test]
    fn euclidean_semantics_on_negatives() {
        let mut s = Solver::new();
        let x = s.int_var("x", -7, -7);
        let m = s.check().unwrap().model.unwrap();
        assert_eq!(m.eval(&x.modulo(3)).unwrap(), 2);
        assert_eq!(m.eval(&x.div(3)).unwrap(), -3);
    }
}
