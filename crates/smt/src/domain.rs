//! Finite variable domains.
//!
//! Every solver variable owns a [`Domain`]: an explicit, sorted set of the
//! integer values it may still take. EATSS variables are tile sizes with at
//! most a few thousand candidate values, so explicit sets are both simple
//! and fast, and make divisibility filtering exact.

use crate::Interval;
use std::fmt;

/// A finite, sorted set of candidate values for one variable.
///
/// # Examples
///
/// ```
/// use eatss_smt::Domain;
///
/// let mut d = Domain::range(1, 64);
/// d.retain(|v| v % 16 == 0);
/// assert_eq!(d.iter().collect::<Vec<_>>(), vec![16, 32, 48, 64]);
/// assert_eq!(d.hull().lo(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    values: Vec<i64>,
}

impl Domain {
    /// Domain containing every integer in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the range holds more than 4,194,304 values; EATSS domains
    /// are always orders of magnitude smaller, so a larger request indicates
    /// a formulation bug.
    pub fn range(lo: i64, hi: i64) -> Self {
        if lo > hi {
            return Domain { values: Vec::new() };
        }
        let count = (hi - lo + 1) as u64;
        assert!(
            count <= 1 << 22,
            "domain [{lo}, {hi}] too large to materialize ({count} values)"
        );
        Domain {
            values: (lo..=hi).collect(),
        }
    }

    /// Domain from an explicit list of values (sorted and deduplicated).
    pub fn from_values(mut values: Vec<i64>) -> Self {
        values.sort_unstable();
        values.dedup();
        Domain { values }
    }

    /// Domain holding exactly one value.
    pub fn singleton(v: i64) -> Self {
        Domain { values: vec![v] }
    }

    /// Number of remaining candidate values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values remain (the subproblem is unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether exactly one value remains.
    pub fn is_singleton(&self) -> bool {
        self.values.len() == 1
    }

    /// The single remaining value, if [`Domain::is_singleton`].
    pub fn as_singleton(&self) -> Option<i64> {
        if self.values.len() == 1 {
            Some(self.values[0])
        } else {
            None
        }
    }

    /// The tightest interval containing all remaining values
    /// ([`Interval::empty`] if the domain is empty).
    pub fn hull(&self) -> Interval {
        match (self.values.first(), self.values.last()) {
            (Some(&lo), Some(&hi)) => Interval::new(lo, hi),
            _ => Interval::empty(),
        }
    }

    /// Whether `v` is still a candidate.
    pub fn contains(&self, v: i64) -> bool {
        self.values.binary_search(&v).is_ok()
    }

    /// Keeps only values satisfying `pred`; returns `true` if anything was
    /// removed.
    pub fn retain(&mut self, pred: impl FnMut(&i64) -> bool) -> bool {
        let before = self.values.len();
        let mut pred = pred;
        self.values.retain(|v| pred(v));
        self.values.len() != before
    }

    /// Intersects with an interval; returns `true` if anything was removed.
    pub fn clamp_to(&mut self, iv: Interval) -> bool {
        self.retain(|&v| iv.contains(v))
    }

    /// Iterates over remaining values in ascending order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = i64> + '_ {
        self.values.iter().copied()
    }

    /// All remaining values as a slice.
    pub fn values(&self) -> &[i64] {
        &self.values
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.values.len() > 8 {
            write!(
                f,
                "{{{}, {}, .. {} values .. , {}}}",
                self.values[0],
                self.values[1],
                self.values.len(),
                self.values[self.values.len() - 1]
            )
        } else {
            write!(f, "{:?}", self.values)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_materializes_inclusive_bounds() {
        let d = Domain::range(3, 5);
        assert_eq!(d.values(), &[3, 4, 5]);
        assert!(Domain::range(5, 3).is_empty());
    }

    #[test]
    fn from_values_sorts_and_dedups() {
        let d = Domain::from_values(vec![5, 1, 3, 3, 1]);
        assert_eq!(d.values(), &[1, 3, 5]);
    }

    #[test]
    fn hull_is_tight() {
        let d = Domain::from_values(vec![4, 9, 16]);
        assert_eq!(d.hull(), Interval::new(4, 16));
        assert!(Domain::from_values(vec![]).hull().is_empty());
    }

    #[test]
    fn clamp_to_reports_change() {
        let mut d = Domain::range(0, 10);
        assert!(d.clamp_to(Interval::new(2, 7)));
        assert_eq!(d.len(), 6);
        assert!(!d.clamp_to(Interval::new(0, 100)));
    }

    #[test]
    fn singleton_accessors() {
        let d = Domain::singleton(42);
        assert!(d.is_singleton());
        assert_eq!(d.as_singleton(), Some(42));
        assert!(d.contains(42));
        assert!(!d.contains(41));
    }

    #[test]
    fn display_elides_large_domains() {
        let d = Domain::range(0, 100);
        let shown = d.to_string();
        assert!(shown.contains("101 values"));
        let small = Domain::range(0, 3);
        assert_eq!(small.to_string(), "[0, 1, 2, 3]");
    }
}
