//! SMT-LIB 2 export of a solver's current formulation.
//!
//! The paper's artifact drives the Z3 Python bindings; exporting our
//! formulations in SMT-LIB 2 keeps them inspectable with (and checkable
//! against) a real SMT solver when one is available.

use crate::expr::{BoolExpr, BoolNode, IntExpr, IntNode};
use crate::solver::Solver;
use std::fmt::Write as _;

/// Renders the solver's variables and assertions as an SMT-LIB 2 script,
/// optionally ending with a `(maximize ...)` directive (νZ syntax).
///
/// # Examples
///
/// ```
/// use eatss_smt::{to_smtlib, Solver};
///
/// let mut s = Solver::new();
/// let x = s.int_var("x", 1, 64);
/// s.assert(x.modulo(16).eq_expr(0));
/// let script = to_smtlib(&s, Some(&x));
/// assert!(script.contains("(declare-const x Int)"));
/// assert!(script.contains("(assert (= (mod x 16) 0))"));
/// assert!(script.contains("(maximize x)"));
/// ```
pub fn to_smtlib(solver: &Solver, objective: Option<&IntExpr>) -> String {
    let mut out = String::new();
    out.push_str("(set-logic QF_NIA)\n");
    for name in solver.var_names() {
        let _ = writeln!(out, "(declare-const {name} Int)");
    }
    // Domain bounds are part of the formulation.
    for (i, name) in solver.var_names().enumerate() {
        if let Some(dom) = solver.domain_of(crate::VarId(i as u32)) {
            let hull = dom.hull();
            if !hull.is_empty() {
                let _ = writeln!(
                    out,
                    "(assert (and (>= {name} {}) (<= {name} {})))",
                    hull.lo(),
                    hull.hi()
                );
            } else {
                let _ = writeln!(out, "(assert false) ; empty domain for {name}");
            }
        }
    }
    for c in solver.assertions() {
        let _ = writeln!(out, "(assert {})", bool_sexp(c));
    }
    if let Some(obj) = objective {
        let _ = writeln!(out, "(maximize {})", int_sexp(obj));
    }
    out.push_str("(check-sat)\n(get-model)\n");
    out
}

fn int_sexp(expr: &IntExpr) -> String {
    match &*expr.0 {
        IntNode::Const(v) => {
            if *v < 0 {
                format!("(- {})", -v)
            } else {
                v.to_string()
            }
        }
        IntNode::Var(_, name) => name.clone(),
        IntNode::Add(xs) => nary("+", xs),
        IntNode::Mul(xs) => nary("*", xs),
        IntNode::Sub(a, b) => format!("(- {} {})", int_sexp(a), int_sexp(b)),
        IntNode::Neg(a) => format!("(- {})", int_sexp(a)),
        IntNode::Div(a, b) => format!("(div {} {})", int_sexp(a), int_sexp(b)),
        IntNode::Mod(a, b) => format!("(mod {} {})", int_sexp(a), int_sexp(b)),
        IntNode::Min(a, b) => {
            let (sa, sb) = (int_sexp(a), int_sexp(b));
            format!("(ite (<= {sa} {sb}) {sa} {sb})")
        }
        IntNode::Max(a, b) => {
            let (sa, sb) = (int_sexp(a), int_sexp(b));
            format!("(ite (>= {sa} {sb}) {sa} {sb})")
        }
    }
}

fn nary(op: &str, xs: &[IntExpr]) -> String {
    let mut s = format!("({op}");
    for x in xs {
        s.push(' ');
        s.push_str(&int_sexp(x));
    }
    s.push(')');
    s
}

fn bool_sexp(expr: &BoolExpr) -> String {
    use crate::expr::CmpOp::*;
    match &*expr.0 {
        BoolNode::True => "true".to_owned(),
        BoolNode::False => "false".to_owned(),
        BoolNode::Cmp(op, a, b) => {
            let sym = match op {
                Le => "<=",
                Lt => "<",
                Ge => ">=",
                Gt => ">",
                Eq => "=",
                Ne => "distinct",
            };
            format!("({sym} {} {})", int_sexp(a), int_sexp(b))
        }
        BoolNode::And(xs) => nary_bool("and", xs),
        BoolNode::Or(xs) => nary_bool("or", xs),
        BoolNode::Not(a) => format!("(not {})", bool_sexp(a)),
        BoolNode::Implies(a, b) => format!("(=> {} {})", bool_sexp(a), bool_sexp(b)),
    }
}

fn nary_bool(op: &str, xs: &[BoolExpr]) -> String {
    let mut s = format!("({op}");
    for x in xs {
        s.push(' ');
        s.push_str(&bool_sexp(x));
    }
    s.push(')');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IntExpr, Solver};

    #[test]
    fn exports_declarations_bounds_and_assertions() {
        let mut s = Solver::new();
        let ti = s.int_var("Ti", 1, 1024);
        let tj = s.int_var("Tj", 1, 1024);
        s.assert((ti.clone() * tj.clone()).le(12_288));
        s.assert(ti.modulo(16).eq_expr(0));
        let script = to_smtlib(&s, None);
        assert!(script.starts_with("(set-logic QF_NIA)"));
        assert!(script.contains("(declare-const Ti Int)"));
        assert!(script.contains("(declare-const Tj Int)"));
        assert!(script.contains("(assert (and (>= Ti 1) (<= Ti 1024)))"));
        assert!(script.contains("(assert (<= (* Ti Tj) 12288))"));
        assert!(script.contains("(assert (= (mod Ti 16) 0))"));
        assert!(script.ends_with("(check-sat)\n(get-model)\n"));
    }

    #[test]
    fn negative_constants_use_unary_minus() {
        let mut s = Solver::new();
        let x = s.int_var("x", -10, 10);
        s.assert(x.ge(-5));
        let script = to_smtlib(&s, None);
        assert!(script.contains("(assert (>= x (- 5)))"));
    }

    #[test]
    fn min_max_lower_to_ite() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let y = s.int_var("y", 0, 10);
        s.assert(x.min(y.clone()).le(3));
        let script = to_smtlib(&s, None);
        assert!(script.contains("(ite (<= x y) x y)"));
    }

    #[test]
    fn objective_and_connectives() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        s.assert(x.gt(2).and(x.lt(9)).or(x.eq_expr(0).not()));
        let obj = x.clone() + IntExpr::constant(1);
        let script = to_smtlib(&s, Some(&obj));
        assert!(script.contains("(or (and (> x 2) (< x 9)) (not (= x 0)))"));
        assert!(script.contains("(maximize (+ x 1))"));
    }
}
