//! Criterion benches for the solver core rewrite: trail/worklist/bound
//! engine vs the retained naive reference on representative EATSS
//! formulations. `crates/bench/src/bin/bench_solver.rs` produces the
//! headline `BENCH_solver.json` numbers over full PolyBench formulations;
//! this suite tracks the raw engine on self-contained problems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eatss_smt::{reference, IntExpr, Solver};
use std::hint::black_box;

/// The §IV-A matmul formulation at a configurable warp-alignment factor
/// (smaller factor → larger search space).
fn matmul(waf: i64) -> (Solver, IntExpr) {
    let mut s = Solver::new();
    let cap = 12_288;
    let ti = s.int_var("Ti", 1, 1024);
    let tj = s.int_var("Tj", 1, 1024);
    let tk = s.int_var("Tk", 1, 1024);
    for t in [&ti, &tj, &tk] {
        s.assert(t.modulo(waf).eq_expr(0));
    }
    let bsize = ti.clone() * tj.clone();
    s.assert((bsize.clone() * IntExpr::constant(3) * IntExpr::constant(2)).le(65_536));
    s.assert((ti.clone() * tj.clone() + tk.clone() * tj.clone()).le(cap));
    s.assert((ti * tk).le(cap));
    let obj = bsize + IntExpr::constant(2 * 16) * tj;
    (s, obj)
}

fn bench_maximize_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_core_maximize");
    group.sample_size(10);
    for waf in [16i64, 8] {
        group.bench_with_input(BenchmarkId::new("fast", waf), &waf, |b, &waf| {
            b.iter(|| {
                let (mut s, obj) = matmul(waf);
                black_box(s.maximize(black_box(&obj)).expect("solves"))
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", waf), &waf, |b, &waf| {
            b.iter(|| {
                let (s, obj) = matmul(waf);
                black_box(reference::maximize(&s, black_box(&obj)).expect("solves"))
            });
        });
    }
    group.finish();
}

fn bench_check_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_core_check");
    group.sample_size(10);
    for waf in [16i64, 4] {
        group.bench_with_input(BenchmarkId::new("fast", waf), &waf, |b, &waf| {
            b.iter(|| {
                let (mut s, _) = matmul(waf);
                black_box(s.check().expect("checks"))
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", waf), &waf, |b, &waf| {
            b.iter(|| {
                let (s, _) = matmul(waf);
                black_box(reference::check(&s).expect("checks"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maximize_engines, bench_check_engines);
criterion_main!(benches);
