use std::process::Command;

/// Bakes the compiler version into the crate so run provenance
/// (`Provenance::collect`) can stamp trace headers and BENCH_solver.json
/// without shelling out at runtime.
fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = Command::new(rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=EATSS_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
