//! Minimal JSON support: an escaper/number formatter for the sinks and a
//! small recursive-descent parser used by `trace_check`, the golden-file
//! tests and the CI smoke job. No external crates — the registry is
//! unreachable in this environment.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `text` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value. Non-finite values have no JSON
/// representation and are emitted as `null` (they would otherwise corrupt
/// the whole file — see the NaN-poisoned fault reports in `gpusim`).
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Objects preserve insertion order is not needed;
/// a `BTreeMap` keeps lookups simple and comparisons canonical.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The contained object's map, if this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The contained array, if this is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The contained string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The contained number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The contained bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.expect_literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.expect_literal("null").map(|_| Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.num(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_formats_finite_and_rejects_nan() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn parses_round_trip_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": "x\"y", "c": true, "d": null, "e": {}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\"y"));
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\": ").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = Json::parse(r#""A\n""#).unwrap();
        assert_eq!(v.as_str(), Some("A\n"));
    }
}
