//! Trace output: run provenance, the drained [`Trace`] container, and the
//! two serializers (JSON-lines and Chrome `trace_events`/Perfetto).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;
use std::process::Command;

use crate::event::{ArgValue, Event, EventKind};
use crate::json::{escape, number};
use crate::metrics::MetricsSnapshot;

/// Run provenance stamped into trace headers and `BENCH_solver.json`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// `git rev-parse HEAD` of the working tree, or `"unknown"`.
    pub git_sha: String,
    /// `rustc --version` of the compiler that built the binary.
    pub rustc_version: String,
    /// `std::thread::available_parallelism()` at run time.
    pub threads: usize,
    /// The `--jobs` setting, when the producing tool has one.
    pub jobs: Option<usize>,
}

impl Provenance {
    /// Captures provenance for the current process. `jobs` is the
    /// producing tool's `--jobs` setting (`None` when it has no such
    /// knob). The git SHA can be pinned via `EATSS_GIT_SHA` (useful in
    /// CI or outside a checkout); otherwise `git rev-parse HEAD` is
    /// consulted, falling back to `"unknown"`.
    pub fn collect(jobs: Option<usize>) -> Provenance {
        let git_sha = std::env::var("EATSS_GIT_SHA")
            .ok()
            .filter(|s| !s.is_empty())
            .or_else(|| {
                Command::new("git")
                    .args(["rev-parse", "HEAD"])
                    .output()
                    .ok()
                    .filter(|out| out.status.success())
                    .and_then(|out| String::from_utf8(out.stdout).ok())
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
            })
            .unwrap_or_else(|| "unknown".to_string());
        Provenance {
            git_sha,
            rustc_version: env!("EATSS_RUSTC_VERSION").to_string(),
            threads: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
            jobs,
        }
    }

    /// Serializes as a JSON object.
    pub fn to_json(&self) -> String {
        let jobs = match self.jobs {
            Some(j) => j.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"git_sha\":\"{}\",\"rustc_version\":\"{}\",\"threads\":{},\"jobs\":{}}}",
            escape(&self.git_sha),
            escape(&self.rustc_version),
            self.threads,
            jobs
        )
    }
}

/// Output format for [`Trace::write`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line; header line first.
    Jsonl,
    /// A single Chrome `trace_events` JSON document (Perfetto-compatible).
    Chrome,
}

impl TraceFormat {
    /// Parses a CLI-style format name (`jsonl|chrome`).
    pub fn parse(text: &str) -> Option<TraceFormat> {
        match text {
            "jsonl" => Some(TraceFormat::Jsonl),
            "chrome" => Some(TraceFormat::Chrome),
            _ => None,
        }
    }
}

/// A drained collection session: canonically ordered events, the metrics
/// snapshot, and run provenance. Produced by [`crate::drain`].
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Who/what produced this trace.
    pub provenance: Provenance,
    /// Events sorted by `(lane, seq)`.
    pub events: Vec<Event>,
    /// Final registry contents.
    pub metrics: MetricsSnapshot,
}

impl Trace {
    /// Serializes to the requested format and writes to `path`.
    pub fn write(&self, path: &Path, format: TraceFormat) -> std::io::Result<()> {
        let body = match format {
            TraceFormat::Jsonl => self.to_jsonl(),
            TraceFormat::Chrome => self.to_chrome_json(),
        };
        std::fs::write(path, body)
    }

    /// JSON-lines serialization: a header object (provenance + metrics)
    /// followed by one object per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"type\":\"header\",\"provenance\":{},\"metrics\":{}}}",
            self.provenance.to_json(),
            self.metrics.to_json()
        );
        out.push('\n');
        for event in &self.events {
            let _ = write!(
                out,
                "{{\"type\":\"event\",\"seq\":{},\"lane\":{},\"ts_us\":{},\"cat\":\"{}\",\"name\":\"{}\",\"ph\":\"{}\"",
                event.seq,
                event.lane,
                event.ts_us,
                escape(event.cat),
                escape(&event.name),
                event.kind.code()
            );
            match &event.kind {
                EventKind::Begin { id, parent } => {
                    let _ = write!(out, ",\"id\":{id},\"parent\":{parent}");
                }
                EventKind::End { id, dur_us } => {
                    let _ = write!(out, ",\"id\":{id},\"dur_us\":{dur_us}");
                }
                EventKind::Instant { level } => {
                    let _ = write!(out, ",\"level\":\"{}\"", level.label());
                }
            }
            if !event.args.is_empty() {
                let _ = write!(out, ",\"args\":{}", args_json(&event.args));
            }
            out.push('}');
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_events` serialization. Spans become complete (`"X"`)
    /// events, instants become `"i"` events, lanes become named threads
    /// of a single `eatss` process, and registry counters/gauges/
    /// histograms become trailing counter (`"C"`) samples (histograms
    /// carry `count`/`p50`/`p90`/`p99`/`max` args). The result opens
    /// directly in `ui.perfetto.dev` or `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        self.chrome_json(",\n", "[\n", "\n]", "\n")
    }

    /// [`Trace::to_chrome_json`] without any newlines — a single line
    /// embeddable as a raw value in JSON-lines protocols (the daemon's
    /// `trace` op). Same document, byte-for-byte, modulo whitespace.
    pub fn to_chrome_json_compact(&self) -> String {
        self.chrome_json(",", "[", "]", "")
    }

    fn chrome_json(&self, sep: &str, open: &str, close: &str, tail: &str) -> String {
        let mut entries: Vec<String> = Vec::new();
        entries.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"eatss\"}}"
                .to_string(),
        );
        let lanes: BTreeSet<u64> = self.events.iter().map(|e| e.lane).collect();
        for lane in &lanes {
            let label = if *lane == 0 { "main".to_string() } else { format!("lane-{lane}") };
            entries.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"args\":{{\"name\":\"{label}\"}}}}"
            ));
        }
        let mut last_ts = 0u64;
        for event in &self.events {
            last_ts = last_ts.max(event.ts_us);
            match &event.kind {
                // "X" complete events are self-contained (ts + dur), so
                // Begin events carry no extra information for this sink.
                EventKind::Begin { .. } => {}
                EventKind::End { dur_us, .. } => {
                    let start = event.ts_us.saturating_sub(*dur_us);
                    entries.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                        escape(&event.name),
                        escape(event.cat),
                        start,
                        dur_us,
                        event.lane,
                        args_json(&event.args)
                    ));
                }
                EventKind::Instant { .. } => {
                    entries.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{}}}",
                        escape(&event.name),
                        escape(event.cat),
                        event.ts_us,
                        event.lane,
                        args_json(&event.args)
                    ));
                }
            }
        }
        for (name, value) in &self.metrics.counters {
            entries.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{}}}}}",
                escape(name),
                last_ts,
                value
            ));
        }
        for (name, value) in &self.metrics.gauges {
            entries.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{}}}}}",
                escape(name),
                last_ts,
                number(*value)
            ));
        }
        for (name, snap) in &self.metrics.histograms {
            entries.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\"args\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}}}",
                escape(name),
                last_ts,
                snap.count(),
                snap.quantile(0.5),
                snap.quantile(0.9),
                snap.quantile(0.99),
                snap.max()
            ));
        }
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"provenance\":");
        out.push_str(&self.provenance.to_json());
        out.push_str("},\"traceEvents\":");
        out.push_str(open);
        out.push_str(&entries.join(sep));
        out.push_str(close);
        out.push('}');
        out.push_str(tail);
        out
    }

    /// The structural signature of the trace: one `lane|cat|name|phase`
    /// entry per event, in canonical order. Timestamps, durations and ids
    /// are excluded — this is exactly what the determinism guarantee
    /// covers (parallel sweeps must produce the same signature as
    /// sequential ones).
    pub fn signature(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|e| format!("{}|{}|{}|{}", e.lane, e.cat, e.name, e.kind.code()))
            .collect()
    }

    /// Distinct `(cat, name)` pairs of all spans in the trace.
    pub fn span_names(&self) -> BTreeSet<(String, String)> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::End { .. }))
            .map(|e| (e.cat.to_string(), e.name.clone()))
            .collect()
    }

    /// Checks span begin/end balance: within each lane (in canonical
    /// order) every `End` must close the innermost open `Begin`, and no
    /// span may be left open. Returns a description of the first
    /// violation.
    pub fn check_balance(&self) -> Result<(), String> {
        let mut events: Vec<&Event> = self.events.iter().collect();
        events.sort_by_key(|e| (e.lane, e.seq));
        let mut open: Vec<(u64, Vec<u64>)> = Vec::new(); // (lane, stack)
        for event in events {
            let stack = match open.iter_mut().find(|(lane, _)| *lane == event.lane) {
                Some((_, stack)) => stack,
                None => {
                    open.push((event.lane, Vec::new()));
                    &mut open.last_mut().unwrap().1
                }
            };
            match &event.kind {
                EventKind::Begin { id, .. } => stack.push(*id),
                EventKind::End { id, .. } => match stack.pop() {
                    Some(top) if top == *id => {}
                    Some(top) => {
                        return Err(format!(
                            "lane {}: end of span {id} ({}) but innermost open span is {top}",
                            event.lane, event.name
                        ));
                    }
                    None => {
                        return Err(format!(
                            "lane {}: end of span {id} ({}) with no open span",
                            event.lane, event.name
                        ));
                    }
                },
                EventKind::Instant { .. } => {}
            }
        }
        for (lane, stack) in &open {
            if !stack.is_empty() {
                return Err(format!("lane {lane}: {} span(s) left open", stack.len()));
            }
        }
        Ok(())
    }
}

fn args_json(args: &[(&'static str, ArgValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(key));
        match value {
            ArgValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::Float(v) => out.push_str(&number(*v)),
            ArgValue::Str(v) => {
                let _ = write!(out, "\"{}\"", escape(v));
            }
            ArgValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
    out.push('}');
    out
}
