//! Lock-free fixed-bucket log-2 latency histograms.
//!
//! A [`Histogram`] is 65 `AtomicU64` buckets: bucket 0 counts the value
//! 0, bucket `b` (1..=64) counts values whose bit length is `b`, i.e.
//! `2^(b-1) ..= 2^b - 1`. Recording is **one relaxed atomic add** — no
//! locks, no allocation, no clock reads — so call sites on the request
//! hot path pay the same budget as a disabled span: one relaxed load
//! (the [`crate::collecting`] gate) plus one `fetch_add`.
//!
//! # Error bounds
//!
//! Quantile estimates are the **upper bound of the bucket containing the
//! true rank**: for a true quantile value `v ≥ 1` the estimate `e`
//! satisfies `v ≤ e < 2·v` (one log-2 bucket), and `e = 0` exactly when
//! `v = 0`. Estimates are therefore monotone by construction
//! (p50 ≤ p90 ≤ p99 ≤ max). There is deliberately no `sum` field — it
//! would cost a second atomic on the hot path.
//!
//! Named histograms live in a process-global registry next to the
//! counter/gauge registry: [`histogram`] interns a name once (one lock)
//! and hands back a `&'static Histogram` that call sites cache, so the
//! registry lock is never on the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bucket count: one for zero plus one per possible `u64` bit length.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free log-2 histogram. See the module docs for the bucket
/// scheme and error bounds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket a value lands in: its bit length (0 for the value 0).
#[inline]
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive `(lo, hi)` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        (0, 0)
    } else if index >= 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (index - 1), (1 << index) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation. **One relaxed atomic add**; a no-op
    /// while collection is disabled (same contract as counters).
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::collecting() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the buckets (relaxed loads: exact once
    /// concurrent recorders have quiesced, never torn per-bucket).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable copy of a [`Histogram`]'s buckets with quantile
/// estimation. The error bounds are documented on the module.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket counts, index = bit length of the value (see
    /// [`bucket_bounds`]). Always [`HISTOGRAM_BUCKETS`] long when taken
    /// from a live histogram; `Default` is empty.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Estimated value at quantile `q` (clamped to `[0, 1]`): the upper
    /// bound of the bucket holding rank `ceil(q · count)`. 0 when empty.
    /// For a true quantile `v ≥ 1` the estimate `e` satisfies
    /// `v ≤ e < 2·v`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bucket_bounds(index).1;
            }
        }
        bucket_bounds(self.buckets.len().saturating_sub(1)).1
    }

    /// Upper bound of the highest occupied bucket (0 when empty).
    /// Equals `quantile(1.0)`.
    pub fn max(&self) -> u64 {
        match self.buckets.iter().rposition(|&n| n > 0) {
            Some(index) => bucket_bounds(index).1,
            None => 0,
        }
    }

    /// The occupied buckets as `(lo, hi, count)` triples, in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, n)
            })
    }
}

static HISTOGRAMS: Mutex<BTreeMap<String, &'static Histogram>> = Mutex::new(BTreeMap::new());

/// Interns `name` in the global registry (allocating its histogram on
/// first use) and returns a `'static` handle. Cache the handle at hot
/// call sites — the lookup takes the registry lock, `record` never does.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut registry = HISTOGRAMS.lock().unwrap();
    if let Some(h) = registry.get(name).copied() {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    registry.insert(name.to_string(), h);
    h
}

/// Snapshots every registered histogram with at least one observation,
/// in canonical name order.
pub(crate) fn snapshot_all() -> BTreeMap<String, HistogramSnapshot> {
    HISTOGRAMS
        .lock()
        .unwrap()
        .iter()
        .filter_map(|(name, h)| {
            let snap = h.snapshot();
            (snap.count() > 0).then(|| (name.clone(), snap))
        })
        .collect()
}

/// Zeroes every registered histogram's buckets. Registrations (the
/// leaked allocations and cached handles) stay valid across sessions.
pub(crate) fn reset_all() {
    for h in HISTOGRAMS.lock().unwrap().values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.nonzero_buckets().count(), 0);
    }
}
