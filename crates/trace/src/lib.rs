//! `eatss-trace` — structured observability for the EATSS pipeline.
//!
//! A from-scratch, zero-dependency tracing layer shared by every crate in
//! the hot path (`eatss-smt`, `eatss`, `eatss-gpusim`, `eatss-ppcg`,
//! `eatss-bench`). It provides:
//!
//! * **hierarchical spans** ([`span`]) with monotonic microsecond
//!   timestamps, RAII end events and typed key/value args;
//! * **instant events** ([`instant`]) for point-in-time facts (fault
//!   injections, fallbacks, infeasibility verdicts);
//! * a **global metrics registry** ([`counter_add`], [`gauge_set`]) with
//!   canonically ordered snapshots;
//! * **deterministic event merging**: every event carries a `lane`
//!   (sweep-point index, see [`lane_scope`]) and a global sequence number;
//!   [`drain`] sorts by `(lane, seq)` so the merged stream is identical
//!   for sequential and `--jobs N` parallel sweeps — the PR 2 bit-identical
//!   guarantee extends to traces (structurally; timestamps still vary);
//! * two **sinks** ([`Trace::to_jsonl`], [`Trace::to_chrome_json`]) — the
//!   latter is Chrome `trace_events` JSON openable at `ui.perfetto.dev`;
//! * a **leveled logging** façade ([`error!`], [`info!`], [`debug!`]) that
//!   echoes to stderr and, when collecting, records log events in the
//!   trace.
//!
//! # Overhead budget
//!
//! When collection is disabled (the default) every entry point reduces to
//! a single relaxed atomic load — no allocation, no locking, no clock
//! read. Hot inner loops (the solver DFS, per-node propagation) are *not*
//! instrumented at all; spans sit at call boundaries (`check`, `maximize`,
//! one sweep point, one simulated launch).
#![forbid(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

mod event;
pub mod histogram;
pub mod json;
mod metrics;
mod sink;

pub use event::{ArgValue, Event, EventKind};
pub use histogram::{histogram, Histogram, HistogramSnapshot};
pub use metrics::{counter_add, gauge_set, metrics_snapshot, MetricsSnapshot};
pub use sink::{Provenance, Trace, TraceFormat};

/// Log verbosity. `Off` suppresses everything, including errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No stderr output at all.
    Off = 0,
    /// Only errors.
    Error = 1,
    /// Errors and high-level progress (default).
    Info = 2,
    /// Everything, including per-stage chatter.
    Debug = 3,
}

impl Level {
    /// Parses a CLI-style level name (`off|error|info|debug`).
    pub fn parse(text: &str) -> Option<Level> {
        match text {
            "off" => Some(Level::Off),
            "error" => Some(Level::Error),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// Short label used as the stderr prefix and in event payloads.
    pub fn label(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(raw: u8) -> Level {
        match raw {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

static COLLECTING: AtomicBool = AtomicBool::new(false);
static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LANE: Cell<u64> = const { Cell::new(0) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// True while events are being recorded. This is the *only* check on the
/// disabled path: a single relaxed atomic load.
#[inline]
pub fn collecting() -> bool {
    COLLECTING.load(Ordering::Relaxed)
}

/// Starts a collection session: clears the event buffer and the metrics
/// registry, then enables recording. Collection is process-global; callers
/// that share a process (tests) must serialize sessions.
pub fn start_collecting() {
    EPOCH.get_or_init(Instant::now);
    EVENTS.lock().unwrap().clear();
    metrics::reset();
    NEXT_SEQ.store(0, Ordering::Relaxed);
    NEXT_SPAN_ID.store(1, Ordering::Relaxed);
    COLLECTING.store(true, Ordering::Relaxed);
}

/// Stops recording without draining; [`drain`] also stops.
pub fn stop_collecting() {
    COLLECTING.store(false, Ordering::Relaxed);
}

/// Ends the collection session and returns the merged [`Trace`]: events
/// sorted in canonical `(lane, seq)` order plus a snapshot of the metrics
/// registry. Both buffers are reset for the next session.
pub fn drain(provenance: Provenance) -> Trace {
    COLLECTING.store(false, Ordering::Relaxed);
    let mut events = std::mem::take(&mut *EVENTS.lock().unwrap());
    events.sort_by_key(|e| (e.lane, e.seq));
    let metrics = metrics::snapshot_and_reset();
    Trace { provenance, events, metrics }
}

/// Sets the stderr log level (default [`Level::Info`]).
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current stderr log level.
pub fn log_level() -> Level {
    Level::from_u8(LOG_LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at `level` would go anywhere (stderr or the trace).
/// The logging macros check this before formatting.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level != Level::Off && (level <= log_level() || collecting())
}

/// Records (and possibly echoes) a log message. Prefer the [`error!`],
/// [`info!`] and [`debug!`] macros, which skip formatting when disabled.
pub fn log(level: Level, message: String) {
    if level == Level::Off {
        return;
    }
    if level <= log_level() {
        eprintln!("[{}] {message}", level.label());
    }
    if collecting() {
        push_event(Event {
            seq: next_seq(),
            lane: current_lane(),
            ts_us: now_us(),
            cat: "log",
            name: "log".to_string(),
            args: vec![("message", ArgValue::Str(message))],
            kind: EventKind::Instant { level },
        });
    }
}

/// Logs at [`Level::Error`] (see [`log`]).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Error) {
            $crate::log($crate::Level::Error, ::std::format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] (see [`log`]).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Info) {
            $crate::log($crate::Level::Info, ::std::format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`] (see [`log`]).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Debug) {
            $crate::log($crate::Level::Debug, ::std::format!($($arg)*));
        }
    };
}

fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn next_seq() -> u64 {
    NEXT_SEQ.fetch_add(1, Ordering::Relaxed)
}

fn push_event(event: Event) {
    EVENTS.lock().unwrap().push(event);
}

/// Restores the previous lane on drop; see [`lane_scope`].
#[must_use = "dropping the guard immediately restores the previous lane"]
pub struct LaneGuard {
    prev: u64,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        LANE.with(|l| l.set(self.prev));
    }
}

/// Tags all events recorded by the current thread with `lane` until the
/// guard drops. Lane 0 is the main/control lane; the sweep executor uses
/// lane `point_index + 1` so events merge in canonical point order no
/// matter which worker thread processed the point.
pub fn lane_scope(lane: u64) -> LaneGuard {
    let prev = LANE.with(|l| l.replace(lane));
    LaneGuard { prev }
}

/// The lane events on this thread are currently tagged with.
pub fn current_lane() -> u64 {
    LANE.with(|l| l.get())
}

static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique lane id (never 0, the main/control lane).
/// Long-lived services use this instead of local counters so lanes from
/// independent components sharing a process never collide — which is
/// what makes [`harvest_lane`] safe to call concurrently.
pub fn alloc_lane() -> u64 {
    NEXT_LANE.fetch_add(1, Ordering::Relaxed)
}

/// Removes and returns every recorded event tagged with `lane`, in
/// `seq` order. Events on other lanes are retained only where
/// `keep(lane)` says so — lanes still in flight pass `true`; everything
/// else (finished strays, lane-0 log chatter) is discarded. This is the
/// incremental counterpart to [`drain`] for long-running services: each
/// completed request harvests its own span tree, and the global buffer
/// stays bounded by the in-flight set instead of growing for the
/// process lifetime. Collection stays enabled.
pub fn harvest_lane(lane: u64, keep: impl Fn(u64) -> bool) -> Vec<Event> {
    let mut events = EVENTS.lock().unwrap();
    let all = std::mem::take(&mut *events);
    let mut taken = Vec::new();
    for event in all {
        if event.lane == lane {
            taken.push(event);
        } else if keep(event.lane) {
            events.push(event);
        }
    }
    drop(events);
    taken.sort_by_key(|e| e.seq);
    taken
}

/// An in-flight hierarchical span. Created by [`span`]; records a `Begin`
/// event immediately and an `End` event (carrying the args and duration)
/// when dropped. When collection is disabled the span is inert.
pub struct Span {
    id: u64,
    lane: u64,
    start_us: u64,
    cat: &'static str,
    name: &'static str,
    args: Vec<(&'static str, ArgValue)>,
}

/// Opens a span named `name` in category `cat`. The span nests under the
/// innermost open span *on the same thread* (worker threads start at the
/// root). Returns an inert span when collection is disabled.
#[must_use = "a span measures until it is dropped"]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !collecting() {
        return Span { id: 0, lane: 0, start_us: 0, cat, name, args: Vec::new() };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let lane = current_lane();
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    let start_us = now_us();
    push_event(Event {
        seq: next_seq(),
        lane,
        ts_us: start_us,
        cat,
        name: name.to_string(),
        args: Vec::new(),
        kind: EventKind::Begin { id, parent },
    });
    Span { id, lane, start_us, cat, name, args: Vec::new() }
}

impl Span {
    /// True when the span is actually recording. Use this to gate
    /// expensive arg construction (string formatting, stats clones).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.id != 0
    }

    /// Attaches a typed key/value pair, emitted with the `End` event.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.id != 0 {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let end_us = now_us();
        push_event(Event {
            seq: next_seq(),
            lane: self.lane,
            ts_us: end_us,
            cat: self.cat,
            name: self.name.to_string(),
            args: std::mem::take(&mut self.args),
            kind: EventKind::End { id: self.id, dur_us: end_us.saturating_sub(self.start_us) },
        });
    }
}

/// Records an instant event (a point in time, no duration). Callers should
/// gate arg construction on [`collecting`]; the function itself is a no-op
/// when disabled.
pub fn instant(cat: &'static str, name: &'static str, args: Vec<(&'static str, ArgValue)>) {
    if !collecting() {
        return;
    }
    push_event(Event {
        seq: next_seq(),
        lane: current_lane(),
        ts_us: now_us(),
        cat,
        name: name.to_string(),
        args,
        kind: EventKind::Instant { level: Level::Info },
    });
}
