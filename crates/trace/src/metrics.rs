//! Global metrics registry: named monotonic counters, last-write
//! gauges and log-2 latency histograms. `BTreeMap` keys give every
//! snapshot a canonical order, so registry contents are deterministic
//! even under parallel sweeps (counter addition commutes; gauges are
//! only written from deterministic single-writer sites; histogram
//! buckets commute like counters).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::histogram::{self, HistogramSnapshot};
use crate::json::{escape, number};

static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());

/// Adds `delta` to the named counter. No-op while collection is disabled
/// (the registry belongs to the active trace session).
pub fn counter_add(name: &str, delta: u64) {
    if delta == 0 || !crate::collecting() {
        return;
    }
    *COUNTERS.lock().unwrap().entry(name.to_string()).or_insert(0) += delta;
}

/// Sets the named gauge to `value`. No-op while collection is disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::collecting() {
        return;
    }
    GAUGES.lock().unwrap().insert(name.to_string(), value);
}

/// A point-in-time copy of the registry, in canonical (sorted) key order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters (`smt.nodes`, `sweep.fallbacks`, …).
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Log-2 latency histograms with at least one observation
    /// (`serve.solve_us`, `smt.maximize_us`, …).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, treating "never incremented" as 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name, when it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Serializes the whole registry as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`. Each
    /// histogram carries its count, p50/p90/p99/max estimates (bucket
    /// upper bounds — see [`crate::histogram`]) and its occupied
    /// `[lo, hi, count]` buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(name), value);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(name), number(*value));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, snap)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"buckets\":[",
                escape(name),
                snap.count(),
                snap.quantile(0.5),
                snap.quantile(0.9),
                snap.quantile(0.99),
                snap.max()
            );
            for (j, (lo, hi, n)) in snap.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{hi},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Prometheus-style text exposition. Counters and gauges become
    /// typed samples; histograms become cumulative `_bucket{le="…"}`
    /// samples plus `_count` and summary-style `{quantile="…"}` lines.
    /// There is no `_sum` series — the recorder keeps to one atomic add
    /// per observation, so sums are not tracked.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", number(*value));
        }
        for (name, snap) in &self.histograms {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (_, hi, n) in snap.nonzero_buckets() {
                cumulative += n;
                let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_count {cumulative}");
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", snap.quantile(q));
            }
        }
        out
    }
}

/// Maps a registry name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Copies the current registry contents without resetting them.
pub fn metrics_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: COUNTERS.lock().unwrap().clone(),
        gauges: GAUGES.lock().unwrap().clone(),
        histograms: histogram::snapshot_all(),
    }
}

pub(crate) fn snapshot_and_reset() -> MetricsSnapshot {
    let snapshot = MetricsSnapshot {
        counters: std::mem::take(&mut *COUNTERS.lock().unwrap()),
        gauges: std::mem::take(&mut *GAUGES.lock().unwrap()),
        histograms: histogram::snapshot_all(),
    };
    histogram::reset_all();
    snapshot
}

pub(crate) fn reset() {
    COUNTERS.lock().unwrap().clear();
    GAUGES.lock().unwrap().clear();
    histogram::reset_all();
}
