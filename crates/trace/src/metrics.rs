//! Global metrics registry: named monotonic counters and last-write
//! gauges. `BTreeMap` keys give every snapshot a canonical order, so
//! registry contents are deterministic even under parallel sweeps
//! (counter addition commutes; gauges are only written from deterministic
//! single-writer sites).

use std::collections::BTreeMap;
use std::sync::Mutex;

static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());

/// Adds `delta` to the named counter. No-op while collection is disabled
/// (the registry belongs to the active trace session).
pub fn counter_add(name: &str, delta: u64) {
    if delta == 0 || !crate::collecting() {
        return;
    }
    *COUNTERS.lock().unwrap().entry(name.to_string()).or_insert(0) += delta;
}

/// Sets the named gauge to `value`. No-op while collection is disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::collecting() {
        return;
    }
    GAUGES.lock().unwrap().insert(name.to_string(), value);
}

/// A point-in-time copy of the registry, in canonical (sorted) key order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters (`smt.nodes`, `sweep.fallbacks`, …).
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauges.
    pub gauges: BTreeMap<String, f64>,
}

impl MetricsSnapshot {
    /// Counter value, treating "never incremented" as 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Copies the current registry contents without resetting them.
pub fn metrics_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: COUNTERS.lock().unwrap().clone(),
        gauges: GAUGES.lock().unwrap().clone(),
    }
}

pub(crate) fn snapshot_and_reset() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: std::mem::take(&mut *COUNTERS.lock().unwrap()),
        gauges: std::mem::take(&mut *GAUGES.lock().unwrap()),
    }
}

pub(crate) fn reset() {
    COUNTERS.lock().unwrap().clear();
    GAUGES.lock().unwrap().clear();
}
