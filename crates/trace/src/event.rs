//! The event model: everything the collector records is an [`Event`].

use crate::Level;

/// A typed argument value attached to spans and instant events.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Signed integer (counters, deltas, indices).
    Int(i64),
    /// Floating-point (times, ratios, objective values).
    Float(f64),
    /// Free-form text (kernel names, provenance labels).
    Str(String),
    /// Boolean flags (optimal, fallback, valid).
    Bool(bool),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::Int(v as i64)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(v as i64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::Int(v as i64)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(v as i64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What kind of event this is. Span begin/end pairs share an `id`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened. `parent` is the id of the enclosing span on the
    /// opening thread, or 0 at the root.
    Begin {
        /// Unique (per session) span id.
        id: u64,
        /// Enclosing span id, 0 if none.
        parent: u64,
    },
    /// A span closed. Carries the measured duration; the matching `Begin`
    /// has the same `id`.
    End {
        /// Id of the span being closed.
        id: u64,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
    },
    /// A point-in-time event (fault injection, fallback, log line).
    Instant {
        /// Severity/verbosity classification.
        level: Level,
    },
}

impl EventKind {
    /// One-letter phase code used by both sinks (`B`/`E`/`I`), matching
    /// Chrome `trace_events` nomenclature.
    pub fn code(&self) -> &'static str {
        match self {
            EventKind::Begin { .. } => "B",
            EventKind::End { .. } => "E",
            EventKind::Instant { .. } => "I",
        }
    }
}

/// One recorded observation.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Global monotonic sequence number (allocation order).
    pub seq: u64,
    /// Canonical merge lane: 0 = main/control, `i + 1` = sweep point `i`.
    pub lane: u64,
    /// Microseconds since the collection epoch.
    pub ts_us: u64,
    /// Category (crate/subsystem): `smt`, `sweep`, `sim`, `ppcg`, …
    pub cat: &'static str,
    /// Event name within the category.
    pub name: String,
    /// Typed key/value payload.
    pub args: Vec<(&'static str, ArgValue)>,
    /// Begin/End/Instant discriminator.
    pub kind: EventKind,
}
