//! `trace_check` — validates an emitted trace file. Used by the CI trace
//! smoke job and handy when hacking on the sinks.
//!
//! ```text
//! trace_check <file> [--format chrome|jsonl] [--expect CAT:NAME]... \
//!             [--expect-counter NAME]... [--expect-histogram NAME]...
//! ```
//!
//! For `chrome` (the default) the file must parse as JSON, contain a
//! non-empty `traceEvents` array of well-formed `trace_events` entries,
//! and — for each `--expect CAT:NAME` — contain at least one complete
//! (`"X"`) span with that category and name. For `jsonl` every line must
//! parse and the first must be a header carrying provenance. Each
//! `--expect-counter NAME` must name a registry counter present in the
//! trace — a trailing `"C"` sample in `chrome`, a key under
//! `metrics.counters` in the `jsonl` header. Each `--expect-histogram
//! NAME` must name a histogram (a `"C"` sample carrying `count`/`p50`/
//! `p99`/`max` args in `chrome`, a key under `metrics.histograms` in
//! `jsonl`) whose quantile estimates are sane: `p50 <= p99 <= max` and
//! a nonzero count.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use eatss_trace::json::Json;
use eatss_trace::TraceFormat;

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("trace_check: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<String, String> {
    let mut file = None;
    let mut format = TraceFormat::Chrome;
    let mut expects: Vec<String> = Vec::new();
    let mut expect_counters: Vec<String> = Vec::new();
    let mut expect_histograms: Vec<String> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--format" => {
                let value = argv.next().ok_or("--format needs a value")?;
                format = TraceFormat::parse(&value)
                    .ok_or_else(|| format!("unknown format '{value}' (jsonl|chrome)"))?;
            }
            "--expect" => expects.push(argv.next().ok_or("--expect needs CAT:NAME")?),
            "--expect-counter" => {
                expect_counters.push(argv.next().ok_or("--expect-counter needs NAME")?)
            }
            "--expect-histogram" => {
                expect_histograms.push(argv.next().ok_or("--expect-histogram needs NAME")?)
            }
            "--help" | "-h" => {
                return Ok(
                    "usage: trace_check <file> [--format chrome|jsonl] [--expect CAT:NAME]... [--expect-counter NAME]... [--expect-histogram NAME]..."
                        .to_string(),
                )
            }
            _ if file.is_none() => file = Some(arg),
            _ => return Err(format!("unexpected argument '{arg}'")),
        }
    }
    let file = file.ok_or("usage: trace_check <file> [--format chrome|jsonl] [--expect CAT:NAME]... [--expect-counter NAME]... [--expect-histogram NAME]...")?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("read {file}: {e}"))?;
    match format {
        TraceFormat::Chrome => check_chrome(&text, &expects, &expect_counters, &expect_histograms),
        TraceFormat::Jsonl => check_jsonl(&text, &expects, &expect_counters, &expect_histograms),
    }
}

/// `(count, p50, p99, max)` of a histogram found in the trace.
type HistogramSummary = (f64, f64, f64, f64);

fn check_chrome(
    text: &str,
    expects: &[String],
    expect_counters: &[String],
    expect_histograms: &[String],
) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }
    doc.get("otherData")
        .and_then(|d| d.get("provenance"))
        .and_then(|p| p.get("git_sha"))
        .and_then(Json::as_str)
        .ok_or("missing otherData.provenance.git_sha")?;
    let mut spans: BTreeSet<String> = BTreeSet::new();
    let mut counters: BTreeSet<String> = BTreeSet::new();
    let mut histograms: BTreeMap<String, HistogramSummary> = BTreeMap::new();
    let mut span_count = 0usize;
    for (i, event) in events.iter().enumerate() {
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing ph"))?;
        match ph {
            "X" => {
                let cat = event
                    .get("cat")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i} ({name}): X without cat"))?;
                event
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}): X without ts"))?;
                event
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}): X without dur"))?;
                spans.insert(format!("{cat}:{name}"));
                span_count += 1;
            }
            "C" => {
                counters.insert(name.to_string());
                let args = event.get("args");
                let field = |key| {
                    args.and_then(|a| a.get(key)).and_then(Json::as_f64)
                };
                if let (Some(count), Some(p50), Some(p99), Some(max)) =
                    (field("count"), field("p50"), field("p99"), field("max"))
                {
                    histograms.insert(name.to_string(), (count, p50, p99, max));
                }
            }
            "i" | "M" => {}
            other => return Err(format!("event {i} ({name}): unexpected ph '{other}'")),
        }
    }
    check_expects(expects, &spans)?;
    check_expected_counters(expect_counters, &counters)?;
    check_expected_histograms(expect_histograms, &histograms)?;
    Ok(format!(
        "ok: {} trace events, {span_count} spans ({} distinct), {} counter(s), {} histogram(s)",
        events.len(),
        spans.len(),
        counters.len(),
        histograms.len()
    ))
}

fn check_jsonl(
    text: &str,
    expects: &[String],
    expect_counters: &[String],
    expect_histograms: &[String],
) -> Result<String, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty file")?;
    let header = Json::parse(header).map_err(|e| format!("invalid header: {e}"))?;
    if header.get("type").and_then(Json::as_str) != Some("header") {
        return Err("first line is not a header".to_string());
    }
    header
        .get("provenance")
        .and_then(|p| p.get("git_sha"))
        .and_then(Json::as_str)
        .ok_or("header missing provenance.git_sha")?;
    let counters: BTreeSet<String> = header
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(Json::as_object)
        .map(|o| o.keys().cloned().collect())
        .unwrap_or_default();
    let mut histograms: BTreeMap<String, HistogramSummary> = BTreeMap::new();
    if let Some(map) = header
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(Json::as_object)
    {
        for (name, h) in map {
            let field = |key| h.get(key).and_then(Json::as_f64);
            if let (Some(count), Some(p50), Some(p99), Some(max)) =
                (field("count"), field("p50"), field("p99"), field("max"))
            {
                histograms.insert(name.clone(), (count, p50, p99, max));
            }
        }
    }
    let mut spans: BTreeSet<String> = BTreeSet::new();
    let mut count = 0usize;
    for (i, line) in lines.enumerate() {
        let event = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        if event.get("type").and_then(Json::as_str) != Some("event") {
            return Err(format!("line {}: not an event", i + 2));
        }
        let cat = event
            .get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing cat", i + 2))?;
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing name", i + 2))?;
        if event.get("ph").and_then(Json::as_str) == Some("E") {
            spans.insert(format!("{cat}:{name}"));
        }
        count += 1;
    }
    if count == 0 {
        return Err("no events after header".to_string());
    }
    check_expects(expects, &spans)?;
    check_expected_counters(expect_counters, &counters)?;
    check_expected_histograms(expect_histograms, &histograms)?;
    Ok(format!(
        "ok: {count} events, {} distinct spans, {} counter(s), {} histogram(s)",
        spans.len(),
        counters.len(),
        histograms.len()
    ))
}

fn check_expects(expects: &[String], spans: &BTreeSet<String>) -> Result<(), String> {
    for expect in expects {
        if !spans.contains(expect) {
            return Err(format!(
                "expected span '{expect}' not found; present: {}",
                spans.iter().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    Ok(())
}

fn check_expected_histograms(
    expects: &[String],
    histograms: &BTreeMap<String, HistogramSummary>,
) -> Result<(), String> {
    for expect in expects {
        let Some((count, p50, p99, max)) = histograms.get(expect) else {
            return Err(format!(
                "expected histogram '{expect}' not found; present: {}",
                histograms.keys().cloned().collect::<Vec<_>>().join(", ")
            ));
        };
        if *count < 1.0 {
            return Err(format!("histogram '{expect}': zero observations"));
        }
        if !(p50 <= p99 && p99 <= max) {
            return Err(format!(
                "histogram '{expect}': quantiles not monotone (p50={p50}, p99={p99}, max={max})"
            ));
        }
    }
    Ok(())
}

fn check_expected_counters(expects: &[String], counters: &BTreeSet<String>) -> Result<(), String> {
    for expect in expects {
        if !counters.contains(expect) {
            return Err(format!(
                "expected counter '{expect}' not found; present: {}",
                counters.iter().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    Ok(())
}
