//! Histogram invariants: the quantile estimator stays within the
//! documented log-2 bucket error bound of exact sorted-sample quantiles,
//! and concurrent recording loses no observations.
//!
//! The collector is process-global, so every test that records takes
//! `SESSION` first (recording is gated on `collecting()`).

use std::sync::{Mutex, MutexGuard};

use eatss_trace::{histogram, Histogram, HistogramSnapshot};
use proptest::prelude::*;

static SESSION: Mutex<()> = Mutex::new(());

/// Serializes collector access and turns collection on. Survives mutex
/// poisoning from a failed sibling test (the guard protects nothing
/// stateful beyond the process-global collector).
fn session() -> MutexGuard<'static, ()> {
    let guard = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    if !eatss_trace::collecting() {
        eatss_trace::start_collecting();
    }
    guard
}

fn fill(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Exact quantile of a sample: the rank-`ceil(q·n)` order statistic,
/// matching the rank the estimator targets.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200 })]

    /// The documented bound: for a true quantile `v >= 1` the estimate
    /// `e` satisfies `v <= e < 2v`, and `e = 0` exactly when `v = 0`.
    #[test]
    fn quantiles_within_one_bucket_of_exact(
        values in prop::collection::vec(0u64..=1_000_000, 1..200),
    ) {
        let _session = session();
        let snap = fill(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            if exact == 0 {
                prop_assert_eq!(est, 0);
            } else {
                prop_assert!(
                    exact <= est && est < 2 * exact,
                    "q={} exact={} est={}", q, exact, est
                );
            }
        }
        prop_assert_eq!(snap.max(), snap.quantile(1.0));
    }

    /// Monotonicity holds for every sample, not just sane ones.
    #[test]
    fn quantiles_are_monotone(
        values in prop::collection::vec(0u64..=u64::MAX, 1..100),
    ) {
        let _session = session();
        let snap = fill(&values);
        let p50 = snap.quantile(0.5);
        let p90 = snap.quantile(0.9);
        let p99 = snap.quantile(0.99);
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= snap.max());
    }
}

/// Relaxed `fetch_add` never drops observations: total count is exact
/// under parallel recording from a scoped thread pool.
#[test]
fn concurrent_recording_keeps_exact_count() {
    let _session = session();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;
    let h = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = &h;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across buckets so adds genuinely contend.
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
}

/// Registry handles are interned: same name, same histogram; snapshots
/// surface through the metrics snapshot and reset with the session.
#[test]
fn registry_interns_and_resets() {
    let _session = session();
    eatss_trace::start_collecting();
    let a = histogram("test.registry_us");
    let b = histogram("test.registry_us");
    assert!(std::ptr::eq(a, b));
    a.record(7);
    b.record(130);
    let metrics = eatss_trace::metrics_snapshot();
    let snap = metrics.histogram("test.registry_us").expect("registered");
    assert_eq!(snap.count(), 2);
    assert_eq!(snap.quantile(0.5), 7);
    assert_eq!(snap.max(), 255);
    // A new session zeroes the buckets but keeps the handle valid.
    eatss_trace::start_collecting();
    assert_eq!(a.snapshot().count(), 0);
    a.record(1);
    assert_eq!(b.snapshot().count(), 1);
}

/// Recording while collection is off is a no-op, like counters.
#[test]
fn disabled_collection_drops_records() {
    let _session = session();
    eatss_trace::stop_collecting();
    let h = Histogram::new();
    h.record(42);
    assert_eq!(h.snapshot().count(), 0);
    eatss_trace::start_collecting();
    h.record(42);
    assert_eq!(h.snapshot().count(), 1);
}
