//! Trace-layer invariants: span balance/nesting, lane-canonical merging,
//! metrics registry semantics, and golden-file checks for both sinks.
//!
//! The collector is process-global, so every test that records events
//! takes `SESSION` first.

use std::sync::Mutex;

use eatss_trace::json::Json;
use eatss_trace::{
    ArgValue, Event, EventKind, HistogramSnapshot, Level, MetricsSnapshot, Provenance, Trace,
    TraceFormat,
};

static SESSION: Mutex<()> = Mutex::new(());

fn test_provenance() -> Provenance {
    Provenance {
        git_sha: "deadbeef".to_string(),
        rustc_version: "rustc 1.0.0-test".to_string(),
        threads: 4,
        jobs: Some(2),
    }
}

#[test]
fn spans_balance_and_nest() {
    let _session = SESSION.lock().unwrap();
    eatss_trace::start_collecting();
    {
        let mut outer = eatss_trace::span("t", "outer");
        outer.arg("k", 1i64);
        {
            let _inner = eatss_trace::span("t", "inner");
        }
        {
            let _inner2 = eatss_trace::span("t", "inner2");
        }
    }
    let trace = eatss_trace::drain(test_provenance());
    trace.check_balance().expect("balanced");
    // Begin events record the enclosing span as parent.
    let mut begins = trace.events.iter().filter_map(|e| match &e.kind {
        EventKind::Begin { id, parent } => Some((e.name.clone(), *id, *parent)),
        _ => None,
    });
    let (outer_name, outer_id, outer_parent) = begins.next().unwrap();
    assert_eq!(outer_name, "outer");
    assert_eq!(outer_parent, 0);
    let (inner_name, _, inner_parent) = begins.next().unwrap();
    assert_eq!(inner_name, "inner");
    assert_eq!(inner_parent, outer_id);
    let (inner2_name, _, inner2_parent) = begins.next().unwrap();
    assert_eq!(inner2_name, "inner2");
    assert_eq!(inner2_parent, outer_id);
    // Ends close innermost-first: inner, inner2, outer.
    let ends: Vec<&str> = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::End { .. }))
        .map(|e| e.name.as_str())
        .collect();
    assert_eq!(ends, ["inner", "inner2", "outer"]);
    // The outer End carries its args.
    let outer_end = trace
        .events
        .iter()
        .find(|e| matches!(e.kind, EventKind::End { .. }) && e.name == "outer")
        .unwrap();
    assert_eq!(outer_end.args, vec![("k", ArgValue::Int(1))]);
}

#[test]
fn unbalanced_traces_are_detected() {
    let begin = Event {
        seq: 0,
        lane: 0,
        ts_us: 0,
        cat: "t",
        name: "open".to_string(),
        args: Vec::new(),
        kind: EventKind::Begin { id: 7, parent: 0 },
    };
    let dangling = Trace {
        provenance: test_provenance(),
        events: vec![begin.clone()],
        metrics: MetricsSnapshot::default(),
    };
    assert!(dangling.check_balance().is_err());

    let wrong_end = Event {
        seq: 1,
        lane: 0,
        ts_us: 5,
        cat: "t",
        name: "other".to_string(),
        args: Vec::new(),
        kind: EventKind::End { id: 9, dur_us: 5 },
    };
    let mismatched = Trace {
        provenance: test_provenance(),
        events: vec![begin, wrong_end],
        metrics: MetricsSnapshot::default(),
    };
    assert!(mismatched.check_balance().is_err());
}

#[test]
fn disabled_collection_records_nothing() {
    let _session = SESSION.lock().unwrap();
    assert!(!eatss_trace::collecting());
    {
        let mut span = eatss_trace::span("t", "ghost");
        assert!(!span.is_active());
        span.arg("k", 1i64);
    }
    eatss_trace::instant("t", "ghost", Vec::new());
    eatss_trace::counter_add("t.ghost", 3);
    eatss_trace::start_collecting();
    let trace = eatss_trace::drain(test_provenance());
    assert!(trace.events.is_empty());
    assert!(trace.metrics.counters.is_empty());
}

#[test]
fn lanes_merge_in_canonical_order_regardless_of_thread_timing() {
    let _session = SESSION.lock().unwrap();
    eatss_trace::start_collecting();
    // Lane 2 records first in wall-clock order; lane 1 must still sort first.
    std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let _lane = eatss_trace::lane_scope(2);
                let _span = eatss_trace::span("t", "late-lane");
            })
            .join()
            .unwrap();
        scope
            .spawn(|| {
                let _lane = eatss_trace::lane_scope(1);
                let _span = eatss_trace::span("t", "early-lane");
            })
            .join()
            .unwrap();
    });
    let trace = eatss_trace::drain(test_provenance());
    trace.check_balance().expect("balanced");
    assert_eq!(
        trace.signature(),
        [
            "1|t|early-lane|B",
            "1|t|early-lane|E",
            "2|t|late-lane|B",
            "2|t|late-lane|E"
        ]
    );
}

#[test]
fn lane_scope_restores_previous_lane() {
    assert_eq!(eatss_trace::current_lane(), 0);
    {
        let _outer = eatss_trace::lane_scope(3);
        assert_eq!(eatss_trace::current_lane(), 3);
        {
            let _inner = eatss_trace::lane_scope(5);
            assert_eq!(eatss_trace::current_lane(), 5);
        }
        assert_eq!(eatss_trace::current_lane(), 3);
    }
    assert_eq!(eatss_trace::current_lane(), 0);
}

#[test]
fn metrics_registry_accumulates_and_snapshots_canonically() {
    let _session = SESSION.lock().unwrap();
    eatss_trace::start_collecting();
    eatss_trace::counter_add("b.second", 2);
    eatss_trace::counter_add("a.first", 1);
    eatss_trace::counter_add("a.first", 4);
    eatss_trace::gauge_set("g.ratio", 0.5);
    eatss_trace::gauge_set("g.ratio", 0.75);
    let live = eatss_trace::metrics_snapshot();
    assert_eq!(live.counter("a.first"), 5);
    let trace = eatss_trace::drain(test_provenance());
    assert_eq!(
        trace.metrics.counters.keys().collect::<Vec<_>>(),
        ["a.first", "b.second"]
    );
    assert_eq!(trace.metrics.counter("b.second"), 2);
    assert_eq!(trace.metrics.counter("absent"), 0);
    assert_eq!(trace.metrics.gauges["g.ratio"], 0.75);
    // drain resets the registry for the next session.
    eatss_trace::start_collecting();
    let empty = eatss_trace::drain(test_provenance());
    assert!(empty.metrics.counters.is_empty());
}

#[test]
fn log_levels_parse_and_order() {
    assert_eq!(Level::parse("off"), Some(Level::Off));
    assert_eq!(Level::parse("debug"), Some(Level::Debug));
    assert_eq!(Level::parse("verbose"), None);
    assert!(Level::Error < Level::Info);
    assert!(Level::Info < Level::Debug);
}

#[test]
fn log_events_are_recorded_while_collecting() {
    let _session = SESSION.lock().unwrap();
    let previous = eatss_trace::log_level();
    eatss_trace::set_log_level(Level::Off); // no stderr noise from the test
    eatss_trace::start_collecting();
    eatss_trace::info!("solved {} in {}ms", "gemm", 12);
    let trace = eatss_trace::drain(test_provenance());
    eatss_trace::set_log_level(previous);
    let log = &trace.events[0];
    assert_eq!(log.cat, "log");
    assert_eq!(log.kind, EventKind::Instant { level: Level::Info });
    assert_eq!(
        log.args,
        vec![("message", ArgValue::Str("solved gemm in 12ms".to_string()))]
    );
}

/// A fixed trace used by both golden-file tests.
fn fixed_trace() -> Trace {
    let mut metrics = MetricsSnapshot::default();
    metrics.counters.insert("smt.nodes".to_string(), 42);
    metrics.gauges.insert("sweep.best_ppw".to_string(), 1.25);
    // Two observations in 4..=7, one in 1024..=2047: p50 = 7, p90 = 2047.
    let mut buckets = vec![0u64; eatss_trace::histogram::HISTOGRAM_BUCKETS];
    buckets[3] = 2;
    buckets[11] = 1;
    metrics
        .histograms
        .insert("serve.solve_us".to_string(), HistogramSnapshot { buckets });
    Trace {
        provenance: test_provenance(),
        events: vec![
            Event {
                seq: 0,
                lane: 0,
                ts_us: 10,
                cat: "sweep",
                name: "run".to_string(),
                args: Vec::new(),
                kind: EventKind::Begin { id: 1, parent: 0 },
            },
            Event {
                seq: 3,
                lane: 0,
                ts_us: 90,
                cat: "sweep",
                name: "run".to_string(),
                args: vec![("points", ArgValue::Int(1))],
                kind: EventKind::End { id: 1, dur_us: 80 },
            },
            Event {
                seq: 1,
                lane: 1,
                ts_us: 20,
                cat: "smt",
                name: "check".to_string(),
                args: Vec::new(),
                kind: EventKind::Begin { id: 2, parent: 0 },
            },
            Event {
                seq: 2,
                lane: 1,
                ts_us: 60,
                cat: "smt",
                name: "check".to_string(),
                args: vec![
                    ("nodes", ArgValue::Int(17)),
                    ("sat", ArgValue::Bool(true)),
                    ("label", ArgValue::Str("a \"quoted\" name".to_string())),
                    ("ratio", ArgValue::Float(0.5)),
                ],
                kind: EventKind::End { id: 2, dur_us: 40 },
            },
            Event {
                seq: 4,
                lane: 1,
                ts_us: 61,
                cat: "sim",
                name: "fault".to_string(),
                args: vec![("kind", ArgValue::Str("launch_failure".to_string()))],
                kind: EventKind::Instant { level: Level::Info },
            },
        ],
        metrics,
    }
}

#[test]
fn chrome_output_matches_golden_file_and_is_valid_trace_events_json() {
    let rendered = fixed_trace().to_chrome_json();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_trace.json");
    if std::env::var_os("EATSS_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("update golden");
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file");
    assert_eq!(rendered, golden, "chrome sink output drifted from golden file");

    // Independently validate the structure with the JSON parser.
    let doc = Json::parse(&rendered).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents");
    // 1 process_name + 2 thread_name + 2 X + 1 i + 2 gauge/counter C + 1 histogram C.
    assert_eq!(events.len(), 9);
    let hist = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("serve.solve_us"))
        .expect("histogram sample present");
    assert_eq!(hist.get("ph").and_then(Json::as_str), Some("C"));
    let args = hist.get("args").expect("histogram args");
    assert_eq!(args.get("count").and_then(Json::as_f64), Some(3.0));
    assert_eq!(args.get("p50").and_then(Json::as_f64), Some(7.0));
    assert_eq!(args.get("max").and_then(Json::as_f64), Some(2047.0));
    let check = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("check"))
        .expect("check span present");
    assert_eq!(check.get("ph").and_then(Json::as_str), Some("X"));
    assert_eq!(check.get("ts").and_then(Json::as_f64), Some(20.0));
    assert_eq!(check.get("dur").and_then(Json::as_f64), Some(40.0));
    assert_eq!(check.get("tid").and_then(Json::as_f64), Some(1.0));
    let args = check.get("args").expect("args");
    assert_eq!(args.get("label").and_then(Json::as_str), Some("a \"quoted\" name"));
    assert_eq!(
        doc.get("otherData")
            .and_then(|d| d.get("provenance"))
            .and_then(|p| p.get("git_sha"))
            .and_then(Json::as_str),
        Some("deadbeef")
    );
}

#[test]
fn jsonl_output_parses_line_by_line() {
    let rendered = fixed_trace().to_jsonl();
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), 6); // header + 5 events
    let header = Json::parse(lines[0]).expect("header parses");
    assert_eq!(header.get("type").and_then(Json::as_str), Some("header"));
    assert_eq!(
        header
            .get("provenance")
            .and_then(|p| p.get("jobs"))
            .and_then(Json::as_f64),
        Some(2.0)
    );
    assert_eq!(
        header
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("smt.nodes"))
            .and_then(Json::as_f64),
        Some(42.0)
    );
    let hist = header
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get("serve.solve_us"))
        .expect("histogram in header");
    assert_eq!(hist.get("count").and_then(Json::as_f64), Some(3.0));
    assert_eq!(hist.get("p99").and_then(Json::as_f64), Some(2047.0));
    for line in &lines[1..] {
        let event = Json::parse(line).expect("event parses");
        assert_eq!(event.get("type").and_then(Json::as_str), Some("event"));
    }
}

#[test]
fn compact_chrome_output_is_single_line_and_equivalent() {
    let pretty = fixed_trace().to_chrome_json();
    let compact = fixed_trace().to_chrome_json_compact();
    assert!(!compact.contains('\n'));
    let a = Json::parse(&pretty).expect("pretty parses");
    let b = Json::parse(&compact).expect("compact parses");
    assert_eq!(
        a.get("traceEvents").and_then(Json::as_array).map(|events| events.len()),
        b.get("traceEvents").and_then(Json::as_array).map(|events| events.len())
    );
}

#[test]
fn trace_format_parses() {
    assert_eq!(TraceFormat::parse("chrome"), Some(TraceFormat::Chrome));
    assert_eq!(TraceFormat::parse("jsonl"), Some(TraceFormat::Jsonl));
    assert_eq!(TraceFormat::parse("xml"), None);
}
