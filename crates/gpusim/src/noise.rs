//! Deterministic measurement jitter.
//!
//! Real power/performance measurements carry a few percent of run-to-run
//! variation; the paper averages 100 runs per variant. We model the
//! *residual* variation as a deterministic, zero-centered multiplicative
//! factor derived from a hash of the launch configuration — experiments
//! are exactly reproducible while the tile-space plots keep a realistic
//! scatter.

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a absorption step over a 64-bit word.
pub fn fnv_step(mut h: u64, v: u64) -> u64 {
    for i in 0..8 {
        let byte = (v >> (8 * i)) & 0xff;
        h ^= byte;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mixes a seed and a salt into a uniform value in `[-1, 1]`.
pub fn signed_unit(seed: u64, salt: u64) -> f64 {
    let mut h = fnv_step(FNV_OFFSET, seed);
    h = fnv_step(h, salt);
    // xorshift finalizer for avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    2.0 * unit - 1.0
}

/// Multiplicative jitter factor `1 + amplitude·u`, `u ∈ [-1, 1]`.
pub fn jitter(seed: u64, salt: u64, amplitude: f64) -> f64 {
    1.0 + amplitude * signed_unit(seed, salt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_unit_is_in_range_and_deterministic() {
        for salt in 0..1000 {
            let v = signed_unit(42, salt);
            assert!((-1.0..=1.0).contains(&v));
            assert_eq!(v.to_bits(), signed_unit(42, salt).to_bits());
        }
    }

    #[test]
    fn signed_unit_is_roughly_centered() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|s| signed_unit(7, s)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a: Vec<f64> = (0..100).map(|s| signed_unit(1, s)).collect();
        let b: Vec<f64> = (0..100).map(|s| signed_unit(2, s)).collect();
        let same = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| (**x - **y).abs() < 1e-12)
            .count();
        assert!(same < 3);
    }

    #[test]
    fn jitter_stays_within_amplitude() {
        for salt in 0..100 {
            let j = jitter(9, salt, 0.03);
            assert!((0.97..=1.03).contains(&j));
        }
    }
}
