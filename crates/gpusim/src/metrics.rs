//! Simulation reports — the measurements the paper collects with
//! `nvidia-smi` / `tegrastats` / Nsight Compute.

use std::fmt;

/// The observable result of one (or a sequence of) kernel launches.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Kernel or program name.
    pub name: String,
    /// Whether the launch was executable at all.
    pub valid: bool,
    /// Wall-clock execution time, seconds.
    pub time_s: f64,
    /// Average power during execution, watts.
    pub avg_power_w: f64,
    /// Constant (board) power component, watts.
    pub constant_power_w: f64,
    /// Static (leakage) power component, watts.
    pub static_power_w: f64,
    /// Dynamic power component, watts.
    pub dynamic_power_w: f64,
    /// Energy = power × time, joules.
    pub energy_j: f64,
    /// Total floating-point operations executed.
    pub flops_total: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Performance per watt, GFLOP/s/W (the paper's PPW metric).
    pub ppw: f64,
    /// L2 sectors read (the Fig. 9 `lts__t_sectors..read` proxy).
    pub l2_sectors_read: u64,
    /// L2 sectors written.
    pub l2_sectors_written: u64,
    /// DRAM traffic, bytes.
    pub dram_bytes: f64,
    /// SM occupancy fraction.
    pub occupancy: f64,
    /// Fraction of SMs active in the first wave.
    pub active_sm_fraction: f64,
    /// Whether the L1 carve-out was thrashed.
    pub l1_thrash: bool,
    /// Whether the TDP cap forced a frequency reduction (DVFS).
    pub dvfs_throttled: bool,
}

impl SimReport {
    /// A report for an unexecutable launch: infinite time, zero
    /// throughput.
    pub fn invalid(name: &str) -> Self {
        SimReport {
            name: name.to_owned(),
            valid: false,
            time_s: f64::INFINITY,
            avg_power_w: 0.0,
            constant_power_w: 0.0,
            static_power_w: 0.0,
            dynamic_power_w: 0.0,
            energy_j: f64::INFINITY,
            flops_total: 0.0,
            gflops: 0.0,
            ppw: 0.0,
            l2_sectors_read: 0,
            l2_sectors_written: 0,
            dram_bytes: 0.0,
            occupancy: 0.0,
            active_sm_fraction: 0.0,
            l1_thrash: false,
            dvfs_throttled: false,
        }
    }

    /// Applies the clock-boost / thermal power ramp of a *measurement*:
    /// over an execution of length `time_s`, the average power observed by
    /// a sampler is `idle + (steady − idle)·(1 − (τ/t)(1 − e^{−t/τ}))`.
    /// Energy is recomputed from the ramped power. Call once, at the
    /// program level (back-to-back launches keep the clocks boosted).
    pub fn apply_power_ramp(&mut self, idle_w: f64, tau_s: f64) {
        // A non-finite power level cannot be ramped: `(NaN - idle).max(0.0)`
        // would silently replace a corrupted measurement with idle power.
        // Leave the report untouched so the corruption stays visible.
        if !self.valid
            || !self.time_s.is_finite()
            || self.time_s <= 0.0
            || tau_s <= 0.0
            || !self.avg_power_w.is_finite()
        {
            return;
        }
        let t = self.time_s;
        let frac = 1.0 - (tau_s / t) * (1.0 - (-t / tau_s).exp());
        let frac = frac.clamp(0.0, 1.0);
        self.avg_power_w = idle_w + (self.avg_power_w - idle_w).max(0.0) * frac;
        self.dynamic_power_w *= frac;
        self.static_power_w = self.avg_power_w - self.constant_power_w - self.dynamic_power_w;
        self.energy_j = self.avg_power_w * self.time_s;
        self.ppw = if self.avg_power_w > 0.0 {
            self.gflops / self.avg_power_w
        } else {
            0.0
        };
    }

    /// The report of launching this kernel `n` times back-to-back (PPCG
    /// re-launches stencil grids once per time step): time, energy,
    /// counters and FLOPs scale by `n`; rates (power, GFLOP/s, PPW) are
    /// unchanged.
    pub fn repeated(&self, n: i64) -> SimReport {
        let n = n.max(1);
        let mut r = self.clone();
        if !r.valid {
            return r;
        }
        r.time_s *= n as f64;
        r.energy_j *= n as f64;
        r.flops_total *= n as f64;
        r.l2_sectors_read = r.l2_sectors_read.saturating_mul(n as u64);
        r.l2_sectors_written = r.l2_sectors_written.saturating_mul(n as u64);
        r.dram_bytes *= n as f64;
        r
    }

    /// Aggregates a sequence of launches (e.g. the two matmuls of 2mm):
    /// times/energies/counters add, power is the time-weighted average,
    /// GFLOP/s and PPW are recomputed from the totals.
    pub fn sequence(reports: &[SimReport]) -> SimReport {
        if reports.is_empty() {
            return SimReport::invalid("empty");
        }
        if reports.iter().any(|r| !r.valid) {
            return SimReport::invalid(&reports[0].name);
        }
        let time_s: f64 = reports.iter().map(|r| r.time_s).sum();
        let energy_j: f64 = reports.iter().map(|r| r.energy_j).sum();
        let flops_total: f64 = reports.iter().map(|r| r.flops_total).sum();
        let avg_power_w = if time_s > 0.0 { energy_j / time_s } else { 0.0 };
        let gflops = if time_s > 0.0 {
            flops_total / 1e9 / time_s
        } else {
            0.0
        };
        let weighted = |f: fn(&SimReport) -> f64| -> f64 {
            if time_s > 0.0 {
                reports.iter().map(|r| f(r) * r.time_s).sum::<f64>() / time_s
            } else {
                0.0
            }
        };
        SimReport {
            name: reports[0].name.clone(),
            valid: true,
            time_s,
            avg_power_w,
            constant_power_w: weighted(|r| r.constant_power_w),
            static_power_w: weighted(|r| r.static_power_w),
            dynamic_power_w: weighted(|r| r.dynamic_power_w),
            energy_j,
            flops_total,
            gflops,
            ppw: if avg_power_w > 0.0 {
                gflops / avg_power_w
            } else {
                0.0
            },
            l2_sectors_read: reports.iter().map(|r| r.l2_sectors_read).sum(),
            l2_sectors_written: reports.iter().map(|r| r.l2_sectors_written).sum(),
            dram_bytes: reports.iter().map(|r| r.dram_bytes).sum(),
            occupancy: weighted(|r| r.occupancy),
            active_sm_fraction: weighted(|r| r.active_sm_fraction),
            l1_thrash: reports.iter().any(|r| r.l1_thrash),
            dvfs_throttled: reports.iter().any(|r| r.dvfs_throttled),
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.valid {
            return write!(f, "{}: invalid launch", self.name);
        }
        write!(
            f,
            "{}: {:.4} s, {:.1} W, {:.2} J, {:.1} GFLOP/s, {:.2} GFLOP/s/W",
            self.name, self.time_s, self.avg_power_w, self.energy_j, self.gflops, self.ppw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(time: f64, power: f64, flops: f64) -> SimReport {
        SimReport {
            name: "k".into(),
            valid: true,
            time_s: time,
            avg_power_w: power,
            constant_power_w: 10.0,
            static_power_w: 20.0,
            dynamic_power_w: power - 30.0,
            energy_j: time * power,
            flops_total: flops,
            gflops: flops / 1e9 / time,
            ppw: flops / 1e9 / time / power,
            l2_sectors_read: 100,
            l2_sectors_written: 10,
            dram_bytes: 1e6,
            occupancy: 0.5,
            active_sm_fraction: 1.0,
            l1_thrash: false,
            dvfs_throttled: false,
        }
    }

    #[test]
    fn sequence_adds_and_weighs() {
        let a = mk(1.0, 100.0, 1e12);
        let b = mk(3.0, 200.0, 3e12);
        let s = SimReport::sequence(&[a, b]);
        assert!((s.time_s - 4.0).abs() < 1e-12);
        assert!((s.energy_j - 700.0).abs() < 1e-9);
        assert!((s.avg_power_w - 175.0).abs() < 1e-9);
        assert!((s.gflops - 1000.0).abs() < 1e-9);
        assert_eq!(s.l2_sectors_read, 200);
    }

    #[test]
    fn sequence_of_invalid_is_invalid() {
        let a = mk(1.0, 100.0, 1e12);
        let bad = SimReport::invalid("k");
        let s = SimReport::sequence(&[a, bad]);
        assert!(!s.valid);
        assert!(s.time_s.is_infinite());
        assert!(!SimReport::sequence(&[]).valid);
    }

    #[test]
    fn display_formats() {
        let r = mk(0.5, 100.0, 1e12);
        let s = r.to_string();
        assert!(s.contains("GFLOP/s/W"));
        assert!(SimReport::invalid("x").to_string().contains("invalid"));
    }

    #[test]
    fn power_ramp_short_runs_average_near_idle() {
        let mut short = mk(0.001, 200.0, 1e9); // 1 ms at tau = 15 ms
        short.apply_power_ramp(60.0, 0.015);
        assert!(short.avg_power_w < 75.0, "got {}", short.avg_power_w);
        let mut long = mk(1.0, 200.0, 1e12); // 1 s >> tau
        long.apply_power_ramp(60.0, 0.015);
        assert!(long.avg_power_w > 195.0, "got {}", long.avg_power_w);
        // Energy and PPW are recomputed consistently.
        assert!((long.energy_j - long.avg_power_w * long.time_s).abs() < 1e-9);
        assert!((long.ppw - long.gflops / long.avg_power_w).abs() < 1e-9);
    }

    #[test]
    fn power_ramp_is_monotone_in_duration() {
        let mut prev = 0.0;
        for t in [0.001, 0.01, 0.1, 1.0] {
            let mut r = mk(t, 200.0, 1e9);
            r.apply_power_ramp(60.0, 0.015);
            assert!(r.avg_power_w > prev, "t = {t}");
            prev = r.avg_power_w;
        }
    }

    #[test]
    fn power_ramp_ignores_invalid_and_degenerate() {
        let mut bad = SimReport::invalid("x");
        bad.apply_power_ramp(60.0, 0.015);
        assert!(!bad.valid);
        let mut zero_tau = mk(1.0, 200.0, 1e9);
        zero_tau.apply_power_ramp(60.0, 0.0);
        assert!((zero_tau.avg_power_w - 200.0).abs() < 1e-9, "no-op on tau=0");
    }

    #[test]
    fn repeated_scales_totals_not_rates() {
        let r = mk(2.0, 150.0, 4e12);
        let r3 = r.repeated(3);
        assert!((r3.time_s - 6.0).abs() < 1e-12);
        assert!((r3.energy_j - 3.0 * r.energy_j).abs() < 1e-9);
        assert!((r3.flops_total - 1.2e13).abs() < 1.0);
        assert!((r3.avg_power_w - r.avg_power_w).abs() < 1e-12);
        assert_eq!(r3.l2_sectors_read, 300);
        // n <= 1 is identity.
        assert_eq!(r.repeated(0).time_s.to_bits(), r.time_s.to_bits());
    }

    #[test]
    fn singleton_sequence_is_identity_on_totals() {
        let a = mk(2.0, 150.0, 2e12);
        let s = SimReport::sequence(std::slice::from_ref(&a));
        assert!((s.time_s - a.time_s).abs() < 1e-12);
        assert!((s.energy_j - a.energy_j).abs() < 1e-12);
        assert!((s.ppw - a.ppw).abs() < 1e-9);
    }
}
